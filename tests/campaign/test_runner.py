"""Determinism and resume guarantees of the campaign runner.

The two acceptance claims of the sweep engine:

* sharded execution is invisible in the results — ``workers=4`` produces a
  result store byte-identical to ``workers=1`` modulo the wall-clock
  fields;
* resume-by-fingerprint re-runs *exactly* the missing run set after an
  interrupt, for any subset of surviving records (a pure property of the
  run table, tested with hypothesis).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign import (
    Campaign,
    CampaignRunner,
    ResultStore,
    execute_spec,
    get_campaign,
    strip_timing,
)


def small_campaign() -> Campaign:
    """Four quick fig6 runs: enough factors to shard, fast enough to re-run."""
    return Campaign(
        name="determinism_probe",
        title="small sweep for runner tests",
        scenarios=["fig6_chain"],
        pifo_backends=["sorted", "quantized"],
        lang_backends=[None],
        load_scales=[1.0],
        replicates=1,
    )


def canonical(records):
    return [json.dumps(strip_timing(r), sort_keys=True) for r in records]


@pytest.fixture(scope="module")
def serial_records(tmp_path_factory):
    store = ResultStore(tmp_path_factory.mktemp("serial") / "r.jsonl")
    CampaignRunner(small_campaign(), store, workers=1, quick=True).run()
    return store.load()


class TestWorkerDeterminism:
    def test_parallel_store_identical_to_serial(self, tmp_path, serial_records):
        store = ResultStore(tmp_path / "par.jsonl")
        report = CampaignRunner(small_campaign(), store, workers=4,
                                quick=True).run()
        assert report.executed == len(serial_records)
        assert canonical(store.load()) == canonical(serial_records)

    def test_execute_spec_is_pure(self, serial_records):
        campaign = small_campaign()
        spec = campaign.expand(quick=True)[0]
        again = strip_timing(execute_spec(spec))
        assert again == strip_timing(serial_records[0])

    def test_substrate_factors_compare_on_identical_workloads(self, tmp_path):
        # Same scenario/variant under different PIFO backends must report
        # identical behaviour: the seeds pair the workloads and the
        # backends are behaviourally equivalent.
        campaign = Campaign(
            name="paired_probe",
            title="paired workload probe",
            scenarios=["leaf_spine_fct"],
            variants=["FIFO"],
            pifo_backends=["sorted", "quantized"],
        )
        store = ResultStore(tmp_path / "paired.jsonl")
        CampaignRunner(campaign, store, quick=True).run()
        records = store.load()
        assert len(records) == 2

        def behaviour(record):
            return {key: value for key, value in strip_timing(record).items()
                    if key not in ("pifo_backend", "run_id", "fingerprint")}

        assert behaviour(records[0]) == behaviour(records[1])
        assert records[0]["seed"] == records[1]["seed"]
        assert records[0]["fct_count"] > 0

    def test_worker_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CampaignRunner(small_campaign(), ResultStore(tmp_path / "r.jsonl"),
                           workers=0)


class TestResume:
    def test_resume_after_interrupt_runs_exactly_the_missing_half(
            self, tmp_path, serial_records):
        # Simulated interrupt: only the first half of the records survived.
        store = ResultStore(tmp_path / "resume.jsonl")
        survivors = serial_records[:len(serial_records) // 2]
        for record in survivors:
            store.append(record)

        runner = CampaignRunner(small_campaign(), store, workers=2,
                                quick=True, resume=True)
        missing = [r["run_id"] for r in serial_records[len(survivors):]]
        assert [s.run_id for s in runner.pending_specs()] == missing

        report = runner.run()
        assert report.executed == len(missing)
        assert report.skipped == len(survivors)
        assert sorted(canonical(store.load())) == sorted(canonical(serial_records))

    def test_resume_with_complete_store_runs_nothing(self, tmp_path,
                                                     serial_records):
        store = ResultStore(tmp_path / "full.jsonl")
        for record in serial_records:
            store.append(record)
        report = CampaignRunner(small_campaign(), store, workers=2,
                                quick=True, resume=True).run()
        assert report.executed == 0
        assert report.skipped == len(serial_records)

    def test_without_resume_store_is_appended_not_deduplicated(
            self, tmp_path, serial_records):
        store = ResultStore(tmp_path / "norun.jsonl")
        for record in serial_records:
            store.append(record)
        runner = CampaignRunner(small_campaign(), store, workers=1, quick=True)
        assert len(runner.pending_specs()) == len(serial_records)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def test_property_any_surviving_subset_resumes_the_complement(
            self, tmp_path_factory, data):
        # Pure run-table property (no simulations): whatever subset of the
        # paper_sweep records survives, pending_specs() is exactly the
        # complement, in run-table order.
        campaign = get_campaign("paper_sweep")
        specs = campaign.expand(quick=True)
        survivors = data.draw(st.sets(
            st.sampled_from([s.fingerprint() for s in specs])))
        store = ResultStore(tmp_path_factory.mktemp("prop") / "r.jsonl")
        for fingerprint in survivors:
            store.append({"fingerprint": fingerprint})
        runner = CampaignRunner(campaign, store, quick=True, resume=True)
        pending = runner.pending_specs()
        expected = [s for s in specs if s.fingerprint() not in survivors]
        assert pending == expected
