"""Fine-grained priority scheduling (Section 3.4, item 1).

These algorithms schedule the packet with the lowest value of a field
initialised by the end host: Shortest Job First (flow size), Shortest
Remaining Processing Time (remaining flow size), Least Attained Service
(service received so far) and Earliest Deadline First (time to deadline).
Each is a one-line scheduling transaction setting the rank to the field.

For convenience the LAS transaction can also maintain the attained-service
counter inside the switch when end hosts do not tag packets.
"""

from __future__ import annotations

from typing import Any, Dict

from ..core.packet import Packet
from ..core.pifo import Rank
from ..core.transaction import SchedulingTransaction, TransactionContext
from ..exceptions import TransactionError


class FieldRankTransaction(SchedulingTransaction):
    """rank = an end-host-initialised packet field.

    The generic building block behind SJF/SRPT/EDF: anything the end host can
    encode in a header field becomes a scheduling policy.
    """

    state_variables = ()

    def __init__(self, field_name: str) -> None:
        self.field_name = field_name
        super().__init__()

    def compute_rank(self, packet: Packet, ctx: TransactionContext) -> Rank:
        value = packet.get(self.field_name)
        if value is None:
            raise TransactionError(
                f"packet {packet!r} is missing field {self.field_name!r} "
                f"required by {type(self).__name__}"
            )
        return value

    def describe(self) -> str:
        return f"{type(self).__name__}(rank = p.{self.field_name})"


class ShortestJobFirstTransaction(FieldRankTransaction):
    """SJF: rank = total flow size, tagged by the end host."""

    def __init__(self, field_name: str = "flow_size") -> None:
        super().__init__(field_name)


class SRPTTransaction(FieldRankTransaction):
    """SRPT: rank = remaining flow size, tagged by the end host.

    pFabric-style switch-local SRPT; Section 3.5 explains that full pFabric
    (which reorders *all* of a flow's buffered packets on each arrival) is
    beyond a single PIFO — see ``tests/integration/test_sec35_limitations.py``.
    """

    def __init__(self, field_name: str = "remaining_size") -> None:
        super().__init__(field_name)


class EarliestDeadlineFirstTransaction(FieldRankTransaction):
    """EDF: rank = absolute deadline carried by the packet."""

    def __init__(self, field_name: str = "deadline") -> None:
        super().__init__(field_name)


class LeastAttainedServiceTransaction(SchedulingTransaction):
    """LAS: rank = bytes of service the flow has received so far.

    If packets carry an ``attained_service`` field (set by the end host as
    the paper suggests), that value is used.  Otherwise the transaction
    maintains a per-flow byte counter in switch state, which is the common
    switch-local realisation of LAS.
    """

    state_variables = ("attained",)

    def __init__(self, field_name: str = "attained_service") -> None:
        self.field_name = field_name
        super().__init__()

    def initial_state(self) -> Dict[str, Any]:
        return {"attained": {}}

    def compute_rank(self, packet: Packet, ctx: TransactionContext) -> Rank:
        tagged = packet.get(self.field_name)
        attained: Dict[str, int] = self.state["attained"]
        flow = ctx.element_flow
        if tagged is not None:
            rank = tagged
            attained[flow] = max(attained.get(flow, 0), tagged) + ctx.element_length
            return rank
        rank = attained.get(flow, 0)
        attained[flow] = rank + ctx.element_length
        return rank

    def describe(self) -> str:
        return "LeastAttainedService(rank = bytes served so far)"
