"""Unit tests for the transaction-language parser."""

from __future__ import annotations

import pytest

from repro.lang import (
    Assign,
    Attribute,
    BinOp,
    BoolOp,
    Call,
    Compare,
    If,
    Membership,
    Name,
    Number,
    ParseError,
    Subscript,
    UnaryOp,
    parse,
)
from repro.lang.ast import Boolean, format_node, iter_assignments


class TestAssignments:
    def test_assign_to_name(self):
        program = parse("x = 5")
        assert len(program.statements) == 1
        statement = program.statements[0]
        assert isinstance(statement, Assign)
        assert isinstance(statement.target, Name)
        assert statement.target.identifier == "x"
        assert isinstance(statement.value, Number)
        assert statement.value.value == 5

    def test_assign_to_packet_field(self):
        statement = parse("p.rank = now").statements[0]
        assert isinstance(statement.target, Attribute)
        assert statement.target.obj == "p"
        assert statement.target.attribute == "rank"
        assert isinstance(statement.value, Name)
        assert statement.value.identifier == "now"

    def test_assign_to_table_entry(self):
        statement = parse("last_finish[f] = 10").statements[0]
        assert isinstance(statement.target, Subscript)
        assert statement.target.obj == "last_finish"
        assert isinstance(statement.target.index, Name)

    def test_multiple_statements(self):
        program = parse("a = 1\nb = 2\nc = 3")
        assert len(program.statements) == 3

    def test_semicolon_separated_statements(self):
        program = parse("a = 1; b = 2")
        assert len(program.statements) == 2


class TestExpressions:
    def test_operator_precedence_multiplication_before_addition(self):
        value = parse("x = a + b * c").statements[0].value
        assert isinstance(value, BinOp)
        assert value.operator == "+"
        assert isinstance(value.right, BinOp)
        assert value.right.operator == "*"

    def test_parentheses_override_precedence(self):
        value = parse("x = (a + b) * c").statements[0].value
        assert isinstance(value, BinOp)
        assert value.operator == "*"
        assert isinstance(value.left, BinOp)
        assert value.left.operator == "+"

    def test_left_associativity_of_subtraction(self):
        value = parse("x = a - b - c").statements[0].value
        # (a - b) - c
        assert value.operator == "-"
        assert isinstance(value.left, BinOp)
        assert value.left.operator == "-"
        assert isinstance(value.right, Name)

    def test_unary_minus(self):
        value = parse("x = -a + b").statements[0].value
        assert isinstance(value, BinOp)
        assert isinstance(value.left, UnaryOp)
        assert value.left.operator == "-"

    def test_call_with_two_arguments(self):
        value = parse("x = max(virtual_time, last_finish[f])").statements[0].value
        assert isinstance(value, Call)
        assert value.function == "max"
        assert len(value.args) == 2
        assert isinstance(value.args[1], Subscript)

    def test_call_with_no_arguments(self):
        value = parse("x = foo()").statements[0].value
        assert isinstance(value, Call)
        assert value.args == ()

    def test_nested_calls(self):
        value = parse("x = min(max(a, b), c)").statements[0].value
        assert isinstance(value, Call)
        assert isinstance(value.args[0], Call)

    def test_attribute_read(self):
        value = parse("x = f.weight").statements[0].value
        assert isinstance(value, Attribute)
        assert value.obj == "f"
        assert value.attribute == "weight"

    def test_comparison(self):
        value = parse("x = a <= b").statements[0].value
        assert isinstance(value, Compare)
        assert value.operator == "<="

    def test_membership(self):
        program = parse("if f in last_finish\n    x = 1")
        condition = program.statements[0].condition
        assert isinstance(condition, Membership)
        assert condition.table == "last_finish"
        assert condition.negated is False

    def test_negated_membership(self):
        program = parse("if f not in last_finish\n    x = 1")
        condition = program.statements[0].condition
        assert isinstance(condition, Membership)
        assert condition.negated is True

    def test_boolean_and_or(self):
        program = parse("if a > 1 and b > 2 or c > 3\n    x = 1")
        condition = program.statements[0].condition
        assert isinstance(condition, BoolOp)
        assert condition.operator == "or"
        assert isinstance(condition.operands[0], BoolOp)
        assert condition.operands[0].operator == "and"

    def test_not_operator(self):
        program = parse("if not done\n    x = 1")
        condition = program.statements[0].condition
        assert isinstance(condition, UnaryOp)
        assert condition.operator == "not"

    def test_boolean_literals(self):
        value = parse("x = true").statements[0].value
        assert isinstance(value, Boolean)
        assert value.value is True


class TestIfStatements:
    def test_if_without_else(self):
        program = parse("if a > b\n    x = 1")
        statement = program.statements[0]
        assert isinstance(statement, If)
        assert len(statement.body) == 1
        assert statement.orelse == ()

    def test_if_with_else(self):
        program = parse("if a > b\n    x = 1\nelse\n    x = 2")
        statement = program.statements[0]
        assert len(statement.body) == 1
        assert len(statement.orelse) == 1

    def test_if_with_colons(self):
        program = parse("if a > b:\n    x = 1\nelse:\n    x = 2")
        statement = program.statements[0]
        assert len(statement.body) == 1
        assert len(statement.orelse) == 1

    def test_if_with_parenthesised_condition(self):
        program = parse("if (a > b):\n    x = 1")
        statement = program.statements[0]
        assert isinstance(statement.condition, Compare)

    def test_c_style_inline_if(self):
        program = parse("if (tb > BURST_SIZE) tb = BURST_SIZE;")
        statement = program.statements[0]
        assert isinstance(statement, If)
        assert len(statement.body) == 1
        assert isinstance(statement.body[0], Assign)
        assert statement.orelse == ()

    def test_elif_chain_desugars_to_nested_if(self):
        source = (
            "if a > 1\n"
            "    x = 1\n"
            "elif a > 2\n"
            "    x = 2\n"
            "else\n"
            "    x = 3\n"
        )
        statement = parse(source).statements[0]
        assert isinstance(statement, If)
        assert len(statement.orelse) == 1
        nested = statement.orelse[0]
        assert isinstance(nested, If)
        assert len(nested.body) == 1
        assert len(nested.orelse) == 1

    def test_nested_if(self):
        source = (
            "if a > 1\n"
            "    if b > 2\n"
            "        x = 1\n"
            "    else\n"
            "        x = 2\n"
        )
        outer = parse(source).statements[0]
        inner = outer.body[0]
        assert isinstance(inner, If)
        assert len(inner.orelse) == 1

    def test_multi_statement_block(self):
        source = "if a > 1\n    x = 1\n    y = 2\n    z = 3\nw = 4"
        program = parse(source)
        assert len(program.statements) == 2
        assert len(program.statements[0].body) == 3

    def test_else_with_inline_body(self):
        program = parse("if a > b\n    x = 1\nelse x = 2")
        statement = program.statements[0]
        assert len(statement.orelse) == 1


class TestErrors:
    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse("")

    def test_missing_assignment_value(self):
        with pytest.raises(ParseError):
            parse("x = ")

    def test_missing_equals(self):
        with pytest.raises(ParseError):
            parse("x 5")

    def test_unclosed_parenthesis(self):
        with pytest.raises(ParseError):
            parse("x = (a + b")

    def test_unclosed_subscript(self):
        with pytest.raises(ParseError):
            parse("x = table[f")

    def test_empty_if_block(self):
        with pytest.raises(ParseError):
            parse("if a > b\n    // only a comment\nx = 1")

    def test_bare_expression_statement_rejected(self):
        with pytest.raises(ParseError):
            parse("a + b")

    def test_stray_indent_rejected(self):
        with pytest.raises(ParseError):
            parse("x = 1\n    y = 2")

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse("x = 1\ny = * 2")
        assert excinfo.value.line == 2


class TestPaperFigures:
    """Every figure listing parses, with the expected top-level structure."""

    def test_stfq_structure(self):
        from repro.lang.programs import STFQ_SOURCE

        program = parse(STFQ_SOURCE)
        kinds = [type(s).__name__ for s in program.statements]
        assert kinds == ["Assign", "If", "Assign", "Assign"]

    def test_token_bucket_structure(self):
        from repro.lang.programs import TOKEN_BUCKET_SOURCE

        program = parse(TOKEN_BUCKET_SOURCE)
        kinds = [type(s).__name__ for s in program.statements]
        assert kinds == ["Assign", "If", "Assign", "Assign", "Assign"]

    def test_min_rate_structure(self):
        from repro.lang.programs import MIN_RATE_SOURCE

        program = parse(MIN_RATE_SOURCE)
        kinds = [type(s).__name__ for s in program.statements]
        assert kinds == ["Assign", "If", "If", "Assign", "Assign"]

    def test_stop_and_go_structure(self):
        from repro.lang.programs import STOP_AND_GO_SOURCE

        program = parse(STOP_AND_GO_SOURCE)
        kinds = [type(s).__name__ for s in program.statements]
        assert kinds == ["If", "Assign"]
        assert len(program.statements[0].body) == 2

    @pytest.mark.parametrize("name", [
        "stfq", "token_bucket", "lstf", "stop_and_go", "min_rate",
        "fifo", "strict_priority", "sjf", "srpt", "edf", "las",
    ])
    def test_all_programs_parse(self, name):
        from repro.lang.programs import PROGRAM_SOURCES

        program = parse(PROGRAM_SOURCES[name])
        assert program.statements


class TestHelpers:
    def test_iter_assignments_finds_nested_assignments(self):
        source = "if a > b\n    x = 1\nelse\n    y = 2\nz = 3"
        assignments = list(iter_assignments(parse(source)))
        targets = sorted(
            a.target.identifier for a in assignments if isinstance(a.target, Name)
        )
        assert targets == ["x", "y", "z"]

    def test_format_node_round_trips_simple_expressions(self):
        statement = parse("p.rank = max(a, b) + c / 2").statements[0]
        text = format_node(statement)
        assert "p.rank" in text
        assert "max(a, b)" in text
