"""Domino-style atoms and transaction feasibility analysis (Section 4.1).

The paper implements scheduling and shaping transactions with Domino: a
transaction is compiled into a pipeline of *atoms* — small processing units
that constitute the programmable switch's instruction set — and is rejected
if it cannot run at line rate.  The substitution in this reproduction
(DESIGN.md) replaces the Domino compiler with a feasibility analyser over a
small explicit intermediate representation:

* a :class:`TransactionSpec` lists the transaction's *stateful updates*
  (each names the state variable, the kind of update, and the packet fields
  it reads) and its stateless operations;
* each stateful update must fit one of the :data:`ATOM_TEMPLATES` — the atom
  vocabulary published with Domino (read/add/write, predicated variants,
  if-else, pairs);
* the analyser then reports the pipeline depth, atom count and chip area,
  reproducing Section 4.1's argument that all the paper's transactions fit
  with a few hundred atoms at <1% area overhead.

Specs for every transaction used in the paper are provided in
:data:`PAPER_TRANSACTIONS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import CompilationError

#: Area of the largest Domino atom ("Pairs") in a 32 nm standard-cell
#: library, from Section 4.1.
PAIRS_ATOM_AREA_UM2 = 6000.0
#: Atom budget the paper assumes a 200 mm^2 switching chip can spare at <1%
#: area overhead.
ATOM_BUDGET_PER_CHIP = 300


@dataclass(frozen=True)
class AtomTemplate:
    """One atom type: what state updates it can express and its cost.

    ``capability`` is an ordered scale: an update requiring capability *k*
    can be served by any template with capability >= *k*.
    """

    name: str
    capability: int
    area_um2: float
    description: str


#: Atom vocabulary, ordered by increasing capability.  Area numbers follow
#: the Domino paper's relative sizes, anchored at Pairs = 6000 um^2.
ATOM_TEMPLATES: Tuple[AtomTemplate, ...] = (
    AtomTemplate("Stateless", 0, 400.0, "pure packet-field arithmetic, no state"),
    AtomTemplate("ReadWrite", 1, 800.0, "read or write one state variable"),
    AtomTemplate("AddToState", 2, 1200.0, "increment one state variable"),
    AtomTemplate("PRAW", 3, 2000.0, "predicated read-add-write on one state variable"),
    AtomTemplate("IfElseRAW", 4, 3200.0, "if/else guarded read-add-write"),
    AtomTemplate("Sub", 5, 4000.0, "read-add-write with subtraction in the predicate"),
    AtomTemplate("Nested", 6, 5200.0, "two-level nested conditional update"),
    AtomTemplate("Pairs", 7, PAIRS_ATOM_AREA_UM2, "update a pair of state variables together"),
)


def template_by_name(name: str) -> AtomTemplate:
    for template in ATOM_TEMPLATES:
        if template.name == name:
            return template
    raise KeyError(f"unknown atom template {name!r}")


@dataclass(frozen=True)
class StateUpdate:
    """One stateful operation inside a transaction."""

    variable: str
    #: Minimum atom capability needed (index into the capability scale).
    required_capability: int
    #: Packet fields read while computing the update (documentation only).
    reads: Tuple[str, ...] = ()


@dataclass
class TransactionSpec:
    """Explicit IR of a scheduling or shaping transaction."""

    name: str
    kind: str  # "scheduling" | "shaping"
    state_updates: Sequence[StateUpdate] = field(default_factory=tuple)
    stateless_ops: int = 1  # rank assignment itself is one stateless op
    notes: str = ""

    def state_variables(self) -> List[str]:
        return [update.variable for update in self.state_updates]


@dataclass
class PipelineReport:
    """Result of mapping a transaction onto an atom pipeline."""

    transaction: str
    feasible: bool
    atoms_used: Dict[str, int]
    total_atoms: int
    pipeline_depth: int
    area_um2: float
    reason: str = ""

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1e6


class AtomPipelineAnalyzer:
    """Maps transaction specs onto the atom vocabulary.

    Feasibility rule (the essence of Domino's restriction): every state
    variable must be read, modified and written back within a *single* atom
    — state cannot span pipeline stages — so each
    :class:`StateUpdate` needs one atom of at least its required capability.
    Stateless operations pack ``ops_per_stateless_atom`` to an atom.
    """

    def __init__(
        self,
        templates: Sequence[AtomTemplate] = ATOM_TEMPLATES,
        ops_per_stateless_atom: int = 2,
    ) -> None:
        self.templates = sorted(templates, key=lambda t: t.capability)
        self.max_capability = max(t.capability for t in self.templates)
        self.ops_per_stateless_atom = max(1, ops_per_stateless_atom)

    def _cheapest_template(self, capability: int) -> Optional[AtomTemplate]:
        for template in self.templates:
            if template.capability >= capability:
                return template
        return None

    def analyze(self, spec: TransactionSpec) -> PipelineReport:
        """Map one transaction onto atoms; infeasible specs are reported,
        not raised, so sweeps can tabulate them."""
        atoms_used: Dict[str, int] = {}
        area = 0.0
        for update in spec.state_updates:
            template = self._cheapest_template(update.required_capability)
            if template is None:
                return PipelineReport(
                    transaction=spec.name,
                    feasible=False,
                    atoms_used={},
                    total_atoms=0,
                    pipeline_depth=0,
                    area_um2=0.0,
                    reason=(
                        f"state variable {update.variable!r} needs capability "
                        f"{update.required_capability}, beyond the atom vocabulary"
                    ),
                )
            atoms_used[template.name] = atoms_used.get(template.name, 0) + 1
            area += template.area_um2

        stateless_atoms = -(-spec.stateless_ops // self.ops_per_stateless_atom)
        if stateless_atoms:
            stateless = template_by_name("Stateless")
            atoms_used[stateless.name] = atoms_used.get(stateless.name, 0) + stateless_atoms
            area += stateless.area_um2 * stateless_atoms

        total_atoms = sum(atoms_used.values())
        # Stateful atoms must appear in distinct stages only when they feed
        # each other; transactions in the paper have independent state
        # variables, so the depth is the stateless prologue plus one stage
        # per dependent chain — conservatively: stateless stages + 1.
        depth = stateless_atoms + (1 if spec.state_updates else 0)
        return PipelineReport(
            transaction=spec.name,
            feasible=True,
            atoms_used=atoms_used,
            total_atoms=total_atoms,
            pipeline_depth=depth,
            area_um2=area,
        )

    def analyze_many(self, specs: Sequence[TransactionSpec]) -> List[PipelineReport]:
        return [self.analyze(spec) for spec in specs]

    def total_area_mm2(self, specs: Sequence[TransactionSpec]) -> float:
        return sum(report.area_um2 for report in self.analyze_many(specs)) / 1e6

    def fits_budget(self, specs: Sequence[TransactionSpec],
                    budget_atoms: int = ATOM_BUDGET_PER_CHIP) -> bool:
        """Do these transactions fit in the chip's atom budget?"""
        reports = self.analyze_many(specs)
        if not all(report.feasible for report in reports):
            return False
        return sum(report.total_atoms for report in reports) <= budget_atoms


def _spec(name: str, kind: str, updates: Sequence[Tuple[str, int, Tuple[str, ...]]],
          stateless_ops: int, notes: str = "") -> TransactionSpec:
    return TransactionSpec(
        name=name,
        kind=kind,
        state_updates=tuple(
            StateUpdate(variable=v, required_capability=c, reads=r) for v, c, r in updates
        ),
        stateless_ops=stateless_ops,
        notes=notes,
    )


#: Explicit IR for every transaction the paper programs (Figures 1, 4c, 6,
#: 7, 8 and the Section 3.4 one-liners).  Capabilities follow the structure
#: of each figure: e.g. STFQ's ``last_finish`` needs a read-max-add-write
#: (Pairs-class, as the Domino paper itself reports for this transaction),
#: while its ``virtual_time`` is a plain read.
PAPER_TRANSACTIONS: Dict[str, TransactionSpec] = {
    spec.name: spec
    for spec in (
        _spec(
            "stfq", "scheduling",
            [("virtual_time", 1, ("p.length",)),
             ("last_finish", 7, ("p.length", "p.flow"))],
            stateless_ops=2,
            notes="Figure 1; Domino compiles this with the Pairs atom",
        ),
        _spec(
            "token_bucket", "shaping",
            [("tokens", 6, ("p.length",)),
             ("last_time", 1, ())],
            stateless_ops=3,
            notes="Figure 4c",
        ),
        _spec(
            "stop_and_go", "shaping",
            [("frame_begin_time", 4, ()),
             ("frame_end_time", 4, ())],
            stateless_ops=1,
            notes="Figure 7",
        ),
        _spec(
            "min_rate", "scheduling",
            [("tb", 6, ("p.size",)),
             ("last_time", 1, ())],
            stateless_ops=2,
            notes="Figure 8",
        ),
        _spec(
            "lstf", "scheduling",
            [],
            stateless_ops=2,
            notes="Figure 6: pure packet-field arithmetic",
        ),
        _spec("fifo", "scheduling", [], stateless_ops=1, notes="rank = arrival time"),
        _spec("strict_priority", "scheduling", [], stateless_ops=1,
              notes="rank = TOS field"),
        _spec("sjf", "scheduling", [], stateless_ops=1, notes="rank = flow size"),
        _spec("srpt", "scheduling", [], stateless_ops=1, notes="rank = remaining size"),
        _spec("edf", "scheduling", [], stateless_ops=1, notes="rank = deadline"),
        _spec(
            "las", "scheduling",
            [("attained", 2, ("p.length",))],
            stateless_ops=1,
            notes="switch-maintained least attained service",
        ),
        _spec(
            "sced", "scheduling",
            [("last_deadline", 4, ("p.length",))],
            stateless_ops=2,
            notes="Section 3.4: SC-EDF deadline recursion",
        ),
    )
}


def paper_transaction_specs() -> List[TransactionSpec]:
    """All paper transactions, in a stable order."""
    return [PAPER_TRANSACTIONS[name] for name in sorted(PAPER_TRANSACTIONS)]


def require_feasible(spec: TransactionSpec,
                     analyzer: Optional[AtomPipelineAnalyzer] = None) -> PipelineReport:
    """Analyse a spec and raise :class:`CompilationError` if infeasible."""
    analyzer = analyzer or AtomPipelineAnalyzer()
    report = analyzer.analyze(spec)
    if not report.feasible:
        raise CompilationError(f"transaction {spec.name!r} infeasible: {report.reason}")
    return report
