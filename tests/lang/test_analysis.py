"""Tests for the Domino-style program analysis (Section 4.1 front end)."""

from __future__ import annotations

import pytest

from repro.hardware.atoms import (
    ATOM_BUDGET_PER_CHIP,
    AtomPipelineAnalyzer,
    PAPER_TRANSACTIONS,
)
from repro.lang import analyze_program, spec_from_program
from repro.lang.programs import (
    PROGRAM_SOURCES,
    PROGRAM_STATE,
    SHAPING_PROGRAMS,
)


class TestReadWriteSets:
    def test_stateless_program_has_no_state_updates(self):
        analysis = analyze_program("p.rank = p.deadline")
        assert analysis.state_variables == {}
        assert analysis.sets_rank is True
        assert analysis.stateless_ops == 1

    def test_packet_fields_read_and_written(self):
        analysis = analyze_program(PROGRAM_SOURCES["lstf"])
        assert "slack" in analysis.packet_fields_read
        assert "prev_wait_time" in analysis.packet_fields_read
        assert "slack" in analysis.packet_fields_written
        assert analysis.sets_rank is True

    def test_state_read_only(self):
        analysis = analyze_program("p.rank = virtual_time",
                                   state={"virtual_time": 0.0})
        info = analysis.state_variables["virtual_time"]
        assert info.read is True
        assert info.writes == 0
        assert info.required_capability() == 1

    def test_pure_counter_is_add_to_state(self):
        analysis = analyze_program("counter = counter + 1\np.rank = counter",
                                   state={"counter": 0})
        info = analysis.state_variables["counter"]
        assert info.self_referential is True
        assert info.purely_additive is True
        assert info.required_capability() == 2

    def test_conditional_write_detected(self):
        source = "if p.length > 100\n    flag = 1\np.rank = 0"
        analysis = analyze_program(source, state={"flag": 0})
        info = analysis.state_variables["flag"]
        assert info.conditional_write is True
        assert info.required_capability() == 3

    def test_self_guarded_write_detected(self):
        source = "if x > 10\n    x = 0\np.rank = x"
        analysis = analyze_program(source, state={"x": 0})
        info = analysis.state_variables["x"]
        assert info.guards_own_write is True
        assert info.required_capability() >= 4

    def test_nested_conditional_write(self):
        source = (
            "if p.length > 10\n"
            "    if p.length > 100\n"
            "        x = 1\n"
            "p.rank = 0\n"
        )
        analysis = analyze_program(source, state={"x": 0})
        assert analysis.state_variables["x"].max_write_depth == 2
        assert analysis.state_variables["x"].required_capability() >= 6

    def test_paired_state_dependency_detected(self):
        # y's update reads itself and x: needs the Pairs atom.
        source = "y = max(y, x) + 1\np.rank = y"
        analysis = analyze_program(source, state={"x": 0.0, "y": 0.0})
        assert analysis.state_variables["y"].required_capability() == 7

    def test_dependency_propagates_through_locals(self):
        source = "tmp = x + 1\ny = y + tmp\np.rank = y"
        analysis = analyze_program(source, state={"x": 0.0, "y": 0.0})
        info = analysis.state_variables["y"]
        assert "x" in info.depends_on
        assert info.required_capability() == 7

    def test_dependency_propagates_through_packet_temporaries(self):
        # Figure 1's pattern: p.start carries state into the table update.
        source = (
            "p.start = max(virtual_time, 0)\n"
            "last_finish[p.flow] = p.start + p.length\n"
            "p.rank = p.start\n"
        )
        analysis = analyze_program(
            source, state={"virtual_time": 0.0, "last_finish": {}}
        )
        assert "virtual_time" in analysis.state_variables["last_finish"].depends_on

    def test_params_are_not_state(self):
        analysis = analyze_program("p.rank = now + T", state={})
        assert "T" in analysis.params_read
        assert analysis.state_variables == {}

    def test_summary_is_readable(self):
        analysis = analyze_program(
            PROGRAM_SOURCES["stfq"], state=PROGRAM_STATE["stfq"]
        )
        text = analysis.summary()
        assert "last_finish" in text
        assert "stateless operations" in text


class TestPaperPrograms:
    def test_stfq_needs_the_pairs_atom_for_last_finish(self):
        analysis = analyze_program(
            PROGRAM_SOURCES["stfq"], state=PROGRAM_STATE["stfq"]
        )
        last_finish = analysis.state_variables["last_finish"]
        assert last_finish.required_capability() == 7
        # virtual_time is only read on the enqueue side.
        assert analysis.state_variables["virtual_time"].required_capability() <= 2

    def test_lstf_and_fine_grained_are_stateless(self):
        for name in ("lstf", "fifo", "strict_priority", "sjf", "srpt", "edf"):
            analysis = analyze_program(
                PROGRAM_SOURCES[name], state=PROGRAM_STATE[name]
            )
            assert analysis.state_variables == {}, name

    def test_las_maintains_per_flow_counters(self):
        analysis = analyze_program(
            PROGRAM_SOURCES["las"], state=PROGRAM_STATE["las"]
        )
        attained = analysis.state_variables["attained"]
        assert attained.self_referential is True
        assert attained.writes == 2

    def test_token_bucket_state_updates(self):
        analysis = analyze_program(
            PROGRAM_SOURCES["token_bucket"], state=PROGRAM_STATE["token_bucket"]
        )
        tokens = analysis.state_variables["tokens"]
        last_time = analysis.state_variables["last_time"]
        assert tokens.self_referential is True
        assert last_time.required_capability() == 1
        assert analysis.sets_send_time is True

    def test_stop_and_go_conditional_frame_update(self):
        analysis = analyze_program(
            PROGRAM_SOURCES["stop_and_go"], state=PROGRAM_STATE["stop_and_go"]
        )
        frame_end = analysis.state_variables["frame_end_time"]
        assert frame_end.conditional_write is True
        assert frame_end.guards_own_write is True
        assert frame_end.required_capability() >= 4

    @pytest.mark.parametrize("name", sorted(PROGRAM_SOURCES))
    def test_every_program_sets_an_output(self, name):
        analysis = analyze_program(
            PROGRAM_SOURCES[name], state=PROGRAM_STATE[name]
        )
        assert analysis.sets_rank or analysis.sets_send_time


class TestSpecGeneration:
    @pytest.mark.parametrize("name", sorted(PROGRAM_SOURCES))
    def test_every_paper_program_is_line_rate_feasible(self, name):
        kind = "shaping" if name in SHAPING_PROGRAMS else "scheduling"
        spec = spec_from_program(
            name, PROGRAM_SOURCES[name], state=PROGRAM_STATE[name], kind=kind
        )
        report = AtomPipelineAnalyzer().analyze(spec)
        assert report.feasible, report.reason
        assert report.total_atoms >= 1
        assert report.area_um2 > 0

    def test_all_programs_fit_the_chip_atom_budget(self):
        specs = [
            spec_from_program(name, PROGRAM_SOURCES[name], state=PROGRAM_STATE[name])
            for name in sorted(PROGRAM_SOURCES)
        ]
        analyzer = AtomPipelineAnalyzer()
        assert analyzer.fits_budget(specs, budget_atoms=ATOM_BUDGET_PER_CHIP)

    def test_spec_kind_matches_program_kind(self):
        spec = spec_from_program(
            "token_bucket",
            PROGRAM_SOURCES["token_bucket"],
            state=PROGRAM_STATE["token_bucket"],
            kind="shaping",
        )
        assert spec.kind == "shaping"
        assert set(spec.state_variables()) == {"tokens", "last_time"}

    def test_derived_spec_is_at_least_as_capable_as_the_curated_spec(self):
        """The analyser is conservative: for each state variable it may pick
        a more capable atom than the hand-curated spec, never a less capable
        one (that could wrongly declare an infeasible program feasible)."""
        for name in ("stfq", "token_bucket", "min_rate", "stop_and_go", "las"):
            derived = spec_from_program(
                name, PROGRAM_SOURCES[name], state=PROGRAM_STATE[name]
            )
            curated = PAPER_TRANSACTIONS[name]
            derived_caps = {
                update.variable: update.required_capability
                for update in derived.state_updates
            }
            for update in curated.state_updates:
                variable = update.variable
                if variable == "attained" and name == "las":
                    pass  # same variable name in both
                if variable not in derived_caps:
                    continue  # curated spec may use a different variable name
                assert derived_caps[variable] >= update.required_capability - 1, (
                    name, variable
                )

    def test_stateless_ops_reflect_program_size(self):
        small = spec_from_program("fifo", PROGRAM_SOURCES["fifo"])
        large = spec_from_program(
            "stfq", PROGRAM_SOURCES["stfq"], state=PROGRAM_STATE["stfq"]
        )
        assert small.stateless_ops <= large.stateless_ops
