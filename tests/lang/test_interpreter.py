"""Unit tests for the transaction-language interpreter."""

from __future__ import annotations

import pytest

from repro.core import Packet, TransactionContext
from repro.lang import (
    Interpreter,
    ProgramEnvironment,
    RuntimeLangError,
    parse,
)


def run(source, packet=None, now=0.0, state=None, params=None, flow_attrs=None,
        functions=None, element_flow=None, element_length=None):
    """Execute a program and return (result, environment)."""
    packet = packet or Packet(flow="f1", length=1000)
    ctx = TransactionContext(
        now=now,
        node="test",
        element_flow=element_flow if element_flow is not None else packet.flow,
        element_length=element_length if element_length is not None else packet.length,
    )
    env = ProgramEnvironment(
        state=dict(state or {}),
        params=dict(params or {}),
        flow_attrs=dict(flow_attrs or {}),
        functions=dict(functions or {}),
    )
    result = Interpreter(parse(source)).execute(packet, ctx, env)
    return result, env


class TestArithmetic:
    def test_rank_from_literal(self):
        result, _ = run("p.rank = 7")
        assert result.rank == 7

    def test_arithmetic_operations(self):
        result, _ = run("p.rank = (2 + 3) * 4 - 6 / 3")
        assert result.rank == 18.0

    def test_modulo(self):
        result, _ = run("p.rank = 17 % 5")
        assert result.rank == 2

    def test_unary_minus(self):
        result, _ = run("p.rank = -3 + 10")
        assert result.rank == 7

    def test_division_by_zero_raises(self):
        with pytest.raises(RuntimeLangError) as excinfo:
            run("p.rank = 1 / 0")
        assert "division by zero" in str(excinfo.value)

    def test_min_max_builtins(self):
        result, _ = run("p.rank = min(10, 3) + max(4, 7)")
        assert result.rank == 10

    def test_abs_floor_ceil_builtins(self):
        result, _ = run("a = abs(-2)\nb = floor(1.9)\nc = ceil(1.1)\np.rank = a + b + c")
        assert result.rank == 5


class TestNameResolution:
    def test_now_reads_wall_clock(self):
        result, _ = run("p.rank = now", now=42.5)
        assert result.rank == 42.5

    def test_params_are_readable(self):
        result, _ = run("p.rank = r * 2", params={"r": 21})
        assert result.rank == 42

    def test_params_are_not_writable(self):
        with pytest.raises(RuntimeLangError) as excinfo:
            run("r = 5\np.rank = r", params={"r": 1})
        assert "parameter" in str(excinfo.value)

    def test_state_read_and_write(self):
        result, env = run("counter = counter + 1\np.rank = counter",
                          state={"counter": 10})
        assert result.rank == 11
        assert env.state["counter"] == 11

    def test_locals_shadow_nothing_and_do_not_persist(self):
        result, env = run("tmp = 5\np.rank = tmp", state={"x": 1})
        assert result.rank == 5
        assert "tmp" not in env.state
        assert result.locals["tmp"] == 5

    def test_undefined_name_raises(self):
        with pytest.raises(RuntimeLangError) as excinfo:
            run("p.rank = mystery")
        assert "undefined name" in str(excinfo.value)

    def test_state_wins_over_params_with_same_name(self):
        result, env = run("x = x + 1\np.rank = x",
                          state={"x": 100}, params={"x": 5})
        assert result.rank == 101
        assert env.state["x"] == 101


class TestPacketFields:
    def test_builtin_length_field(self):
        packet = Packet(flow="f1", length=1500)
        result, _ = run("p.rank = p.length", packet=packet)
        assert result.rank == 1500

    def test_size_is_an_alias_for_length(self):
        packet = Packet(flow="f1", length=900)
        result, _ = run("p.rank = p.size", packet=packet)
        assert result.rank == 900

    def test_element_length_overrides_packet_length(self):
        packet = Packet(flow="f1", length=1500)
        result, _ = run("p.rank = p.length", packet=packet, element_length=64)
        assert result.rank == 64

    def test_custom_field_from_fields_mapping(self):
        packet = Packet(flow="f1", length=100, fields={"deadline": 3.5})
        result, _ = run("p.rank = p.deadline", packet=packet)
        assert result.rank == 3.5

    def test_priority_field(self):
        packet = Packet(flow="f1", length=100, priority=4)
        result, _ = run("p.rank = p.priority", packet=packet)
        assert result.rank == 4

    def test_missing_field_raises(self):
        with pytest.raises(RuntimeLangError) as excinfo:
            run("p.rank = p.no_such_field")
        assert "no field" in str(excinfo.value)

    def test_written_field_is_readable_later(self):
        result, _ = run("p.start = 5\np.rank = p.start + 1")
        assert result.rank == 6
        assert result.packet_writes["start"] == 5

    def test_send_time_output(self):
        result, _ = run("p.send_time = now + 2", now=1.0)
        assert result.send_time == 3.0
        assert result.rank is None

    def test_flow_builtin_function(self):
        result, _ = run("f = flow(p)\np.rank = 1", element_flow="left-child")
        assert result.locals["f"] == "left-child"


class TestTablesAndMembership:
    def test_membership_false_then_insert(self):
        source = (
            "f = flow(p)\n"
            "if f in table\n"
            "    p.rank = table[f]\n"
            "else\n"
            "    p.rank = 0\n"
            "table[f] = 99\n"
        )
        result, env = run(source, state={"table": {}})
        assert result.rank == 0
        assert env.state["table"] == {"f1": 99}

    def test_membership_true_reads_entry(self):
        source = "f = flow(p)\nif f in table\n    p.rank = table[f]\nelse\n    p.rank = 0"
        result, _ = run(source, state={"table": {"f1": 7}})
        assert result.rank == 7

    def test_not_in(self):
        source = "f = flow(p)\nif f not in table\n    p.rank = 1\nelse\n    p.rank = 2"
        result, _ = run(source, state={"table": {}})
        assert result.rank == 1

    def test_reading_missing_key_raises(self):
        with pytest.raises(RuntimeLangError) as excinfo:
            run("p.rank = table[p.flow]", state={"table": {}})
        assert "not present" in str(excinfo.value)

    def test_subscript_on_undeclared_table_raises(self):
        with pytest.raises(RuntimeLangError) as excinfo:
            run("mystery[p.flow] = 1\np.rank = 0")
        assert "not a declared state variable" in str(excinfo.value)

    def test_subscript_on_scalar_state_raises(self):
        with pytest.raises(RuntimeLangError) as excinfo:
            run("p.rank = x[p.flow]", state={"x": 3.0})
        assert "not a table" in str(excinfo.value)


class TestControlFlow:
    def test_if_true_branch(self):
        result, _ = run("if 2 > 1\n    p.rank = 1\nelse\n    p.rank = 2")
        assert result.rank == 1

    def test_if_false_branch(self):
        result, _ = run("if 1 > 2\n    p.rank = 1\nelse\n    p.rank = 2")
        assert result.rank == 2

    def test_if_without_else_skips_body(self):
        result, _ = run("p.rank = 0\nif 1 > 2\n    p.rank = 1")
        assert result.rank == 0

    def test_elif_chain(self):
        source = (
            "if p.length > 2000\n"
            "    p.rank = 3\n"
            "elif p.length > 500\n"
            "    p.rank = 2\n"
            "else\n"
            "    p.rank = 1\n"
        )
        result, _ = run(source, packet=Packet(flow="f", length=1000))
        assert result.rank == 2

    def test_c_style_inline_if(self):
        result, env = run("if (x > 10) x = 10;\np.rank = x", state={"x": 50})
        assert result.rank == 10
        assert env.state["x"] == 10

    def test_boolean_and_short_circuits(self):
        # The right operand would raise if evaluated (missing key).
        source = "f = flow(p)\nif false and table[f] > 0\n    p.rank = 1\nelse\n    p.rank = 2"
        result, _ = run(source, state={"table": {}})
        assert result.rank == 2

    def test_boolean_or_short_circuits(self):
        source = "f = flow(p)\nif true or table[f] > 0\n    p.rank = 1\nelse\n    p.rank = 2"
        result, _ = run(source, state={"table": {}})
        assert result.rank == 1

    def test_not_operator(self):
        result, _ = run("if not (1 > 2)\n    p.rank = 5\nelse\n    p.rank = 6")
        assert result.rank == 5

    def test_nested_conditionals(self):
        source = (
            "if p.length > 100\n"
            "    if p.length > 1000\n"
            "        p.rank = 2\n"
            "    else\n"
            "        p.rank = 1\n"
            "else\n"
            "    p.rank = 0\n"
        )
        result, _ = run(source, packet=Packet(flow="f", length=500))
        assert result.rank == 1


class TestFlowAttributes:
    def test_flow_attribute_accessor(self):
        weights = {"gold": 4.0, "silver": 1.0}
        source = "f = flow(p)\np.rank = 10 / f.weight"
        result, _ = run(
            source,
            element_flow="gold",
            flow_attrs={"weight": lambda flow: weights.get(flow, 1.0)},
        )
        assert result.rank == 2.5

    def test_missing_flow_attribute_accessor_raises(self):
        with pytest.raises(RuntimeLangError) as excinfo:
            run("f = flow(p)\np.rank = f.weight")
        assert "flow attribute accessor" in str(excinfo.value)


class TestCustomFunctions:
    def test_custom_function(self):
        result, _ = run(
            "p.rank = double(21)", functions={"double": lambda value: value * 2}
        )
        assert result.rank == 42

    def test_unknown_function_raises(self):
        with pytest.raises(RuntimeLangError) as excinfo:
            run("p.rank = frobnicate(1)")
        assert "unknown function" in str(excinfo.value)

    def test_wrong_arity_reports_call_failure(self):
        with pytest.raises(RuntimeLangError) as excinfo:
            run("p.rank = one() + 1", functions={"one": lambda x: x})
        assert "failed" in str(excinfo.value)


class TestAssignmentRestrictions:
    def test_assigning_to_non_packet_attribute_raises(self):
        with pytest.raises(RuntimeLangError) as excinfo:
            run("f.weight = 2\np.rank = 0")
        assert "packet fields" in str(excinfo.value)
