"""Static shortest-path routing over a :class:`~repro.net.topology.Network`.

One BFS per destination host computes, for every node, the set of neighbours
that lie on *some* shortest path to that destination.  The result is a
forwarding table ``node -> dst -> [next hops]``:

* with ``ecmp=False`` only the lexicographically first next hop is kept, so
  every destination has exactly one deterministic path;
* with ``ecmp=True`` all equal-cost next hops are kept and the switch picks
  one per flow by a stable CRC32 hash of the flow label (see
  :meth:`repro.switch.switch.SharedMemorySwitch.select_port`), so a flow
  never reorders across paths but distinct flows spread over the fabric.

Routing is hop-count shortest path (not weighted by link rate): that is
what real L3 fabrics (and the pFabric/leaf-spine evaluations this layer
exists for) do.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence

from ..exceptions import TopologyError
from .topology import Network

#: node -> destination -> candidate next-hop node names.
ForwardingTables = Dict[str, Dict[str, List[str]]]

#: Predicate over directed links: ``link_filter(src, dst) -> bool``.  The
#: fault layer passes one to route around administratively-down links and
#: switches; ``None`` means every installed link is usable.
LinkFilter = Callable[[str, str], bool]


def hop_distances(network: Network, dst: str,
                  link_filter: Optional[LinkFilter] = None) -> Dict[str, int]:
    """Hop count from every node to ``dst`` (BFS on reversed links).

    End hosts are never transit nodes: paths may start at a host and end
    at ``dst``, but a multi-homed host in the middle of the graph does not
    forward other nodes' traffic, so BFS never extends a path *through* a
    host — only out of ``dst`` itself.
    """
    network.node(dst)
    # Links are installed per direction; walk them backwards so asymmetric
    # (unidirectional) links route correctly.
    predecessors: Dict[str, List[str]] = {name: [] for name in network.nodes}
    for src in network.links:
        for neighbor in network.links[src]:
            if link_filter is not None and not link_filter(src, neighbor):
                continue
            predecessors[neighbor].append(src)
    distances = {dst: 0}
    frontier = deque([dst])
    while frontier:
        node = frontier.popleft()
        if node != dst and network.is_host(node):
            continue
        for upstream in predecessors[node]:
            if upstream not in distances:
                distances[upstream] = distances[node] + 1
                frontier.append(upstream)
    return distances


def next_hops(network: Network, node: str, dst: str,
              distances: Optional[Dict[str, int]] = None,
              link_filter: Optional[LinkFilter] = None) -> List[str]:
    """Neighbours of ``node`` on a shortest path to ``dst``, sorted."""
    if node == dst:
        return []
    if distances is None:
        distances = hop_distances(network, dst, link_filter)
    if node not in distances:
        raise TopologyError(f"no path from {node!r} to {dst!r}")
    return sorted(
        neighbor for neighbor in network.links[node]
        if distances.get(neighbor, float("inf")) == distances[node] - 1
        # A host neighbour is a valid next hop only when it IS the
        # destination; hosts never forward transit traffic.
        and (neighbor == dst or not network.is_host(neighbor))
        and (link_filter is None or link_filter(node, neighbor))
    )


def build_forwarding_tables(
    network: Network,
    destinations: Optional[Sequence[str]] = None,
    ecmp: bool = False,
    partial: bool = False,
    link_filter: Optional[LinkFilter] = None,
) -> ForwardingTables:
    """Forwarding tables for every node toward every destination host.

    ``destinations`` defaults to all hosts.  Raises
    :class:`~repro.exceptions.TopologyError` if any node cannot reach a
    destination (the fabric refuses to run on partially-routable graphs) —
    unless ``partial=True``, in which case unreachable pairs are simply
    left out of the tables (the fault layer's reconvergence mode: traffic
    toward a partitioned destination is blackholed at the first routeless
    hop, not crashed on).  ``link_filter`` restricts routing to the links
    it accepts.
    """
    if destinations is None:
        destinations = network.hosts()
    tables: ForwardingTables = {name: {} for name in network.nodes}
    for dst in destinations:
        distances = hop_distances(network, dst, link_filter)
        if not partial:
            missing = [name for name in network.nodes if name not in distances]
            if missing:
                raise TopologyError(
                    f"destination {dst!r} unreachable from {sorted(missing)}"
                )
        for node in network.nodes:
            if node == dst or node not in distances:
                continue
            candidates = next_hops(network, node, dst, distances, link_filter)
            if partial and not candidates:
                continue
            tables[node][dst] = candidates if ecmp else candidates[:1]
    return tables


def path(network: Network, src: str, dst: str) -> List[str]:
    """The deterministic (non-ECMP) node path from ``src`` to ``dst``."""
    distances = hop_distances(network, dst)
    if src not in distances:
        raise TopologyError(f"no path from {src!r} to {dst!r}")
    nodes = [src]
    current = src
    while current != dst:
        current = next_hops(network, current, dst, distances)[0]
        nodes.append(current)
    return nodes
