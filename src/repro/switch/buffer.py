"""Shared-memory packet buffer with cell-based accounting.

The paper targets a Broadcom Trident-class shared-memory switch: a 12 MByte
packet buffer carved into 200-byte *cells*, shared by all ports (Section
5.1).  Scheduling is orthogonal to buffering (Section 6.1): before a packet
is enqueued into the scheduler, occupancy counters are checked against
static or dynamic thresholds and the packet is dropped if it would exceed
them.

:class:`SharedBuffer` implements the cell accounting and per-flow / per-port
occupancy counters; admission policies live in
:mod:`repro.switch.thresholds` and :mod:`repro.switch.red`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

from ..core.packet import Packet
from ..exceptions import BufferError_

#: Defaults taken from Section 5.1 (Broadcom Trident-class switch).
DEFAULT_BUFFER_BYTES = 12 * 1024 * 1024
DEFAULT_CELL_BYTES = 200


@dataclass
class BufferOccupancy:
    """Snapshot of buffer usage."""

    used_cells: int
    total_cells: int
    used_bytes: int

    @property
    def utilization(self) -> float:
        return self.used_cells / self.total_cells if self.total_cells else 0.0

    @property
    def free_cells(self) -> int:
        return self.total_cells - self.used_cells


class SharedBuffer:
    """Cell-granular shared packet buffer.

    Parameters
    ----------
    capacity_bytes:
        Total buffer size (default 12 MB).
    cell_bytes:
        Cell size; every packet consumes ``ceil(length / cell_bytes)`` cells
        (default 200 B, so a 64 B packet still costs a full cell — the worst
        case the paper sizes the rank store for).
    """

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_BUFFER_BYTES,
        cell_bytes: int = DEFAULT_CELL_BYTES,
    ) -> None:
        if capacity_bytes <= 0 or cell_bytes <= 0:
            raise ValueError("capacity_bytes and cell_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self.cell_bytes = cell_bytes
        self.total_cells = capacity_bytes // cell_bytes
        self.used_cells = 0
        self.used_bytes = 0
        self.cells_by_flow: Dict[str, int] = {}
        self.cells_by_port: Dict[str, int] = {}
        self.drops_no_space = 0

    # -- accounting -----------------------------------------------------------
    def cells_for(self, packet: Packet) -> int:
        """Number of cells a packet occupies."""
        # Integer ceiling division: packet lengths are positive ints, so this
        # is exact and avoids the float round-trip of math.ceil on a path
        # executed several times per packet per hop.
        return (packet.length + self.cell_bytes - 1) // self.cell_bytes

    def occupancy(self) -> BufferOccupancy:
        return BufferOccupancy(
            used_cells=self.used_cells,
            total_cells=self.total_cells,
            used_bytes=self.used_bytes,
        )

    def flow_cells(self, flow: str) -> int:
        return self.cells_by_flow.get(flow, 0)

    def port_cells(self, port: str) -> int:
        return self.cells_by_port.get(port, 0)

    @property
    def free_cells(self) -> int:
        return self.total_cells - self.used_cells

    # -- allocation --------------------------------------------------------------
    def can_admit(self, packet: Packet) -> bool:
        """Is there physically room for this packet?"""
        return self.cells_for(packet) <= self.free_cells

    def allocate(self, packet: Packet, port: str = "") -> int:
        """Reserve cells for a packet; returns the number of cells taken.

        Raises :class:`~repro.exceptions.BufferError_` when the buffer lacks
        space; callers normally check :meth:`can_admit` (or a threshold
        policy) first and drop instead.
        """
        cells = self.cells_for(packet)
        if cells > self.free_cells:
            self.drops_no_space += 1
            raise BufferError_(
                f"buffer full: need {cells} cells, only {self.free_cells} free"
            )
        self.used_cells += cells
        self.used_bytes += packet.length
        self.cells_by_flow[packet.flow] = self.cells_by_flow.get(packet.flow, 0) + cells
        if port:
            self.cells_by_port[port] = self.cells_by_port.get(port, 0) + cells
        return cells

    def allocate_many(self, packets: Sequence[Packet], port: str = "") -> int:
        """Reserve cells for a whole burst in one accounting pass.

        All-or-nothing: raises :class:`~repro.exceptions.BufferError_`
        without allocating anything when the burst does not fit, so callers
        can fall back to per-packet admission.  Returns the cells taken.
        """
        cell_counts = [self.cells_for(packet) for packet in packets]
        total = sum(cell_counts)
        if total > self.free_cells:
            self.drops_no_space += 1
            raise BufferError_(
                f"buffer full: burst needs {total} cells, only "
                f"{self.free_cells} free"
            )
        self.used_cells += total
        for packet, cells in zip(packets, cell_counts):
            self.used_bytes += packet.length
            self.cells_by_flow[packet.flow] = (
                self.cells_by_flow.get(packet.flow, 0) + cells
            )
        if port and packets:
            self.cells_by_port[port] = self.cells_by_port.get(port, 0) + total
        return total

    def release_many(self, packets: Iterable[Packet], port: str = "") -> None:
        """Return a burst's cells to the free pool (batch fast path)."""
        for packet in packets:
            self.release(packet, port=port)

    def release(self, packet: Packet, port: str = "") -> None:
        """Return a packet's cells to the free pool (on transmit or drop)."""
        cells = self.cells_for(packet)
        if cells > self.used_cells:
            raise BufferError_("releasing more cells than are allocated")
        self.used_cells -= cells
        self.used_bytes -= packet.length
        flow_cells = self.cells_by_flow.get(packet.flow, 0)
        if flow_cells < cells:
            raise BufferError_(
                f"flow {packet.flow!r} releasing {cells} cells but holds {flow_cells}"
            )
        self.cells_by_flow[packet.flow] = flow_cells - cells
        if self.cells_by_flow[packet.flow] == 0:
            del self.cells_by_flow[packet.flow]
        if port:
            port_cells = self.cells_by_port.get(port, 0)
            self.cells_by_port[port] = max(0, port_cells - cells)

    def reset(self) -> None:
        """Clear all accounting (fresh run)."""
        self.used_cells = 0
        self.used_bytes = 0
        self.cells_by_flow.clear()
        self.cells_by_port.clear()
        self.drops_no_space = 0
