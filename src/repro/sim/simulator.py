"""A small discrete-event simulator.

The behavioural experiments in the paper (bandwidth shares under HPFQ, rate
limits under shaping, Stop-and-Go delay bounds, minimum-rate guarantees) all
need packets to *take time on the wire*.  This simulator provides exactly
that: a clock, an event queue, and components (sources, output ports) that
schedule work against it.

Design notes
------------
* Time is a float in seconds; the simulator never invents time — it jumps
  from event to event.
* Determinism: same inputs, same outputs.  Events at the same time run in
  scheduling order; all randomness lives in the traffic generators, which
  take explicit seeds.
* Components register themselves via :meth:`Simulator.schedule` /
  :meth:`Simulator.schedule_at`; there is no global registry.
* The :meth:`Simulator.run` loop is deliberately *flat*: it operates on the
  event queue's raw tuple heap with the hot names bound to locals, because
  at fabric scale the per-event dispatch overhead dominates the simulation.
  Events are bare ``(time, seq, callback)`` tuples (see
  :mod:`repro.sim.events`); cancellation goes through
  :meth:`Simulator.cancel`.
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable, Optional

from ..exceptions import SimulationError
from ..obs import metrics
from .events import Event, EventQueue


class _SimMetrics:
    """Instruments for the event loop, captured once at construction."""

    __slots__ = ("run_wall_s", "drain_width", "events", "heap_size")

    def __init__(self, registry: "metrics.MetricsRegistry") -> None:
        self.run_wall_s = registry.histogram("sim.run_wall_s")
        self.drain_width = registry.histogram(
            "sim.drain_width", buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128))
        self.events = registry.counter("sim.events")
        self.heap_size = registry.gauge("sim.heap_size")


class Simulator:
    """Discrete-event simulation kernel."""

    __slots__ = ("now", "_queue", "events_processed", "_running", "_deferred",
                 "_metrics")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self.events_processed = 0
        self._running = False
        #: One-slot deferral buffer (see :meth:`schedule_fast`): the most
        #: recently fast-scheduled event, kept out of the heap while it is
        #: a plausible next-event candidate.
        self._deferred: Optional[Event] = None
        # None unless a metrics registry was enabled when this simulator
        # was built; run() binds it to a local, so the disabled cost is
        # one pointer comparison per outer loop iteration.
        registry = metrics.active()
        self._metrics = None if registry is None else _SimMetrics(registry)

    # -- scheduling -----------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], Any], name: str = "") -> Event:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        # Inlined EventQueue.push: one event per simulated packet per hop
        # makes even the single extra call measurable.
        queue = self._queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        entry = (self.now + delay, seq, callback)
        heappush(queue._heap, entry)
        return entry

    def schedule_at(self, time: float, callback: Callable[[], Any], name: str = "") -> Event:
        """Run ``callback`` at absolute simulated time ``time``."""
        now = self.now
        if time < now - 1e-12:
            raise SimulationError(
                f"cannot schedule at {time} (now is {now}): time must not go backwards"
            )
        queue = self._queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        entry = (time if time > now else now, seq, callback)
        heappush(queue._heap, entry)
        return entry

    def schedule_fast(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Like :meth:`schedule`, but keep the event in a one-slot deferral
        buffer instead of the heap.

        Intended for self-rescheduling hot loops (a port's back-to-back
        transmit completions): the completion just scheduled is very often
        the next event to run, so the run loop can *prefetch* it — compare
        it against the heap head and execute it without ever paying the
        heappush/heappop pair.  A previously deferred event is demoted to
        the heap; ordering is unaffected either way because the run loop
        always picks the (time, seq)-smallest of the slot and the heap head.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        queue = self._queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        entry = (self.now + delay, seq, callback)
        if self._running:
            previous = self._deferred
            if previous is not None:
                heappush(queue._heap, previous)
            self._deferred = entry
        else:
            # Outside run() the slot is never drained; keep the queue
            # authoritative so peek/len stay exact.
            heappush(queue._heap, entry)
        return entry

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (handle returned by ``schedule*``)."""
        if event is self._deferred:
            self._deferred = None
            return
        self._queue.cancel(event)

    # -- execution ------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the queue empties or ``until`` is reached.

        Returns the simulation time when the run stopped.  Events scheduled
        exactly at ``until`` are processed.
        """
        queue = self._queue
        # Bind the queue internals once: entries pushed by callbacks land in
        # the same list objects, and EventQueue.compact rebuilds in place.
        heap = queue._heap
        tombstones = queue._tombstones
        pop = heappop
        self._running = True
        processed = 0
        stop = False
        m = self._metrics
        wall_start = perf_counter() if m is not None else 0.0
        if m is not None:
            m.heap_size.set(len(heap))
        try:
            while not stop:
                # Candidate: the (time, seq)-smallest of the deferred slot
                # and the heap head.  The slot is the previous iteration's
                # prefetched transmit completion (schedule_fast) and very
                # often wins, skipping the heappush/heappop pair entirely.
                deferred = self._deferred
                if deferred is None:
                    if not heap:
                        break
                    entry = heap[0]
                    time = entry[0]
                    if until is not None and time > until:
                        break
                    pop(heap)
                elif heap and heap[0] < deferred:
                    entry = heap[0]
                    time = entry[0]
                    if until is not None and time > until:
                        break
                    pop(heap)
                else:
                    entry = deferred
                    time = entry[0]
                    if until is not None and time > until:
                        break
                    self._deferred = None
                if tombstones and entry[1] in tombstones:
                    tombstones.discard(entry[1])
                    continue
                if time > self.now:
                    self.now = time
                entry[2]()
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
                # Batch drain: every heap event already due at this exact
                # instant is eligible — run them without re-checking the
                # horizon or re-advancing the clock.  Bail to the outer
                # loop the moment a callback prefetches a deferred event
                # (it may order before the heap head).
                if self._deferred is None:
                    batch_start = processed
                    while heap:
                        entry = heap[0]
                        if entry[0] != time or self._deferred is not None:
                            break
                        pop(heap)
                        if tombstones and entry[1] in tombstones:
                            tombstones.discard(entry[1])
                            continue
                        entry[2]()
                        processed += 1
                        if max_events is not None and processed >= max_events:
                            stop = True
                            break
                    if m is not None:
                        m.drain_width.observe(processed - batch_start)
        finally:
            self._running = False
            # Flush the deferral slot so the queue is authoritative again
            # for peek/len/next run().
            deferred = self._deferred
            if deferred is not None:
                heappush(heap, deferred)
                self._deferred = None
            self.events_processed += processed
            if m is not None:
                m.run_wall_s.observe(perf_counter() - wall_start)
                m.events.inc(processed)
                m.heap_size.set(len(heap))
        if until is not None:
            next_time = queue.peek_time()
            if next_time is None or next_time > until:
                # Advance the clock to the requested horizon so rate
                # measurements over [0, until] use the intended window even
                # if the last packet departed earlier.
                if until > self.now:
                    self.now = until
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        # The deferral slot only holds an event mid-run(); count it so
        # callbacks observing the queue see a consistent total.
        return len(self._queue) + (1 if self._deferred is not None else 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"
