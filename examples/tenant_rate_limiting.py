"""Non-work-conserving scenario: capping a tenant with a shaping transaction.

A cloud operator wants fair sharing between two tenants *and* a hard
10 Mbit/s cap on a scavenger class, whatever the offered load — the
"Hierarchies with Shaping" policy of Figure 4, expressed with the generic
builder.  The script sweeps the scavenger's offered load and shows that its
delivered rate is pinned at the cap while the other classes absorb the rest
of the link.

Run with::

    python examples/tenant_rate_limiting.py
"""

from __future__ import annotations

from repro.algorithms import build_shaped_hierarchy
from repro.core import ProgrammableScheduler
from repro.metrics import max_windowed_rate_bps
from repro.sim import OutputPort, PacketSource, Simulator
from repro.traffic import FlowSpec, cbr_arrivals, merge_arrivals

LINK_RATE = 100e6
SCAVENGER_CAP = 10e6
DURATION = 0.2


def build_policy():
    return build_shaped_hierarchy(
        class_flows={
            "interactive": {"web": 1.0, "rpc": 1.0},
            "batch": {"backup": 1.0},
            "scavenger": {"crawler": 1.0},
        },
        class_weights={"interactive": 4.0, "batch": 2.0, "scavenger": 1.0},
        class_rate_limits_bps={"scavenger": SCAVENGER_CAP},
        burst_bytes=6000,
    )


def run(scavenger_offered_bps: float) -> dict:
    sim = Simulator()
    port = OutputPort(sim, ProgrammableScheduler(build_policy()), rate_bps=LINK_RATE)
    flows = {
        "web": 40e6,
        "rpc": 40e6,
        "backup": 40e6,
        "crawler": scavenger_offered_bps,
    }
    streams = [
        cbr_arrivals(FlowSpec(name=flow, rate_bps=rate, packet_size=1500), DURATION)
        for flow, rate in flows.items()
    ]
    PacketSource(sim, port, merge_arrivals(*streams))
    sim.run(until=DURATION)
    window = (0.04, DURATION)
    return {
        "interactive": sum(
            port.sink.throughput_bps(flow=f, start=window[0], end=window[1])
            for f in ("web", "rpc")
        ),
        "batch": port.sink.throughput_bps(flow="backup", start=window[0], end=window[1]),
        "scavenger": port.sink.throughput_bps(flow="crawler", start=window[0], end=window[1]),
        "scavenger_peak": max_windowed_rate_bps(
            port.sink.packets, window_s=0.02, flows=["crawler"], skip_first_windows=1
        ),
    }


def main() -> None:
    print(f"{'offered (Mb/s)':>15}{'interactive':>13}{'batch':>9}{'scavenger':>11}"
          f"{'scav peak':>11}")
    for offered in (5e6, 10e6, 30e6, 80e6):
        result = run(offered)
        print(
            f"{offered / 1e6:>15.0f}"
            f"{result['interactive'] / 1e6:>13.1f}"
            f"{result['batch'] / 1e6:>9.1f}"
            f"{result['scavenger'] / 1e6:>11.1f}"
            f"{result['scavenger_peak'] / 1e6:>11.1f}"
        )
    print(f"\nscavenger cap = {SCAVENGER_CAP / 1e6:.0f} Mb/s: delivered rate stays at "
          "the cap no matter how much it offers, and the capacity it cannot use "
          "flows to the work-conserving classes.")


if __name__ == "__main__":
    main()
