"""Campaign declarations and deterministic run-table expansion.

A :class:`Campaign` declares experiment *factors* — scenarios, scheduler
variants, PIFO backends, transaction-language backends, load scales and
seed replicates — and :meth:`Campaign.expand` multiplies them into an
ordered run table of :class:`RunSpec` entries.  The expansion is a pure
function of the declaration: the same campaign always yields the same
specs in the same order, which is what makes sharded execution and
resume-by-fingerprint sound.

A :class:`RunSpec` is deliberately *flat* — strings, numbers and booleans
only — so it pickles across :mod:`multiprocessing` workers and serialises
into the JSONL result store untouched.  Scenario/variant names are resolved
against the scenario registry inside the worker, never shipped as code.

Each run's RNG seed is derived with
:func:`~repro.core.seeds.derive_seed` from ``(base_seed, workload_id)``,
where the workload identifier encodes the factor levels that define the
offered traffic (scenario, load scale, replicate).  Seeds are therefore
reproducible regardless of worker count or execution order, replicates
get independent streams, and runs differing only in scheduler variant,
PIFO backend or lang backend replay the *identical* workload — the
paired comparison the sweep exists to make.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..core.seeds import derive_seed

#: Factor columns of the run table, in expansion (outer-to-inner) order.
FACTOR_KEYS = (
    "scenario",
    "variant",
    "pifo_backend",
    "lang_backend",
    "load_scale",
    "replicate",
)


@dataclass(frozen=True)
class RunSpec:
    """One row of a campaign's run table (pickle- and JSON-safe)."""

    campaign: str
    scenario: str
    variant: str
    #: PIFO backend registry name; ``None`` = the substrate default.
    pifo_backend: Optional[str]
    #: ``"compiled"`` / ``"interpreted"`` selects the scenario's lang-program
    #: variant twins; ``None`` = the native hand-written transactions.
    lang_backend: Optional[str]
    load_scale: float
    replicate: int
    quick: bool
    #: Derived RNG seed for this run (see :meth:`Campaign.expand`).
    seed: int
    #: Record per-hop / per-port telemetry during the run.  Off by default
    #: in sweeps: results are provably identical (the lockstep equivalence
    #: suite), only the optional observability output differs.
    telemetry: bool = False

    @property
    def run_id(self) -> str:
        """Stable human-readable identifier encoding every factor level."""
        return "/".join([
            self.scenario,
            self.variant,
            self.pifo_backend or "default",
            self.lang_backend or "native",
            f"x{self.load_scale:g}",
            f"r{self.replicate}",
        ])

    @property
    def workload_id(self) -> str:
        """The factor levels that *define the offered traffic*.

        Scenario, load scale and replicate shape the workload; scheduler
        variant, PIFO backend and lang backend are substrate choices that
        must be compared on the identical packet stream.  Seeds therefore
        derive from this identifier, not from :attr:`run_id` — see
        :meth:`Campaign.expand`.
        """
        return f"{self.scenario}/x{self.load_scale:g}/r{self.replicate}"

    def to_dict(self) -> Dict:
        return {
            "campaign": self.campaign,
            "scenario": self.scenario,
            "variant": self.variant,
            "pifo_backend": self.pifo_backend,
            "lang_backend": self.lang_backend,
            "load_scale": self.load_scale,
            "replicate": self.replicate,
            "quick": self.quick,
            "seed": self.seed,
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunSpec":
        return cls(**{key: payload.get(key, False) if key == "telemetry"
                      else payload[key] for key in (
            "campaign", "scenario", "variant", "pifo_backend", "lang_backend",
            "load_scale", "replicate", "quick", "seed", "telemetry",
        )})

    def fingerprint(self) -> str:
        """Content hash of the run configuration (not its results).

        Two runs with identical fingerprints would execute the identical
        simulation, which is exactly the predicate ``--resume`` needs to
        skip already-completed work.  ``telemetry`` is deliberately
        excluded: it is pure observability (the lockstep equivalence suite
        proves results are identical either way), so toggling it must not
        invalidate completed runs — and stores written before the flag
        existed keep resuming cleanly.
        """
        payload = self.to_dict()
        del payload["telemetry"]
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass
class Campaign:
    """A declarative parameter sweep over the scenario registry."""

    name: str
    title: str
    #: Scenario registry names to sweep.
    scenarios: Sequence[str]
    #: Variant labels to run; ``None`` sweeps every variant of each scenario
    #: (in the scenario's declaration order).
    variants: Optional[Sequence[str]] = None
    pifo_backends: Sequence[Optional[str]] = (None,)
    lang_backends: Sequence[Optional[str]] = (None,)
    load_scales: Sequence[float] = (1.0,)
    replicates: int = 1
    base_seed: int = 0
    #: Per-hop / per-port telemetry during runs.  Off by default: sweeps
    #: consume aggregate records, and the hot path is ~25% faster without
    #: the per-packet bookkeeping.  Results are identical either way.
    telemetry: bool = False
    description: str = ""
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError(f"campaign {self.name!r} sweeps no scenarios")
        if self.variants is not None and not self.variants:
            raise ValueError(
                f"campaign {self.name!r}: variants must be non-empty "
                "(or None to sweep every scenario variant)"
            )
        if self.replicates < 1:
            raise ValueError("replicates must be >= 1")
        if not self.pifo_backends or not self.lang_backends or not self.load_scales:
            raise ValueError("factor level lists must be non-empty")

    def _variants_for(self, scenario_name: str) -> List[str]:
        if self.variants is not None:
            return list(self.variants)
        from ..net import get_scenario  # deferred: avoids an import cycle

        return list(get_scenario(scenario_name).variants)

    def expand(self, quick: bool = False) -> List[RunSpec]:
        """The deterministic run table: the full factor cross-product.

        Expansion order is the nested-loop order of :data:`FACTOR_KEYS`
        (scenario outermost, replicate innermost).  Each spec's seed is
        ``derive_seed(base_seed, workload_id)`` — a pure function of the
        factor levels that define the offered traffic (scenario, load
        scale, replicate), independent of expansion or execution order.
        Runs that differ only in scheduler variant, PIFO backend or lang
        backend share a seed *deliberately*: those factors are compared on
        the identical packet stream (paired comparisons), while replicates
        and load levels get independent streams.
        """
        specs: List[RunSpec] = []
        for scenario_name in self.scenarios:
            for variant in self._variants_for(scenario_name):
                for pifo_backend in self.pifo_backends:
                    for lang_backend in self.lang_backends:
                        for load_scale in self.load_scales:
                            for replicate in range(self.replicates):
                                spec = RunSpec(
                                    campaign=self.name,
                                    scenario=scenario_name,
                                    variant=variant,
                                    pifo_backend=pifo_backend,
                                    lang_backend=lang_backend,
                                    load_scale=float(load_scale),
                                    replicate=replicate,
                                    quick=quick,
                                    seed=0,
                                    telemetry=self.telemetry,
                                )
                                specs.append(replace(
                                    spec,
                                    seed=derive_seed(self.base_seed,
                                                     spec.workload_id),
                                ))
        return specs

    def size(self) -> int:
        """Number of runs the campaign expands to (without expanding)."""
        per_scenario = (
            len(self.pifo_backends) * len(self.lang_backends)
            * len(self.load_scales) * self.replicates
        )
        return sum(
            len(self._variants_for(name)) * per_scenario
            for name in self.scenarios
        )
