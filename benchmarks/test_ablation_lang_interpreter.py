"""Ablation (Section 4.1) — the transaction-language execution backends.

The paper's transactions are *programs* compiled by Domino onto atom
pipelines; this reproduction offers the same algorithms three ways: as
hand-written Python transactions (:mod:`repro.algorithms`), as programs run
by the AST-walking interpreter, and as programs lowered to native Python
closures by :mod:`repro.lang.compiler` (the default).  This module checks
that:

* all three produce identical schedules (the benchmarks are only meaningful
  if the comparison is apples-to-apples),
* the interpreter's overhead is a bounded constant factor (so it remains a
  usable fallback), and
* **the compiled backend is >= 3x the interpreter in packets/second** on the
  Figure 1 STFQ and Figure 4c token-bucket programs — the per-packet AST
  walk is gone — and the win survives the full ``sim`` stack end to end.

The measured rates are written to ``BENCH_lang_compile.json`` at the repo
root (the artifact CI uploads).  Set ``BENCH_QUICK=1`` to shrink the
workload for smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import report

from repro.algorithms import STFQTransaction
from repro.core import Packet, ProgrammableScheduler, TransactionContext, single_node_tree
from repro.lang.programs import stfq_program, token_bucket_program
from repro.lang.trees import build_fig4_tree_from_programs
from repro.sim import OutputPort, PacketSource, Simulator
from repro.traffic import FlowSpec, cbr_arrivals, merge_arrivals

FLOWS = ["a", "b", "c", "d"]
WEIGHTS = {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0}
PACKETS = 2_000

BENCH_QUICK = bool(os.environ.get("BENCH_QUICK"))
#: Rank computations per backend for the speedup gate.
RANK_COUNT = 5_000 if BENCH_QUICK else 30_000
#: Simulated seconds for the end-to-end comparison.
SIM_DURATION = 0.05 if BENCH_QUICK else 0.2
BENCH_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_lang_compile.json"

#: The compiled backend must beat the interpreter by at least this factor on
#: the paper's Figure 1 / Figure 4c programs (the tentpole acceptance gate).
MIN_SPEEDUP = 3.0


def _drive(transaction) -> list:
    scheduler = ProgrammableScheduler(single_node_tree(transaction))
    for i in range(PACKETS):
        flow = FLOWS[i % len(FLOWS)]
        scheduler.enqueue(Packet(flow=flow, length=1000 + (i % 7) * 100))
    return [(p.flow, p.length) for p in scheduler.drain()]


def test_ablation_program_backends_match_hand_written(benchmark):
    def run():
        return _drive(stfq_program(weights=WEIGHTS))

    compiled_order = benchmark(run)
    interpreted_order = _drive(stfq_program(weights=WEIGHTS, backend="interpreted"))
    hand_order = _drive(STFQTransaction(weights=WEIGHTS))
    assert compiled_order == hand_order
    assert interpreted_order == hand_order

    report(
        "Ablation: transaction language vs hand-written STFQ",
        [
            {"implementation": "hand-written class", "packets": PACKETS,
             "departure_order_identical": True},
            {"implementation": "compiled program", "packets": PACKETS,
             "departure_order_identical": compiled_order == hand_order},
            {"implementation": "interpreted program", "packets": PACKETS,
             "departure_order_identical": interpreted_order == hand_order},
        ],
    )


def time_ranks(transaction, count=3_000):
    """Seconds to compute ``count`` ranks/send-times with ``transaction``."""
    ctx = TransactionContext(now=0.0, node="n", element_flow="a", element_length=1000)
    packet = Packet(flow="a", length=1000)
    start = time.perf_counter()
    for _ in range(count):
        transaction(packet, ctx)
    return time.perf_counter() - start


def test_ablation_interpreter_overhead_is_constant_factor(benchmark):
    """Per-packet rank computation cost of the interpreted program stays a
    (small) constant factor over the hand-written transaction."""

    def run():
        hand = time_ranks(STFQTransaction(weights=WEIGHTS))
        interpreted = time_ranks(stfq_program(weights=WEIGHTS, backend="interpreted"))
        return hand, interpreted

    hand_s, interpreted_s = benchmark.pedantic(run, rounds=3, iterations=1)
    slowdown = interpreted_s / max(hand_s, 1e-9)
    report(
        "Ablation: per-rank computation cost (3 K ranks)",
        [
            {"implementation": "hand-written class", "seconds": hand_s, "slowdown": 1.0},
            {"implementation": "interpreted program", "seconds": interpreted_s,
             "slowdown": slowdown},
        ],
    )
    # The interpreter walks a small AST per packet; anything beyond ~200x
    # would signal an accidental complexity blow-up rather than constant
    # interpretation overhead.
    assert slowdown < 200


# --------------------------------------------------------------------------- #
# Compiled-backend speedup gate (writes BENCH_lang_compile.json)              #
# --------------------------------------------------------------------------- #
def _program_factories():
    """The two gated figures: STFQ (Fig 1) and the token bucket (Fig 4c)."""
    return {
        "stfq": lambda backend: stfq_program(weights=WEIGHTS, backend=backend),
        "token_bucket": lambda backend: token_bucket_program(
            rate_bytes_per_s=1.25e6, burst_bytes=3000.0, backend=backend
        ),
    }


def _end_to_end_rate(backend: str) -> float:
    """Simulated packets/second of wall-clock through the full sim stack.

    Drives the Figure 4 program-built hierarchy (three STFQ programs plus a
    token-bucket shaping program) under CBR overload — scheduler, shaping
    calendar, event loop and sink all included.
    """
    sim = Simulator()
    scheduler = ProgrammableScheduler(build_fig4_tree_from_programs(backend=backend))
    port = OutputPort(sim, scheduler, rate_bps=100e6, name="port0")
    streams = [
        cbr_arrivals(FlowSpec(name=flow, rate_bps=rate, packet_size=1500),
                     duration=SIM_DURATION)
        for flow, rate in {"A": 30e6, "B": 30e6, "C": 40e6, "D": 40e6}.items()
    ]
    PacketSource(sim, port, merge_arrivals(*streams))
    start = time.perf_counter()
    sim.run(until=SIM_DURATION)
    elapsed = time.perf_counter() - start
    return port.sink.total_packets() / elapsed


def test_lang_compile_speedup_gate(benchmark):
    """Acceptance gate: compiled programs deliver >= 3x the interpreter's
    packets/second on the Figure 1 and Figure 4c programs, and the win is
    still visible through the full simulation stack.  Rates land in
    ``BENCH_lang_compile.json`` for CI."""

    def run_all():
        rates = {}
        for name, factory in _program_factories().items():
            for backend in ("interpreted", "compiled"):
                elapsed = time_ranks(factory(backend), count=RANK_COUNT)
                rates.setdefault(name, {})[backend] = RANK_COUNT / elapsed
        rates["end_to_end_fig4_sim"] = {
            backend: _end_to_end_rate(backend)
            for backend in ("interpreted", "compiled")
        }
        return rates

    rates = benchmark.pedantic(run_all, rounds=1, iterations=1)
    speedups = {
        name: by_backend["compiled"] / by_backend["interpreted"]
        for name, by_backend in rates.items()
    }
    rows = [
        {
            "workload": name,
            "interpreted_pps": by_backend["interpreted"],
            "compiled_pps": by_backend["compiled"],
            "speedup": speedups[name],
        }
        for name, by_backend in rates.items()
    ]
    report(
        f"Lang backends: compiled vs interpreted ({RANK_COUNT} ranks, "
        f"{SIM_DURATION}s simulated)",
        rows,
    )
    BENCH_ARTIFACT.write_text(
        json.dumps(
            {
                "rank_count": RANK_COUNT,
                "sim_duration_s": SIM_DURATION,
                "workloads": {
                    "stfq": "Figure 1 STFQ scheduling program, ranks/second",
                    "token_bucket": "Figure 4c token-bucket shaping program, "
                                    "send-times/second",
                    "end_to_end_fig4_sim": "Figure 4 program-built hierarchy "
                                           "through the full sim stack, "
                                           "simulated packets/second of "
                                           "wall-clock",
                },
                "packets_per_second": rates,
                "speedup_compiled_vs_interpreted": speedups,
            },
            indent=2,
        )
        + "\n"
    )
    # The per-packet program cost must drop to a direct function call: >= 3x
    # on both gated figures.  At smoke size the margin shrinks (fixed costs
    # loom larger), so quick mode gates at 2x; the artifact still records
    # the measured rates either way.
    floor = 2.0 if BENCH_QUICK else MIN_SPEEDUP
    for name in ("stfq", "token_bucket"):
        assert speedups[name] >= floor, (
            f"compiled {name} is only {speedups[name]:.2f}x the interpreter "
            f"(gate: {floor}x)"
        )
    # End to end the other sim costs (PIFO ops, event loop, links) dilute the
    # ratio, but the compiled backend must still win clearly.
    assert speedups["end_to_end_fig4_sim"] >= (1.05 if BENCH_QUICK else 1.2), (
        "compiled backend win did not survive the full sim stack: "
        f"{speedups['end_to_end_fig4_sim']:.2f}x"
    )
