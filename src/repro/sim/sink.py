"""Packet sinks: record departures and expose per-flow statistics."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional


from ..core.packet import EMPTY_FIELDS, Packet, _pool, _POOL_LIMIT


class FlowAggregate:
    """Running per-flow counters maintained by a streaming sink.

    Holds everything the metrics layer needs — byte/packet counts, delay
    moments and extremes, first arrival and last departure — without
    retaining the packets themselves.
    """

    __slots__ = ("packets", "bytes", "delay_sum", "delay_max", "delay_min",
                 "first_arrival", "last_departure", "expected_bytes")

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0
        self.delay_sum = 0.0
        self.delay_max = 0.0
        self.delay_min: Optional[float] = None
        self.first_arrival: Optional[float] = None
        self.last_departure: Optional[float] = None
        #: Total flow size in bytes, when packets carry a ``flow_size``
        #: field (the FCT workloads do) — lets the metrics layer decide
        #: whether the flow completed without retaining its packets.
        self.expected_bytes: Optional[int] = None

    def update(self, packet: Packet) -> None:
        self.packets += 1
        self.bytes += packet.length
        size = packet.fields.get("flow_size")
        if size is not None:
            self.expected_bytes = size
        arrival = (packet.injection_time if packet.injection_time is not None
                   else packet.arrival_time)
        if self.first_arrival is None or arrival < self.first_arrival:
            self.first_arrival = arrival
        if packet.departure_time is not None:
            if (self.last_departure is None
                    or packet.departure_time > self.last_departure):
                self.last_departure = packet.departure_time
        delay = packet.end_to_end_delay
        if delay is not None:
            self.delay_sum += delay
            if delay > self.delay_max:
                self.delay_max = delay
            if self.delay_min is None or delay < self.delay_min:
                self.delay_min = delay

    @property
    def mean_delay(self) -> Optional[float]:
        if self.packets == 0:
            return None
        return self.delay_sum / self.packets


class PacketSink:
    """Collects packets leaving an output port.

    By default the sink keeps every departed packet (the single-port paper
    experiments are small enough that this is cheap) plus per-flow byte and
    packet counters, so both aggregate rates and per-packet delay
    distributions can be computed after a run.

    With ``keep_packets=False`` the sink runs in *streaming* mode: packets
    are folded into running per-flow aggregates (:class:`FlowAggregate`:
    counts, delay sum/min/max, first arrival, last departure) and then
    forgotten, so million-packet fabric runs hold O(flows) memory instead of
    O(packets).  Windowed queries (``throughput_bps`` / ``share_by_flow``
    with an explicit sub-window, per-packet ``delays``) need the retained
    packets and raise ``ValueError`` in streaming mode; whole-run variants
    keep working off the aggregates.
    """

    def __init__(self, name: str = "sink", keep_packets: bool = True,
                 recycle_packets: bool = False) -> None:
        if recycle_packets and keep_packets:
            raise ValueError("recycle_packets requires keep_packets=False")
        self.name = name
        self.keep_packets = keep_packets
        #: Return recorded packets to the :class:`~repro.core.packet.Packet`
        #: free list after folding them into the aggregates.  Only safe when
        #: this sink is the packet's terminal owner (fabric edge sinks in
        #: streaming mode); never combined with ``keep_packets``.
        self.recycle_packets = recycle_packets
        self.packets: List[Packet] = []
        self.recorded_packets = 0
        self.aggregates: Dict[str, FlowAggregate] = {}
        self.first_departure: Optional[float] = None
        self.last_departure: Optional[float] = None

    def record(self, packet: Packet) -> None:
        """Record a departed packet (its ``departure_time`` must be set)."""
        if self.keep_packets:
            self.packets.append(packet)
        self.recorded_packets += 1
        flow = packet.flow
        aggregate = self.aggregates.get(flow)
        if aggregate is None:
            aggregate = self.aggregates[flow] = FlowAggregate()
        # FlowAggregate.update, inlined: record runs once per delivered
        # packet, where even the single extra call is measurable.
        aggregate.packets += 1
        aggregate.bytes += packet.length
        size = packet.fields.get("flow_size")
        if size is not None:
            aggregate.expected_bytes = size
        injection = packet.injection_time
        arrival = injection if injection is not None else packet.arrival_time
        if aggregate.first_arrival is None or arrival < aggregate.first_arrival:
            aggregate.first_arrival = arrival
        departure = packet.departure_time
        if departure is not None:
            if (aggregate.last_departure is None
                    or departure > aggregate.last_departure):
                aggregate.last_departure = departure
            delay = departure - arrival
            aggregate.delay_sum += delay
            if delay > aggregate.delay_max:
                aggregate.delay_max = delay
            if aggregate.delay_min is None or delay < aggregate.delay_min:
                aggregate.delay_min = delay
            if self.first_departure is None:
                self.first_departure = departure
            self.last_departure = departure
        if self.recycle_packets:
            # Packet.recycle, inlined (the streaming fabric sink is the
            # canonical recycler and runs once per delivered packet).
            if len(_pool) < _POOL_LIMIT:
                packet.fields = EMPTY_FIELDS
                packet._hops = None
                _pool.append(packet)

    # The per-flow byte/packet counters are views over the aggregates (one
    # source of truth; ``record`` stays a single update on the hot path).
    @property
    def bytes_by_flow(self) -> Dict[str, int]:
        return {flow: a.bytes for flow, a in self.aggregates.items()}

    @property
    def packets_by_flow(self) -> Dict[str, int]:
        return {flow: a.packets for flow, a in self.aggregates.items()}

    # -- aggregate queries ----------------------------------------------------
    def total_packets(self) -> int:
        return self.recorded_packets

    def total_bytes(self) -> int:
        return sum(self.bytes_by_flow.values())

    def flows(self) -> List[str]:
        return sorted(self.bytes_by_flow)

    def _require_packets(self, query: str) -> None:
        if not self.keep_packets:
            raise ValueError(
                f"{query} needs retained packets; sink {self.name!r} runs "
                "with keep_packets=False (use the whole-run aggregate "
                "queries instead)"
            )

    def throughput_bps(self, flow: Optional[str] = None,
                       start: float = 0.0, end: Optional[float] = None) -> float:
        """Average throughput over [start, end] in bits per second.

        ``end`` defaults to the last departure seen.  Packets are attributed
        to the window by their departure time.  In streaming mode only the
        whole-run window (``start == 0``, default ``end``) is answerable and
        is computed from the per-flow aggregates.
        """
        if end is None:
            end = self.last_departure or 0.0
        duration = end - start
        if duration <= 0:
            return 0.0
        if not self.keep_packets:
            if start != 0.0 or end != (self.last_departure or 0.0):
                self._require_packets("windowed throughput_bps")
            if flow is None:
                total_bytes = sum(self.bytes_by_flow.values())
            else:
                total_bytes = self.bytes_by_flow.get(flow, 0)
            return total_bytes * 8.0 / duration
        total_bits = 0
        for packet in self.packets:
            if packet.departure_time is None:
                continue
            if flow is not None and packet.flow != flow:
                continue
            if start <= packet.departure_time <= end:
                total_bits += packet.length_bits
        return total_bits / duration

    def share_by_flow(self, start: float = 0.0, end: Optional[float] = None) -> Dict[str, float]:
        """Fraction of delivered bytes per flow over a window."""
        if not self.keep_packets:
            if start != 0.0 or (end is not None and end != self.last_departure):
                self._require_packets("windowed share_by_flow")
            grand_total = sum(self.bytes_by_flow.values())
            if grand_total == 0:
                return {}
            return {flow: count / grand_total
                    for flow, count in sorted(self.bytes_by_flow.items())}
        if end is None:
            end = self.last_departure or 0.0
        totals: Dict[str, int] = defaultdict(int)
        for packet in self.packets:
            if packet.departure_time is None:
                continue
            if start <= packet.departure_time <= end:
                totals[packet.flow] += packet.length
        grand_total = sum(totals.values())
        if grand_total == 0:
            return {}
        return {flow: count / grand_total for flow, count in sorted(totals.items())}

    def delays(self, flow: Optional[str] = None) -> List[float]:
        """Arrival-to-departure delays of recorded packets."""
        self._require_packets("per-packet delays")
        values = []
        for packet in self.packets:
            if flow is not None and packet.flow != flow:
                continue
            delay = packet.total_delay
            if delay is not None:
                values.append(delay)
        return values

    def delay_stats(self, flow: Optional[str] = None) -> Dict[str, Optional[float]]:
        """Whole-run delay summary (count/mean/min/max) from the aggregates.

        Works in both retained and streaming modes; delays are end-to-end
        (injection-to-departure) for fabric packets and arrival-to-departure
        otherwise.
        """
        if flow is not None:
            selected = [self.aggregates[flow]] if flow in self.aggregates else []
        else:
            selected = list(self.aggregates.values())
        count = sum(a.packets for a in selected)
        minima = [a.delay_min for a in selected if a.delay_min is not None]
        if count == 0:
            return {"count": 0, "mean": None, "min": None, "max": None}
        return {
            "count": count,
            "mean": sum(a.delay_sum for a in selected) / count,
            "min": min(minima) if minima else None,
            "max": max(a.delay_max for a in selected),
        }

    def departure_order(self) -> List[str]:
        """Flow labels in departure order (useful for ordering assertions)."""
        self._require_packets("departure_order")
        return [packet.flow for packet in self.packets]

    def __len__(self) -> int:
        return self.recorded_packets

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "" if self.keep_packets else ", streaming"
        return f"PacketSink(name={self.name!r}, packets={self.recorded_packets}{mode})"
