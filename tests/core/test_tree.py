"""Tests for scheduling-tree construction and packet classification."""

from __future__ import annotations

import pytest

from repro.algorithms import FIFOTransaction, STFQTransaction, TokenBucketShapingTransaction
from repro.core import (
    ClassEquals,
    FlowIn,
    Packet,
    ScheduleTree,
    TreeNode,
    single_node_tree,
)
from repro.exceptions import TreeConfigurationError


def build_two_level_tree():
    root = TreeNode(name="Root", scheduling=STFQTransaction())
    left = TreeNode(
        name="Left", predicate=FlowIn(["A", "B"]), scheduling=STFQTransaction()
    )
    right = TreeNode(
        name="Right", predicate=FlowIn(["C", "D"]), scheduling=STFQTransaction()
    )
    root.add_child(left)
    root.add_child(right)
    return ScheduleTree(root)


class TestTreeStructure:
    def test_single_node_tree(self):
        tree = single_node_tree(FIFOTransaction())
        assert tree.depth() == 1
        assert tree.root.is_leaf
        assert tree.leaves() == [tree.root]

    def test_two_level_structure(self):
        tree = build_two_level_tree()
        assert tree.depth() == 2
        assert len(tree.leaves()) == 2
        assert [n.name for n in tree.nodes()] == ["Root", "Left", "Right"]

    def test_levels_grouping(self):
        tree = build_two_level_tree()
        levels = tree.levels()
        assert [n.name for n in levels[0]] == ["Root"]
        assert {n.name for n in levels[1]} == {"Left", "Right"}

    def test_node_lookup(self):
        tree = build_two_level_tree()
        assert tree.node("Left").name == "Left"
        with pytest.raises(TreeConfigurationError):
            tree.node("Missing")

    def test_duplicate_names_rejected(self):
        root = TreeNode(name="X", scheduling=FIFOTransaction())
        root.add_child(TreeNode(name="X", scheduling=FIFOTransaction()))
        with pytest.raises(TreeConfigurationError):
            ScheduleTree(root)

    def test_reparenting_rejected(self):
        child = TreeNode(name="c", scheduling=FIFOTransaction())
        TreeNode(name="p1", scheduling=FIFOTransaction()).add_child(child)
        with pytest.raises(TreeConfigurationError):
            TreeNode(name="p2", scheduling=FIFOTransaction()).add_child(child)

    def test_root_shaping_rejected(self):
        root = TreeNode(
            name="Root",
            scheduling=FIFOTransaction(),
            shaping=TokenBucketShapingTransaction(rate_bps=1e6, burst_bytes=1500),
        )
        with pytest.raises(TreeConfigurationError):
            ScheduleTree(root)

    def test_path_to_root_and_depth(self):
        tree = build_two_level_tree()
        left = tree.node("Left")
        assert [n.name for n in left.path_to_root()] == ["Left", "Root"]
        assert left.depth() == 1
        assert tree.root.depth() == 0

    def test_shaping_pifo_created_only_when_needed(self):
        shaped = TreeNode(
            name="S",
            scheduling=FIFOTransaction(),
            shaping=TokenBucketShapingTransaction(rate_bps=1e6, burst_bytes=1500),
        )
        plain = TreeNode(name="P", scheduling=FIFOTransaction())
        assert shaped.shaping_pifo is not None
        assert plain.shaping_pifo is None


class TestPacketClassification:
    def test_match_path_leaf_to_root(self):
        tree = build_two_level_tree()
        path = tree.match_path(Packet(flow="A", length=100))
        assert [n.name for n in path] == ["Left", "Root"]

    def test_leaf_for(self):
        tree = build_two_level_tree()
        assert tree.leaf_for(Packet(flow="D", length=100)).name == "Right"

    def test_trivial_path_cache_invalidated_by_add_child(self):
        # The single-node fast path must not survive post-construction
        # structural changes: a child attached after ScheduleTree() is
        # built has to show up in match_path.
        from repro.core.transaction import LambdaSchedulingTransaction

        root = TreeNode("Root", LambdaSchedulingTransaction(
            lambda p, ctx, state: 0.0))
        tree = ScheduleTree(root)
        assert [n.name for n in tree.match_path(Packet(flow="A", length=10))] \
            == ["Root"]
        root.add_child(TreeNode("Leaf", LambdaSchedulingTransaction(
            lambda p, ctx, state: 0.0)))
        path = tree.match_path(Packet(flow="A", length=10))
        assert [n.name for n in path] == ["Leaf", "Root"]

    def test_unmatched_packet_stops_at_interior_node(self):
        tree = build_two_level_tree()
        path = tree.match_path(Packet(flow="Z", length=100))
        assert [n.name for n in path] == ["Root"]

    def test_ambiguous_predicates_rejected(self):
        root = TreeNode(name="Root", scheduling=FIFOTransaction())
        root.add_child(
            TreeNode(name="c1", predicate=ClassEquals("x"), scheduling=FIFOTransaction())
        )
        root.add_child(
            TreeNode(name="c2", predicate=ClassEquals("x"), scheduling=FIFOTransaction())
        )
        tree = ScheduleTree(root)
        with pytest.raises(TreeConfigurationError):
            tree.match_path(Packet(flow="A", length=10, packet_class="x"))

    def test_element_flow_at_leaf_and_interior(self):
        tree = build_two_level_tree()
        left = tree.node("Left")
        root = tree.root
        packet = Packet(flow="A", length=100)
        assert left.element_flow(packet, from_child=None) == "A"
        assert root.element_flow(packet, from_child=left) == "Left"


class TestTreeRuntimeHelpers:
    def test_reset_clears_pifos_and_state(self):
        tree = build_two_level_tree()
        tree.node("Left").scheduling_pifo.push("x", 1)
        tree.root.scheduling.state["virtual_time"] = 42.0
        tree.reset()
        assert tree.buffered_elements() == 0
        assert tree.root.scheduling.state["virtual_time"] == 0.0

    def test_buffered_elements_counts_all_pifos(self):
        tree = build_two_level_tree()
        tree.node("Left").scheduling_pifo.push("x", 1)
        tree.root.scheduling_pifo.push("y", 1)
        assert tree.buffered_elements() == 2

    def test_describe_contains_node_names(self):
        description = build_two_level_tree().describe()
        assert "Root" in description and "Left" in description and "STFQ" in description
