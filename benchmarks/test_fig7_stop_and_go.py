"""Figure 7 / Section 3.2 — Stop-and-Go queueing.

Regenerates: per-packet delay bound and burst smoothing under a framing
shaping transaction.  Paper claim: every packet departs at the end of its
arrival frame, so per-hop delay is bounded by 2T and bursts are smoothed.
"""

from __future__ import annotations

from conftest import report

from repro.algorithms import (
    FIFOTransaction,
    StopAndGoShapingTransaction,
    worst_case_delay_bound,
)
from repro.core import MatchAll, Packet, ProgrammableScheduler, ScheduleTree, TreeNode
from repro.metrics import windowed_rates
from repro.sim import OutputPort, PacketSource, Simulator
from repro.traffic import FlowSpec, onoff_arrivals

FRAME = 0.010
LINK_RATE = 100e6
DURATION = 0.5


def build_tree():
    root = TreeNode(name="Root", scheduling=FIFOTransaction())
    root.add_child(
        TreeNode(
            name="Framed",
            predicate=MatchAll(),
            scheduling=FIFOTransaction(),
            shaping=StopAndGoShapingTransaction(frame_length=FRAME),
        )
    )
    return ScheduleTree(root)


def run_stop_and_go():
    sim = Simulator()
    port = OutputPort(sim, ProgrammableScheduler(build_tree()), rate_bps=LINK_RATE)
    spec = FlowSpec(name="bursty", rate_bps=40e6, packet_size=1500)
    PacketSource(sim, port,
                 onoff_arrivals(spec, duration=DURATION, mean_on_s=0.005,
                                mean_off_s=0.02, seed=11))
    sim.run(until=DURATION)
    return port


def test_fig7_per_hop_delay_bounded_by_two_frames(benchmark):
    port = benchmark(run_stop_and_go)
    delays = [p.total_delay for p in port.sink.packets]
    bound = worst_case_delay_bound(FRAME) + 1500 * 8 / LINK_RATE
    report(
        "Figure 7: Stop-and-Go delay (frame T = 10 ms)",
        [
            {
                "packets": len(delays),
                "max_delay_ms": max(delays) * 1e3,
                "bound_2T_ms": worst_case_delay_bound(FRAME) * 1e3,
            }
        ],
    )
    assert delays, "expected traffic to be delivered"
    assert max(delays) <= bound
    # Non-work-conserving: minimum delay is not ~0; packets wait for frames.
    assert min(delays) > 0.0


def test_fig7_departures_confined_to_the_next_frame(benchmark):
    """The framing property behind Stop-and-Go's smoothness guarantee: every
    packet arriving during frame k becomes eligible exactly at the start of
    frame k+1 and is transmitted within that frame, so per-frame output never
    mixes traffic from different arrival frames."""
    port = benchmark(run_stop_and_go)
    serialization = 1500 * 8 / LINK_RATE
    frame_slack = 0
    for packet in port.sink.packets:
        arrival_frame = int(packet.arrival_time / FRAME)
        eligible = (arrival_frame + 1) * FRAME
        assert packet.departure_time >= eligible - 1e-9
        # Transmission completes within the next frame (with a little slack
        # for packets queued behind others of the same frame).
        if packet.departure_time > eligible + FRAME:
            frame_slack += 1
    departure_samples = windowed_rates(port.sink.packets, window_s=FRAME)
    busy_frames = sum(1 for s in departure_samples if s.bits > 0)
    report(
        "Figure 7: framing discipline",
        [
            {
                "packets": len(port.sink.packets),
                "late_beyond_next_frame": frame_slack,
                "busy_output_frames": busy_frames,
            }
        ],
    )
    # At 40 Mbit/s offered vs 100 Mbit/s line rate a frame's worth of traffic
    # always fits in the following frame.
    assert frame_slack == 0
