"""repro — a reproduction of "Programmable Packet Scheduling at Line Rate".

The library has four layers:

* :mod:`repro.core` — the PIFO programming model: push-in first-out queues,
  scheduling/shaping transactions, trees of transactions, and the reference
  scheduler engine.
* :mod:`repro.algorithms` — every scheduling algorithm the paper programs on
  PIFOs (WFQ/STFQ, HPFQ, token-bucket shaping, LSTF, Stop-and-Go, minimum
  rate guarantees, SJF/SRPT/LAS/EDF, SC-EDF, CBQ, RCSD).
* :mod:`repro.sim`, :mod:`repro.traffic`, :mod:`repro.switch`,
  :mod:`repro.net`, :mod:`repro.baselines`, :mod:`repro.metrics` — the
  substrate: a discrete-event switch simulator, workload generators, the
  network fabric layer (topologies, routing, multi-hop scenarios), classic
  (non-PIFO) reference schedulers and measurement utilities.
* :mod:`repro.hardware` — the cycle-level PIFO-block/mesh model, the
  tree-to-mesh compiler and the chip-area/timing model reproducing the
  paper's Tables 1 and 2.
* :mod:`repro.campaign` — the sweep engine: declarative campaigns expand
  into deterministic run tables executed across a worker pool, with a
  resumable JSONL result store (``repro campaign run|list|report``).

Quickstart::

    from repro.core import Packet, ProgrammableScheduler
    from repro.algorithms import build_fig3_tree

    scheduler = ProgrammableScheduler(build_fig3_tree())
    scheduler.enqueue(Packet(flow="A", length=1500))
    packet = scheduler.dequeue()
"""

from . import exceptions
from .core import (
    PIFO,
    Packet,
    ProgrammableScheduler,
    ScheduleTree,
    SchedulingTransaction,
    ShapingTransaction,
    TransactionContext,
    TreeNode,
    single_node_tree,
)

__version__ = "1.1.0"

__all__ = [
    "exceptions",
    "Packet",
    "PIFO",
    "ProgrammableScheduler",
    "ScheduleTree",
    "TreeNode",
    "single_node_tree",
    "SchedulingTransaction",
    "ShapingTransaction",
    "TransactionContext",
    "__version__",
]
