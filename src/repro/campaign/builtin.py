"""Built-in campaigns and the campaign registry.

The flagship is :data:`PAPER_SWEEP`: the paper's two fabric scenarios
(``fig6_chain``, ``leaf_spine_fct``) swept across all three PIFO storage
backends and both transaction-language execution backends — 24 runs that
demonstrate the substrate's headline claim (one scheduler substrate, many
algorithms, interchangeable storage and execution layers) as a single
command: ``repro campaign run paper_sweep --quick``.

Campaigns register by name in :data:`CAMPAIGNS`, mirroring the scenario
and experiment registries, so the CLI and tests discover them uniformly.
"""

from __future__ import annotations

from typing import Dict, List

from .spec import Campaign

CAMPAIGNS: Dict[str, Campaign] = {}


def register_campaign(campaign: Campaign) -> Campaign:
    """Add a campaign to the registry (idempotent by name)."""
    CAMPAIGNS[campaign.name] = campaign
    return campaign


def get_campaign(name: str) -> Campaign:
    try:
        return CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(sorted(CAMPAIGNS))
        raise KeyError(
            f"unknown campaign {name!r}; known campaigns: {known}"
        ) from None


def list_campaigns() -> List[Campaign]:
    return [CAMPAIGNS[name] for name in sorted(CAMPAIGNS)]


FAULT_SWEEP = register_campaign(Campaign(
    name="fault_sweep",
    title="Fault scenarios x PIFO backends",
    scenarios=["chain_flap", "dead_spine"],
    pifo_backends=["sorted", "calendar"],
    description=(
        "Both fault-injection scenarios (flapping chain link, dead spine) "
        "across two PIFO storage backends: 8 runs exercising scheduling "
        "under failing links and switches, with exact lost_to_faults "
        "conservation accounting."
    ),
    notes=(
        "Each run executes the scenario's FaultPlan as simulator events; "
        "routing reconverges on every topology change and blackholed "
        "packets land in the lost_to_faults counter, so "
        "injected == delivered + dropped + lost_to_faults + in_flight "
        "holds for every record."
    ),
))


PAPER_SWEEP = register_campaign(Campaign(
    name="paper_sweep",
    title="Fabric scenarios x PIFO backends x lang backends",
    scenarios=["fig6_chain", "leaf_spine_fct"],
    pifo_backends=["sorted", "calendar", "quantized"],
    lang_backends=["compiled", "interpreted"],
    description=(
        "Both fabric scenarios, all three PIFO storage structures (sorted "
        "list, heap calendar, and the bucket queue via its quantized "
        "real-rank front), both transaction-language execution backends: "
        "24 runs showing the same algorithms behave identically across "
        "the substrate's interchangeable layers."
    ),
    notes=(
        "All runs use the scenarios' program variants (the lang backend is "
        "a real factor); seeds derive from (base_seed, workload_id), so "
        "every backend combination replays the identical workload."
    ),
))
