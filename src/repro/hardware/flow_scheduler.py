"""The flow scheduler: the sorted-array core of a PIFO block (Section 5.2).

A naive PIFO would sort all ~60 K buffered packets, which is infeasible.
The paper's key structural observation is that practical algorithms schedule
each flow's packets in FIFO order, so only the *head* element of each flow
needs sorting.  The flow scheduler is that sorted array of flow heads, held
in flip-flops, supporting:

* **push** — insert a flow head (2-cycle pipeline: parallel comparison +
  priority encode, then shift-insert);
* **pop** — remove the first element belonging to a given logical PIFO
  (2-cycle pipeline: equality check + priority encode, then shift-out).

This model reproduces the structure and constraints (entry capacity, two
pushes + one pop per cycle, per-logical-PIFO selection, PFC masking) while
leaving gate-level timing to the calibrated area/timing model
(:mod:`repro.hardware.area_model`).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, List, Optional, Set, Tuple

from ..exceptions import HardwareModelError

#: Baseline flow-scheduler capacity (Section 5.3): 1024 flows shared across
#: the logical PIFOs of one block.
DEFAULT_FLOW_CAPACITY = 1024


@dataclass
class FlowSchedulerEntry:
    """One flow head held in the flow scheduler.

    ``rank``/``seq`` order the array; ``logical_pifo`` selects entries at
    pop time; ``flow`` identifies the FIFO in the rank store holding the
    rest of the flow's elements; ``metadata`` carries the element itself
    (packet or PIFO reference) in this behavioural model.
    """

    rank: float
    seq: int
    logical_pifo: int
    flow: str
    metadata: Any = None

    def key(self) -> Tuple[float, int]:
        return (self.rank, self.seq)


@dataclass
class FlowSchedulerStats:
    """Operation counters used by the feasibility benchmarks."""

    pushes: int = 0
    pops: int = 0
    comparisons: int = 0
    shifts: int = 0
    masked_skips: int = 0


class FlowScheduler:
    """Sorted array of flow heads (the flip-flop half of a PIFO block)."""

    def __init__(self, capacity_flows: int = DEFAULT_FLOW_CAPACITY) -> None:
        if capacity_flows <= 0:
            raise ValueError("capacity_flows must be positive")
        self.capacity_flows = capacity_flows
        self._entries: List[FlowSchedulerEntry] = []
        self._keys: List[Tuple[float, int]] = []
        self._seq = 0
        self._masked_flows: Set[str] = set()
        self.stats = FlowSchedulerStats()

    # -- capacity ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity_flows

    @property
    def is_empty(self) -> bool:
        return not self._entries

    # -- PFC masking (Section 6.2) -------------------------------------------------
    def mask_flow(self, flow: str) -> None:
        """Make a flow invisible to pops (PFC pause)."""
        self._masked_flows.add(flow)

    def unmask_flow(self, flow: str) -> None:
        """Re-expose a paused flow (PFC resume)."""
        self._masked_flows.discard(flow)

    def masked_flows(self) -> Set[str]:
        return set(self._masked_flows)

    # -- push -------------------------------------------------------------------------
    def push(self, entry_rank: float, logical_pifo: int, flow: str, metadata: Any = None) -> None:
        """Insert a flow head, keeping the array sorted by (rank, push order).

        Models the hardware's parallel compare + priority encode + shift; the
        stats record the equivalent comparator/shift work for the ablation
        benchmark comparing against a flat 60 K-entry sorted array.
        """
        if self.is_full:
            raise HardwareModelError(
                f"flow scheduler full ({self.capacity_flows} flow heads)"
            )
        entry = FlowSchedulerEntry(
            rank=entry_rank, seq=self._seq, logical_pifo=logical_pifo,
            flow=flow, metadata=metadata,
        )
        self._seq += 1
        index = bisect.bisect_right(self._keys, entry.key())
        self._keys.insert(index, entry.key())
        self._entries.insert(index, entry)
        self.stats.pushes += 1
        # Hardware compares against *all* entries in parallel and shifts the
        # tail; count both so work scales with occupancy, as in the chip.
        self.stats.comparisons += len(self._entries)
        self.stats.shifts += len(self._entries) - index

    # -- pop ---------------------------------------------------------------------------
    def _first_index(self, logical_pifo: Optional[int]) -> Optional[int]:
        for index, entry in enumerate(self._entries):
            self.stats.comparisons += 1
            if entry.flow in self._masked_flows:
                self.stats.masked_skips += 1
                continue
            if logical_pifo is None or entry.logical_pifo == logical_pifo:
                return index
        return None

    def peek(self, logical_pifo: Optional[int] = None) -> Optional[FlowSchedulerEntry]:
        """Head entry of a logical PIFO (or overall), honouring PFC masks."""
        index = self._first_index(logical_pifo)
        return self._entries[index] if index is not None else None

    def pop(self, logical_pifo: Optional[int] = None) -> Optional[FlowSchedulerEntry]:
        """Remove and return the head entry of a logical PIFO."""
        index = self._first_index(logical_pifo)
        if index is None:
            return None
        self._keys.pop(index)
        entry = self._entries.pop(index)
        self.stats.pops += 1
        self.stats.shifts += len(self._entries) - index + 1
        return entry

    # -- queries --------------------------------------------------------------------------
    def occupancy_by_pifo(self) -> dict:
        counts: dict = {}
        for entry in self._entries:
            counts[entry.logical_pifo] = counts.get(entry.logical_pifo, 0) + 1
        return counts

    def contains_flow(self, logical_pifo: int, flow: str) -> bool:
        return any(
            entry.logical_pifo == logical_pifo and entry.flow == flow
            for entry in self._entries
        )

    def entries(self) -> List[FlowSchedulerEntry]:
        """Snapshot in dequeue order (for tests)."""
        return list(self._entries)
