"""Lease-queue protocol: claims, steals, quarantine, segment merge.

These tests drive :class:`~repro.campaign.queue.LeaseQueue` with a fake
clock and injected executors (no real simulation runs, no sleeping), so
every protocol transition — atomic claim, heartbeat expiry, generation
steal, poisoned-spec quarantine, preemption, merge — is exercised
deterministically.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    Campaign,
    LeaseQueue,
    QueueError,
    ResultStore,
    STATUS_QUARANTINED,
    WorkerPolicy,
    strip_timing,
)
from repro.campaign.queue import DEFAULT_LEASE_TTL_S


class FakeClock:
    """Injectable wall clock: lease mtimes/expiry follow this, not time.time."""

    def __init__(self, now: float = 1_000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class Crash(Exception):
    """Simulated executor death mid-shard."""


def probe_campaign(replicates: int = 4) -> Campaign:
    return Campaign(
        name="queue_probe",
        title="synthetic table for queue tests",
        scenarios=["fig6_chain"],
        variants=["FIFO"],
        pifo_backends=["sorted"],
        lang_backends=[None],
        load_scales=[1.0],
        replicates=replicates,
    )


def fake_execute(spec, policy):
    """A stand-in run: instant, deterministic, store-schema shaped."""
    record = dict(spec.to_dict())
    record.update({
        "run_id": spec.run_id,
        "fingerprint": spec.fingerprint(),
        "status": "ok",
        "delivered": 1,
        "dropped": 0,
        "wall_clock_s": 0.0,
        "worker_pid": 0,
        "attempts": 1,
    })
    return record


def crash_on(run_ids):
    """An execute fn that dies (like a killed process) on the given runs."""
    blocked = set(run_ids)

    def execute(spec, policy):
        if spec.run_id in blocked:
            raise Crash(spec.run_id)
        return fake_execute(spec, policy)

    return execute


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def queue(tmp_path, clock):
    return LeaseQueue.initialize(
        tmp_path / "q", probe_campaign().expand(quick=True),
        campaign="queue_probe", shard_size=2, time_fn=clock)


class TestInitialize:
    def test_creates_manifest_and_dirs(self, queue):
        assert queue.manifest["campaign"] == "queue_probe"
        assert queue.shard_count == 2
        assert (queue.root / "shards").is_dir()
        assert (queue.root / "segments").is_dir()

    def test_reopen_is_idempotent(self, tmp_path, clock, queue):
        again = LeaseQueue.initialize(
            queue.root, probe_campaign().expand(quick=True),
            campaign="queue_probe", shard_size=2, time_fn=clock)
        assert again.manifest == queue.manifest

    def test_reopen_with_different_campaign_fails(self, queue, clock):
        with pytest.raises(QueueError, match="already serves"):
            LeaseQueue.initialize(queue.root, [], campaign="other",
                                  time_fn=clock)

    def test_reopen_with_different_table_fails(self, queue, clock):
        with pytest.raises(QueueError, match="different run table"):
            LeaseQueue.initialize(
                queue.root, probe_campaign(replicates=2).expand(quick=True),
                campaign="queue_probe", time_fn=clock)

    def test_missing_manifest_raises(self, tmp_path, clock):
        with pytest.raises(QueueError, match="no queue manifest"):
            LeaseQueue(tmp_path / "absent", time_fn=clock).manifest


class TestClaims:
    def test_claims_are_exclusive(self, queue):
        first = queue.claim_next("alice")
        second = queue.claim_next("bob")
        assert first.shard != second.shard
        assert queue.claim_next("carol") is None  # both shards leased

    def test_done_shards_are_skipped(self, queue):
        queue.work("alice", execute=fake_execute)
        assert queue.drained()
        assert queue.claim_next("bob") is None

    def test_live_lease_is_not_stolen(self, queue, clock):
        queue.claim_next("alice")
        clock.advance(DEFAULT_LEASE_TTL_S / 2)
        lease = queue.claim_next("bob")
        assert lease is not None and lease.shard == 1  # the *other* shard

    def test_expired_lease_is_stolen_with_cursor(self, queue, clock):
        with pytest.raises(Crash):
            # Alice executes shard 0's first run, then dies on its second.
            queue.work("alice", execute=crash_on(
                [queue.shard_specs(0)[1].run_id]))
        clock.advance(DEFAULT_LEASE_TTL_S + 1)
        lease = queue.claim_next("bob")
        assert lease.shard == 0
        assert lease.generation == 2
        assert lease.cursor == 1  # resumes mid-shard, not from scratch
        assert lease.attempt == 2

    def test_two_stealers_one_winner(self, queue, clock):
        queue.claim_next("alice")
        clock.advance(DEFAULT_LEASE_TTL_S + 1)
        stolen = queue.claim_next("bob")
        assert stolen.generation == 2
        # Carol sees the same expired g1 but g2 already exists and is
        # fresh — she gets the other shard instead.
        other = queue.claim_next("carol")
        assert other.shard != stolen.shard


class TestPreemption:
    def test_robbed_executor_abandons_shard(self, queue, clock):
        lease = queue.claim_next("alice")
        clock.advance(DEFAULT_LEASE_TTL_S + 1)
        stolen = queue.claim_next("bob")
        assert stolen is not None and stolen.shard == lease.shard
        # Alice (who was merely slow, not dead) would resume her loop: the
        # ownership check sees generation 2 and walks away without marking
        # the shard done or touching its lease.
        assert not queue._owns(lease)
        assert not queue._done_path(lease.shard).exists()


class TestQuarantine:
    def test_poisoned_spec_is_quarantined(self, tmp_path, clock):
        queue = LeaseQueue.initialize(
            tmp_path / "q", probe_campaign().expand(quick=True),
            campaign="queue_probe", shard_size=2, max_attempts=2,
            time_fn=clock)
        poison = queue.shard_specs(0)[0].run_id
        for executor in ("e1", "e2"):
            with pytest.raises(Crash):
                queue.work(executor, execute=crash_on([poison]))
            clock.advance(DEFAULT_LEASE_TTL_S + 1)
        # Third claim: attempt would be 3 > max_attempts=2 -> quarantine,
        # and the shard continues past the poisoned spec.
        queue.work("e3", execute=crash_on([poison]))
        queue.work("e4", execute=fake_execute, block=False)
        assert queue.drained()
        store = ResultStore(tmp_path / "merged.jsonl")
        queue.merge(store)
        records = {r["run_id"]: r for r in store.load()}
        assert records[poison]["status"] == STATUS_QUARANTINED
        ok = [r for r in records.values() if r["status"] == "ok"]
        assert len(ok) == len(queue.specs) - 1

    def test_progress_resets_attempt_count(self, queue, clock):
        # Die on run 2 twice; each stealer first re-proves run 1... no:
        # cursor persists, so generation 2 starts at the crash point.  A
        # *different* crash point means attempt starts over at 2.
        shard0 = queue.shard_specs(0)
        with pytest.raises(Crash):
            queue.work("a", execute=crash_on([shard0[0].run_id]))
        clock.advance(DEFAULT_LEASE_TTL_S + 1)
        with pytest.raises(Crash):
            queue.work("b", execute=crash_on([shard0[1].run_id]))
        clock.advance(DEFAULT_LEASE_TTL_S + 1)
        lease = queue.claim_next("c")
        assert lease.shard == 0
        assert lease.cursor == 1
        assert lease.attempt == 2  # b progressed, so the count restarted


class TestMerge:
    def test_merge_matches_run_table_order(self, queue, tmp_path):
        queue.work("alice", execute=fake_execute, max_shards=1)
        queue.work("bob", execute=fake_execute)
        assert queue.drained()
        store = ResultStore(tmp_path / "m.jsonl")
        assert queue.merge(store) == len(queue.specs)
        assert ([r["run_id"] for r in store.load()]
                == [s.run_id for s in queue.specs])

    def test_merge_prefers_ok_over_duplicates(self, queue, clock, tmp_path):
        # Alice dies mid-shard; bob re-executes the contested spec, so two
        # segments overlap.  Merge keeps exactly one record per run.
        with pytest.raises(Crash):
            queue.work("alice", execute=crash_on(
                [queue.shard_specs(0)[1].run_id]))
        clock.advance(DEFAULT_LEASE_TTL_S + 1)
        queue.work("bob", execute=fake_execute, block=False)
        assert queue.drained()
        store = ResultStore(tmp_path / "m.jsonl")
        assert queue.merge(store) == len(queue.specs)
        assert all(r["status"] == "ok" for r in store.load())

    def test_merge_is_idempotent(self, queue, tmp_path):
        queue.work("alice", execute=fake_execute)
        store = ResultStore(tmp_path / "m.jsonl")
        assert queue.merge(store) == len(queue.specs)
        assert queue.merge(store) == 0
        assert len(store.load()) == len(queue.specs)


class TestStatus:
    def test_status_counts(self, queue, clock):
        status = queue.status()
        assert status["open"] == 2 and status["done"] == 0
        queue.claim_next("alice")
        clock.advance(DEFAULT_LEASE_TTL_S + 1)
        status = queue.status()
        assert status["leased"] == 1
        assert status["expired"] == 1

    def test_invalid_executor_names(self, queue):
        for bad in ("", "../evil", ".hidden"):
            with pytest.raises(QueueError):
                queue.segment_store(bad)


class TestRealExecution:
    def test_two_executors_match_serial_store(self, tmp_path, clock):
        """Real runs through the queue equal a serial CampaignRunner store."""
        from repro.campaign import CampaignRunner

        campaign = probe_campaign(replicates=1)
        queue = LeaseQueue.initialize(
            tmp_path / "q", campaign.expand(quick=True),
            campaign=campaign.name, shard_size=1, time_fn=clock)
        queue.work("alice", max_shards=1)
        queue.work("bob")
        assert queue.drained()
        merged = ResultStore(tmp_path / "merged.jsonl")
        queue.merge(merged)

        serial = ResultStore(tmp_path / "serial.jsonl")
        CampaignRunner(campaign, serial, workers=1, quick=True).run()
        assert ([json.dumps(strip_timing(r), sort_keys=True)
                 for r in merged.load()]
                == [json.dumps(strip_timing(r), sort_keys=True)
                    for r in serial.load()])
