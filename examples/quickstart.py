"""Quickstart: program a scheduler with a PIFO in a few lines.

This walks through the three abstractions of the paper:

1. a scheduling transaction on a single PIFO (WFQ via STFQ, Figure 1),
2. a tree of scheduling transactions (HPFQ, Figure 3),
3. a shaping transaction (rate-limiting a class, Figure 4),

using only the public API.  Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.algorithms import build_fig3_tree, build_fig4_tree, build_wfq_tree
from repro.core import Packet, ProgrammableScheduler


def single_pifo_wfq() -> None:
    print("=== 1. Weighted fair queueing on a single PIFO ===")
    scheduler = ProgrammableScheduler(build_wfq_tree({"video": 3.0, "bulk": 1.0}))
    for _ in range(8):
        scheduler.enqueue(Packet(flow="video", length=1500))
        scheduler.enqueue(Packet(flow="bulk", length=1500))
    order = [packet.flow for packet in scheduler.drain()]
    print("departure order:", " ".join(order))
    print("video gets 3 of every 4 slots while both flows are backlogged\n")


def hierarchical_fair_queueing() -> None:
    print("=== 2. Hierarchical fair queueing (Figure 3) ===")
    scheduler = ProgrammableScheduler(build_fig3_tree())
    for _ in range(20):
        for flow in "ABCD":
            scheduler.enqueue(Packet(flow=flow, length=1500))
    first_20 = [packet.flow for packet in scheduler.drain()][:20]
    counts = {flow: first_20.count(flow) for flow in "ABCD"}
    print("first 20 departures:", " ".join(first_20))
    print("per-flow counts:", counts)
    print("Left (A+B) received ~10% of slots, Right (C+D) ~90%, as configured\n")


def shaped_hierarchy() -> None:
    print("=== 3. Shaping a class with a token-bucket transaction (Figure 4) ===")
    scheduler = ProgrammableScheduler(build_fig4_tree(right_burst_bytes=1500))
    for _ in range(5):
        scheduler.enqueue(Packet(flow="C", length=1500), now=0.0)
        scheduler.enqueue(Packet(flow="A", length=1500), now=0.0)
    eligible_now = scheduler.drain(now=0.0)
    print("eligible immediately:", [packet.flow for packet in eligible_now])
    print("still buffered (held by the shaper):", len(scheduler))
    print("next shaping release at t =", f"{scheduler.next_shaping_release():.4f}s")
    later = scheduler.drain(now=1.0)
    print("after the releases:", [packet.flow for packet in later])


if __name__ == "__main__":
    single_pifo_wfq()
    hierarchical_fair_queueing()
    shaped_hierarchy()
