"""Unit tests for the transaction-language tokenizer."""

from __future__ import annotations

import pytest

from repro.lang import LexerError, TokenType, tokenize
from repro.lang.lexer import token_types


def types_of(source):
    """Token types excluding the trailing EOF, for compact assertions."""
    types = token_types(source)
    assert types[-1] is TokenType.EOF
    return types[:-1]


class TestBasicTokens:
    def test_simple_assignment(self):
        assert types_of("p.rank = 5") == [
            TokenType.NAME,
            TokenType.DOT,
            TokenType.NAME,
            TokenType.ASSIGN,
            TokenType.NUMBER,
            TokenType.NEWLINE,
        ]

    def test_integer_and_float_literals(self):
        tokens = tokenize("x = 42\ny = 3.25\nz = 1e3")
        numbers = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert numbers == [42, 3.25, 1000.0]
        assert isinstance(numbers[0], int)
        assert isinstance(numbers[1], float)

    def test_scientific_notation_with_sign(self):
        tokens = tokenize("rate = 1.25e+6\ntiny = 2E-3")
        numbers = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert numbers == [1.25e6, 2e-3]

    def test_operators(self):
        source = "a = b + c - d * e / f % g"
        types = types_of(source)
        assert TokenType.PLUS in types
        assert TokenType.MINUS in types
        assert TokenType.STAR in types
        assert TokenType.SLASH in types
        assert TokenType.PERCENT in types

    def test_comparison_operators(self):
        for text, expected in [
            ("a == b", TokenType.EQ),
            ("a != b", TokenType.NE),
            ("a <= b", TokenType.LE),
            ("a >= b", TokenType.GE),
            ("a < b", TokenType.LT),
            ("a > b", TokenType.GT),
        ]:
            assert expected in types_of(f"x = 1\nif {text}\n    x = 2")

    def test_keywords_are_case_insensitive(self):
        types = types_of("If a > b\n    x = 1\nElse\n    x = 2")
        assert types.count(TokenType.IF) == 1
        assert types.count(TokenType.ELSE) == 1

    def test_true_false_literals(self):
        tokens = tokenize("a = true\nb = false")
        values = [t.value for t in tokens if t.type in (TokenType.TRUE, TokenType.FALSE)]
        assert values == [True, False]

    def test_name_with_underscores_and_digits(self):
        tokens = tokenize("frame_end_time = last_time_2 + 1")
        names = [t.value for t in tokens if t.type is TokenType.NAME]
        assert names == ["frame_end_time", "last_time_2"]


class TestCommentsAndSeparators:
    def test_double_slash_comment_is_ignored(self):
        assert types_of("x = 1 // this is a comment") == [
            TokenType.NAME,
            TokenType.ASSIGN,
            TokenType.NUMBER,
            TokenType.NEWLINE,
        ]

    def test_hash_comment_is_ignored(self):
        assert types_of("x = 1 # python-style comment") == [
            TokenType.NAME,
            TokenType.ASSIGN,
            TokenType.NUMBER,
            TokenType.NEWLINE,
        ]

    def test_whole_line_comment_produces_no_tokens(self):
        assert types_of("// just a comment\nx = 1") == [
            TokenType.NAME,
            TokenType.ASSIGN,
            TokenType.NUMBER,
            TokenType.NEWLINE,
        ]

    def test_semicolon_acts_as_statement_separator(self):
        types = types_of("x = 1; y = 2")
        assert types.count(TokenType.NEWLINE) == 2
        assert types.count(TokenType.ASSIGN) == 2

    def test_blank_lines_are_skipped(self):
        assert types_of("x = 1\n\n\ny = 2") == [
            TokenType.NAME, TokenType.ASSIGN, TokenType.NUMBER, TokenType.NEWLINE,
            TokenType.NAME, TokenType.ASSIGN, TokenType.NUMBER, TokenType.NEWLINE,
        ]

    def test_trailing_semicolon_does_not_duplicate_newline(self):
        types = types_of("x = 1;")
        assert types.count(TokenType.NEWLINE) == 1


class TestIndentation:
    def test_indent_and_dedent_emitted(self):
        source = "if a > b\n    x = 1\ny = 2"
        types = types_of(source)
        assert types.count(TokenType.INDENT) == 1
        assert types.count(TokenType.DEDENT) == 1

    def test_nested_blocks(self):
        source = (
            "if a > b\n"
            "    if c > d\n"
            "        x = 1\n"
            "    y = 2\n"
            "z = 3\n"
        )
        types = types_of(source)
        assert types.count(TokenType.INDENT) == 2
        assert types.count(TokenType.DEDENT) == 2

    def test_dedent_at_end_of_file(self):
        source = "if a > b\n    x = 1"
        types = types_of(source)
        assert types.count(TokenType.DEDENT) == 1

    def test_tabs_count_as_indentation(self):
        source = "if a > b\n\tx = 1"
        types = types_of(source)
        assert types.count(TokenType.INDENT) == 1

    def test_inconsistent_dedent_raises(self):
        source = "if a > b\n        x = 1\n    y = 2"
        with pytest.raises(LexerError):
            tokenize(source)

    def test_parenthesised_continuation_lines_do_not_indent(self):
        source = "x = min(a,\n        b)\ny = 2"
        types = types_of(source)
        assert TokenType.INDENT not in types
        assert TokenType.DEDENT not in types


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("x = 1 @ 2")
        assert "unexpected character" in str(excinfo.value)

    def test_error_reports_line_number(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("x = 1\ny = $")
        assert excinfo.value.line == 2

    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert [t.type for t in tokens] == [TokenType.EOF]

    def test_comment_only_source_yields_only_eof(self):
        tokens = tokenize("// nothing here\n# nor here")
        assert [t.type for t in tokens] == [TokenType.EOF]


class TestPaperFigures:
    """The figures' listings must tokenize without errors."""

    @pytest.mark.parametrize("name", [
        "stfq", "token_bucket", "lstf", "stop_and_go", "min_rate",
        "fifo", "strict_priority", "sjf", "srpt", "edf", "las",
    ])
    def test_program_sources_tokenize(self, name):
        from repro.lang.programs import PROGRAM_SOURCES

        tokens = tokenize(PROGRAM_SOURCES[name])
        assert tokens[-1].type is TokenType.EOF
        assert len(tokens) > 3
