"""Tests for the shared-memory switch substrate (buffer, thresholds, RED,
PFC, switch)."""

from __future__ import annotations

import pytest

from repro.algorithms import FIFOTransaction
from repro.core import Packet, ProgrammableScheduler, single_node_tree
from repro.exceptions import BufferError_
from repro.sim import Simulator
from repro.switch import (
    AlwaysAdmit,
    DynamicThresholdPolicy,
    PFCController,
    PFCFilteredScheduler,
    REDPolicy,
    SharedBuffer,
    SharedMemorySwitch,
    StaticThresholdPolicy,
)


class TestSharedBuffer:
    def test_cell_accounting(self):
        buffer = SharedBuffer(capacity_bytes=2000, cell_bytes=200)
        assert buffer.total_cells == 10
        packet = Packet(flow="A", length=450)
        assert buffer.cells_for(packet) == 3
        buffer.allocate(packet, port="p0")
        assert buffer.used_cells == 3
        assert buffer.flow_cells("A") == 3
        assert buffer.port_cells("p0") == 3
        buffer.release(packet, port="p0")
        assert buffer.used_cells == 0

    def test_minimum_one_cell_per_packet(self):
        buffer = SharedBuffer(cell_bytes=200)
        assert buffer.cells_for(Packet(flow="A", length=64)) == 1

    def test_allocation_beyond_capacity_raises(self):
        buffer = SharedBuffer(capacity_bytes=400, cell_bytes=200)
        buffer.allocate(Packet(flow="A", length=400))
        with pytest.raises(BufferError_):
            buffer.allocate(Packet(flow="B", length=200))
        assert buffer.drops_no_space == 1

    def test_release_unallocated_raises(self):
        buffer = SharedBuffer()
        with pytest.raises(BufferError_):
            buffer.release(Packet(flow="A", length=100))

    def test_occupancy_snapshot(self):
        buffer = SharedBuffer(capacity_bytes=1000, cell_bytes=200)
        buffer.allocate(Packet(flow="A", length=200))
        occupancy = buffer.occupancy()
        assert occupancy.utilization == pytest.approx(0.2)
        assert occupancy.free_cells == 4

    def test_paper_default_dimensions(self):
        buffer = SharedBuffer()
        assert buffer.capacity_bytes == 12 * 1024 * 1024
        assert buffer.cell_bytes == 200
        # Roughly 60K cells, the worst-case packet count of Section 5.1.
        assert 60_000 <= buffer.total_cells <= 63_000


class TestAdmissionPolicies:
    def test_always_admit_respects_physical_capacity(self):
        buffer = SharedBuffer(capacity_bytes=400, cell_bytes=200)
        policy = AlwaysAdmit()
        assert policy.admit(buffer, Packet(flow="A", length=400))
        buffer.allocate(Packet(flow="A", length=400))
        assert not policy.admit(buffer, Packet(flow="B", length=200))

    def test_static_per_flow_threshold(self):
        buffer = SharedBuffer(capacity_bytes=4000, cell_bytes=200)
        policy = StaticThresholdPolicy(flow_limit_cells=2)
        first = Packet(flow="A", length=200)
        assert policy.admit(buffer, first)
        buffer.allocate(first)
        second = Packet(flow="A", length=200)
        assert policy.admit(buffer, second)
        buffer.allocate(second)
        assert not policy.admit(buffer, Packet(flow="A", length=200))
        assert policy.admit(buffer, Packet(flow="B", length=200))

    def test_static_per_port_threshold(self):
        buffer = SharedBuffer(capacity_bytes=4000, cell_bytes=200)
        policy = StaticThresholdPolicy(port_limit_cells=1)
        packet = Packet(flow="A", length=200)
        assert policy.admit(buffer, packet, port="p0")
        buffer.allocate(packet, port="p0")
        assert not policy.admit(buffer, Packet(flow="B", length=200), port="p0")
        assert policy.admit(buffer, Packet(flow="B", length=200), port="p1")

    def test_dynamic_threshold_shrinks_as_buffer_fills(self):
        buffer = SharedBuffer(capacity_bytes=2000, cell_bytes=200)  # 10 cells
        policy = DynamicThresholdPolicy(alpha=1.0)
        admitted = 0
        while True:
            packet = Packet(flow="hog", length=200)
            if not policy.admit(buffer, packet):
                break
            buffer.allocate(packet)
            admitted += 1
        # With alpha=1 a single flow stops at about half the buffer.
        assert admitted == 5
        # A different flow can still get in.
        assert policy.admit(buffer, Packet(flow="new", length=200))

    def test_dynamic_threshold_validation(self):
        with pytest.raises(ValueError):
            DynamicThresholdPolicy(alpha=0)
        with pytest.raises(ValueError):
            DynamicThresholdPolicy(key="queue")


class TestRED:
    def test_no_drops_below_min_threshold(self):
        buffer = SharedBuffer(capacity_bytes=20000, cell_bytes=200)
        policy = REDPolicy(min_threshold_cells=50, max_threshold_cells=80, seed=1)
        assert all(
            policy.admit(buffer, Packet(flow="A", length=200)) for _ in range(20)
        )

    def test_forced_drop_above_max_threshold(self):
        buffer = SharedBuffer(capacity_bytes=200000, cell_bytes=200)
        policy = REDPolicy(min_threshold_cells=2, max_threshold_cells=5,
                           weight=1.0, seed=1)
        for _ in range(10):
            buffer.allocate(Packet(flow="A", length=200))
        assert not policy.admit(buffer, Packet(flow="A", length=200))
        assert policy.forced_drops == 1

    def test_drop_probability_ramp(self):
        policy = REDPolicy(min_threshold_cells=10, max_threshold_cells=20,
                           max_drop_probability=0.5)
        policy.average_cells = 15.0
        assert policy.drop_probability() == pytest.approx(0.25)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            REDPolicy(min_threshold_cells=10, max_threshold_cells=5)
        with pytest.raises(ValueError):
            REDPolicy(min_threshold_cells=1, max_threshold_cells=2,
                      max_drop_probability=0)


class TestPFC:
    def make_scheduler(self):
        return PFCFilteredScheduler(
            ProgrammableScheduler(single_node_tree(FIFOTransaction()))
        )

    def test_paused_flow_not_dequeued(self):
        wrapped = self.make_scheduler()
        wrapped.enqueue(Packet(flow="A", length=100), now=0.0)
        wrapped.enqueue(Packet(flow="B", length=100), now=0.0)
        wrapped.controller.pause_flow("A")
        assert wrapped.dequeue(now=0.0).flow == "B"
        assert wrapped.dequeue(now=0.0) is None
        assert wrapped.parked_packets == 1
        assert len(wrapped) == 1

    def test_resume_restores_parked_packets_in_order(self):
        wrapped = self.make_scheduler()
        first = Packet(flow="A", length=100)
        second = Packet(flow="A", length=100)
        wrapped.enqueue(first, now=0.0)
        wrapped.enqueue(second, now=0.0)
        wrapped.controller.pause_flow("A")
        assert wrapped.dequeue(now=0.0) is None
        wrapped.controller.resume_flow("A")
        assert wrapped.dequeue(now=0.0) is first
        assert wrapped.dequeue(now=0.0) is second

    def test_pause_by_priority_class(self):
        controller = PFCController()
        controller.pause_priority(3)
        assert controller.is_paused(Packet(flow="x", length=10, priority=3))
        assert not controller.is_paused(Packet(flow="x", length=10, priority=0))
        controller.resume_priority(3)
        assert not controller.is_paused(Packet(flow="x", length=10, priority=3))

    def test_message_counters(self):
        controller = PFCController()
        controller.pause_flow("A")
        controller.resume_flow("A")
        assert controller.pause_messages == 1
        assert controller.resume_messages == 1


class TestSharedMemorySwitch:
    def make_switch(self, ports=4, admission=None):
        sim = Simulator()
        switch = SharedMemorySwitch(
            sim=sim,
            scheduler_factory=lambda name: ProgrammableScheduler(
                single_node_tree(FIFOTransaction())
            ),
            port_count=ports,
            port_rate_bps=8e6,
            admission=admission,
        )
        return sim, switch

    def test_packets_forwarded_out_their_port(self):
        sim, switch = self.make_switch()
        switch.receive(Packet(flow="A", length=1000), output_port="port1")
        switch.receive(Packet(flow="B", length=1000), output_port="port2")
        sim.run()
        assert switch.port("port1").transmitted_packets == 1
        assert switch.port("port2").transmitted_packets == 1
        assert switch.stats.transmitted == 2

    def test_buffer_released_after_transmit(self):
        sim, switch = self.make_switch()
        switch.receive(Packet(flow="A", length=1000), output_port="port0")
        sim.run()
        assert switch.buffer.used_cells == 0

    def test_admission_policy_drops_are_counted(self):
        sim, switch = self.make_switch(
            admission=StaticThresholdPolicy(flow_limit_cells=1)
        )
        assert switch.receive(Packet(flow="A", length=200), output_port="port0")
        assert not switch.receive(Packet(flow="A", length=200), output_port="port0")
        assert switch.stats.dropped_admission == 1

    def test_unknown_port_raises(self):
        _sim, switch = self.make_switch()
        with pytest.raises(KeyError):
            switch.receive(Packet(flow="A", length=100), output_port="port99")

    def test_sixty_four_port_construction(self):
        sim = Simulator()
        switch = SharedMemorySwitch(
            sim=sim,
            scheduler_factory=lambda name: ProgrammableScheduler(
                single_node_tree(FIFOTransaction())
            ),
        )
        assert len(switch.port_names()) == 64
