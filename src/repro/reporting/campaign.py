"""Aggregate campaign result stores into grouped summary tables.

Takes the flat JSONL records a
:class:`~repro.campaign.store.ResultStore` holds and folds them into rows
grouped by any subset of the campaign factors (scenario, variant,
pifo_backend, lang_backend, load_scale, replicate): run counts, delivery
and drop totals, packet-delay means and flow-completion-time statistics.
The rows render with :func:`~repro.reporting.tables.render_table`, so the
CLI's ``repro campaign report`` output matches the rest of the report
suite.

Aggregation is a single streaming pass: records may come from any
iterable — a list, :meth:`~repro.campaign.store.ResultStore.iter_effective_records`,
or a lease-queue segment merge — and memory stays proportional to the
number of *groups*, not records, so a multi-executor store with hundreds
of thousands of rows summarises without being loaded wholesale.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

GROUPABLE_KEYS = (
    "campaign",
    "scenario",
    "variant",
    "pifo_backend",
    "lang_backend",
    "load_scale",
    "replicate",
    "quick",
)

DEFAULT_GROUP_BY = ("scenario", "variant")

#: Metric columns averaged across a group's healthy runs (store field,
#: output column, scale factor).
_MEAN_METRICS = (
    ("mean_delay", "mean_delay_ms", 1e3),
    ("fct_mean", "fct_mean_ms", 1e3),
    ("fct_p99", "fct_p99_ms", 1e3),
    ("wall_clock_s", "wall_clock_s", 1.0),
    ("cpu_user_s", "cpu_user_s", 1.0),
    ("events_per_s", "events_per_s", 1.0),
)

#: Count columns summed across a group's healthy runs.
_SUM_METRICS = ("delivered", "dropped", "lost_to_faults")


class _GroupAccumulator:
    """Running aggregates for one factor-level combination.

    Holds sums/counts/maxima only — O(1) per group however many records
    stream through it.
    """

    __slots__ = ("runs", "failed", "sums", "mean_sums", "mean_counts",
                 "max_delay", "rss_peak")

    def __init__(self) -> None:
        self.runs = 0
        self.failed = 0
        self.sums = {name: 0 for name in _SUM_METRICS}
        self.mean_sums = {name: 0.0 for name, _, _ in _MEAN_METRICS}
        self.mean_counts = {name: 0 for name, _, _ in _MEAN_METRICS}
        self.max_delay: float | None = None
        self.rss_peak: float | None = None

    def add(self, record: Mapping, ok: bool) -> None:
        self.runs += 1
        if not ok:
            # Failure records (failed / timeout / worker_lost /
            # quarantined) count into ``failed`` but contribute to no
            # metric — a crashed run has no delivery totals, and letting
            # its zeros into the means would skew the healthy statistics.
            self.failed += 1
            return
        for name in _SUM_METRICS:
            self.sums[name] += record.get(name, 0)
        for name, _, _ in _MEAN_METRICS:
            value = record.get(name)
            if value is not None:
                self.mean_sums[name] += value
                self.mean_counts[name] += 1
        value = record.get("max_delay")
        if value is not None:
            self.max_delay = (value if self.max_delay is None
                              else max(self.max_delay, value))
        value = record.get("rss_peak_bytes")
        if value is not None:
            self.rss_peak = (value if self.rss_peak is None
                             else max(self.rss_peak, value))

    def row(self, group_by: Tuple[str, ...], group_key: Tuple) -> Dict:
        row: Dict = {
            key: ("-" if value is None else value)
            for key, value in zip(group_by, group_key)
        }
        row["runs"] = self.runs
        row["failed"] = self.failed
        for name in _SUM_METRICS:
            row[name] = self.sums[name]
        metrics = {}
        for name, column, scale in _MEAN_METRICS:
            count = self.mean_counts[name]
            metrics[column] = (_scale(self.mean_sums[name] / count, scale)
                               if count else None)
        row["mean_delay_ms"] = metrics["mean_delay_ms"]
        row["max_delay_ms"] = _scale(self.max_delay, 1e3)
        row["fct_mean_ms"] = metrics["fct_mean_ms"]
        row["fct_p99_ms"] = metrics["fct_p99_ms"]
        row["wall_clock_s"] = metrics["wall_clock_s"]
        # Resource columns (PR 9): absent from pre-observability stores,
        # in which case they render as "-" like any other missing metric.
        row["cpu_user_s"] = metrics["cpu_user_s"]
        row["events_per_s"] = metrics["events_per_s"]
        row["rss_peak_mb"] = _scale(self.rss_peak, 1.0 / (1024 * 1024))
        return row


def summarize_records(
    records: Iterable[Mapping],
    group_by: Sequence[str] = DEFAULT_GROUP_BY,
) -> List[Dict]:
    """Fold run records into one summary row per factor-level combination.

    ``records`` is any iterable (list or generator — the pass is single
    and streaming).  Metric columns are averaged *across runs* in the
    group (each run already aggregates its own packets/flows); counts are
    summed.  Rows come back sorted by the group key, so output order is
    stable no matter the store's append order.
    """
    from ..campaign.store import record_is_ok

    group_by = tuple(group_by)
    for key in group_by:
        if key not in GROUPABLE_KEYS:
            known = ", ".join(GROUPABLE_KEYS)
            raise ValueError(
                f"cannot group by {key!r}; groupable factors: {known}"
            )
    groups: Dict[Tuple, _GroupAccumulator] = {}
    for record in records:
        group_key = tuple(record.get(key) for key in group_by)
        accumulator = groups.get(group_key)
        if accumulator is None:
            accumulator = groups[group_key] = _GroupAccumulator()
        accumulator.add(record, record_is_ok(record))

    def sort_key(item):
        # Type-aware per-component ordering: numerics in numeric order,
        # then strings, with None last — so load_scale 2.0 sorts before
        # 10.0 and a None factor level (substrate default) trails the
        # named levels.
        return tuple(
            (part is None, isinstance(part, str), part if part is not None else 0)
            for part in item[0]
        )

    return [accumulator.row(group_by, group_key)
            for group_key, accumulator in sorted(groups.items(), key=sort_key)]


def _scale(value: float | None, factor: float) -> float | None:
    return None if value is None else value * factor


def campaign_report_text(
    records: Iterable[Mapping],
    group_by: Sequence[str] = DEFAULT_GROUP_BY,
    title: str = "Campaign summary",
) -> str:
    """Render grouped summary rows as an aligned text table."""
    from .tables import render_table

    rows = summarize_records(records, group_by=group_by)
    return render_table(rows, title=title)
