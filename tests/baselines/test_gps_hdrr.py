"""Tests for the GPS fluid reference and hierarchical DRR."""

from __future__ import annotations

import pytest

from repro.baselines import GPSFluidSimulator, HierarchicalDRR
from repro.core import Packet


def burst(flow, count, length=1000, start=0.0):
    return [(start, Packet(flow=flow, length=length)) for _ in range(count)]


class TestGPSFluid:
    def test_single_flow_served_at_link_rate(self):
        gps = GPSFluidSimulator(link_rate_bps=8e6)
        result = gps.run(burst("A", 4, length=1000))
        assert result.served_bytes["A"] == pytest.approx(4000)
        assert result.end_time == pytest.approx(0.004)

    def test_equal_weights_split_capacity(self):
        gps = GPSFluidSimulator(link_rate_bps=8e6)
        arrivals = burst("A", 4) + burst("B", 4)
        result = gps.run(arrivals, horizon=0.002)
        assert result.served_bytes["A"] == pytest.approx(1000, rel=0.01)
        assert result.served_bytes["B"] == pytest.approx(1000, rel=0.01)

    def test_weighted_split(self):
        gps = GPSFluidSimulator(link_rate_bps=8e6, weights={"A": 1.0, "B": 3.0})
        arrivals = burst("A", 8) + burst("B", 8)
        result = gps.run(arrivals, horizon=0.004)
        assert result.share_of("B") == pytest.approx(0.75, abs=0.02)

    def test_idle_flow_capacity_redistributed(self):
        gps = GPSFluidSimulator(link_rate_bps=8e6)
        # B finishes early; A then gets the whole link.
        arrivals = burst("A", 8) + burst("B", 1)
        result = gps.run(arrivals)
        assert result.served_bytes["A"] == pytest.approx(8000)
        assert result.served_bytes["B"] == pytest.approx(1000)

    def test_finish_times_monotone_within_flow(self):
        gps = GPSFluidSimulator(link_rate_bps=8e6)
        arrivals = burst("A", 5) + burst("B", 5)
        result = gps.run(arrivals)
        a_finishes = result.finish_times[:5]
        assert a_finishes == sorted(a_finishes)
        assert all(t != float("inf") for t in result.finish_times)

    def test_staggered_arrivals(self):
        gps = GPSFluidSimulator(link_rate_bps=8e6)
        arrivals = [(0.0, Packet(flow="A", length=1000)),
                    (0.0005, Packet(flow="B", length=1000))]
        result = gps.run(arrivals)
        # A alone for 0.5 ms (500 B), then both share.
        assert result.finish_times[0] < result.finish_times[1]


class TestHierarchicalDRR:
    def make(self):
        return HierarchicalDRR(
            class_weights={"Left": 1.0, "Right": 9.0},
            class_flows={"Left": {"A": 3.0, "B": 7.0}, "Right": {"C": 4.0, "D": 6.0}},
            quantum_bytes=1000,
        )

    def test_unknown_flow_dropped(self):
        hdrr = self.make()
        assert not hdrr.enqueue(Packet(flow="Z", length=100))
        assert hdrr.drops == 1

    def test_class_level_shares_approximate_weights(self):
        hdrr = self.make()
        for _ in range(200):
            for flow in "ABCD":
                hdrr.enqueue(Packet(flow=flow, length=1000))
        out = [hdrr.dequeue() for _ in range(200)]
        right = sum(1 for p in out if p.flow in "CD")
        assert right / 200 == pytest.approx(0.9, abs=0.05)

    def test_flow_level_shares_within_class(self):
        hdrr = self.make()
        for _ in range(200):
            hdrr.enqueue(Packet(flow="C", length=1000))
            hdrr.enqueue(Packet(flow="D", length=1000))
        out = [hdrr.dequeue() for _ in range(100)]
        d_share = sum(1 for p in out if p.flow == "D") / 100
        assert d_share == pytest.approx(0.6, abs=0.08)

    def test_len_and_empty(self):
        hdrr = self.make()
        assert hdrr.is_empty
        hdrr.enqueue(Packet(flow="A", length=100))
        assert len(hdrr) == 1
        assert hdrr.dequeue().flow == "A"
        assert hdrr.dequeue() is None
