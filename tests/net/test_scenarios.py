"""Tests for the scenario engine and the built-in fabric scenarios.

These assert the two acceptance claims of the fabric layer:

* fig6_chain — LSTF on a 3-switch chain keeps urgent packets inside their
  20 ms end-to-end slack budget while per-hop FIFO blows it;
* leaf_spine_fct — SRPT on a 4-leaf/2-spine Clos shortens mean FCT and the
  short-flow tail against FIFO on the identical workload.
"""

from __future__ import annotations

import pytest

from repro.algorithms import FIFOTransaction
from repro.core import Packet, ProgrammableScheduler, single_node_tree
from repro.exceptions import TrafficError
from repro.net import Demand, Scenario, get_scenario, linear_chain, list_scenarios
from repro.net.scenarios import URGENT_SLACK


def fifo_factory(switch, port):
    return ProgrammableScheduler(single_node_tree(FIFOTransaction()))


class TestScenarioEngine:
    def test_registry_contains_builtins(self):
        names = [scenario.name for scenario in list_scenarios()]
        assert "fig6_chain" in names
        assert "leaf_spine_fct" in names
        assert "chain_flap" in names
        assert "dead_spine" in names
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_fault_scenarios_carry_plans_others_do_not(self):
        assert get_scenario("fig6_chain").fault_plan is None
        assert get_scenario("leaf_spine_fct").fault_plan is None
        assert get_scenario("chain_flap").fault_plan is not None
        assert get_scenario("dead_spine").fault_plan is not None

    def test_demand_kinds_validate(self):
        with pytest.raises(TrafficError):
            Demand(src="a", dst="b", kind="explicit").build_arrivals(1.0)
        with pytest.raises(TrafficError):
            list(Demand(src="a", dst="b", kind="mystery",
                        rate_bps=1e6).build_arrivals(1.0))

    def test_demand_addresses_packets(self):
        demand = Demand(src="h_src", dst="h_dst", kind="cbr", rate_bps=1e6,
                        packet_size=500)
        arrivals = list(demand.build_arrivals(0.01))
        assert arrivals
        assert all(p.src == "h_src" and p.dst == "h_dst" for _t, p in arrivals)

    def test_scenario_runs_each_variant_on_identical_workload(self):
        scenario = Scenario(
            name="tiny",
            title="tiny",
            topology=lambda: linear_chain(1, link_rate_bps=1e6),
            demands=[Demand(src="h_src", dst="h_dst", kind="cbr",
                            rate_bps=5e5, packet_size=500)],
            variants={"A": fifo_factory, "B": fifo_factory},
            duration=0.05,
        )
        results = scenario.run()
        assert set(results) == {"A", "B"}
        assert (results["A"].conservation["injected"]
                == results["B"].conservation["injected"] > 0)
        assert results["A"].flow_stats == results["B"].flow_stats

    def test_single_variant_selection(self):
        scenario = get_scenario("fig6_chain")
        results = scenario.run(quick=True, variant="LSTF")
        assert list(results) == ["LSTF"]

    def test_unknown_variant_raises(self):
        with pytest.raises(KeyError, match="unknown variant"):
            get_scenario("fig6_chain").run(quick=True, variant="nope")


class TestDemandSeeds:
    def test_demands_derive_distinct_seeds_by_flow_name(self):
        first = Demand(src="a", dst="z", kind="poisson", rate_bps=1e6,
                       flow="f1")
        second = Demand(src="b", dst="z", kind="poisson", rate_bps=1e6,
                        flow="f2")
        assert first.effective_seed(0) != second.effective_seed(0)
        times_1 = [t for t, _ in first.build_arrivals(0.05)]
        times_2 = [t for t, _ in second.build_arrivals(0.05)]
        assert times_1 != times_2  # not perfectly correlated streams

    def test_base_seed_changes_derived_streams(self):
        demand = Demand(src="a", dst="z", kind="poisson", rate_bps=1e6)
        assert demand.effective_seed(0) != demand.effective_seed(1)
        times_a = [t for t, _ in demand.build_arrivals(0.05, base_seed=0)]
        times_b = [t for t, _ in demand.build_arrivals(0.05, base_seed=1)]
        assert times_a != times_b

    def test_explicit_seed_override_honoured(self):
        demand = Demand(src="a", dst="z", kind="poisson", rate_bps=1e6,
                        seed=7)
        assert demand.effective_seed(0) == demand.effective_seed(99) == 7
        times_a = [t for t, _ in demand.build_arrivals(0.05, base_seed=0)]
        times_b = [t for t, _ in demand.build_arrivals(0.05, base_seed=99)]
        assert times_a == times_b

    def test_explicit_callable_receives_derived_seed(self):
        seen = []

        def mix(seed=0):
            seen.append(seed)
            return iter([(0.0, Packet(flow="x", length=100))])

        demand = Demand(src="a", dst="z", kind="explicit", arrivals=mix)
        list(demand.build_arrivals(0.01, base_seed=0))
        list(demand.build_arrivals(0.01, base_seed=1))
        assert seen[0] == demand.effective_seed(0)
        assert seen[1] == demand.effective_seed(1)
        assert seen[0] != seen[1]

    def test_explicit_callable_without_seed_still_works(self):
        demand = Demand(
            src="a", dst="z", kind="explicit",
            arrivals=lambda: iter([(0.0, Packet(flow="x", length=100))]),
        )
        assert len(list(demand.build_arrivals(0.01, base_seed=5))) == 1

    def test_fig6_mix_responds_to_base_seed(self):
        # The campaign engine's replicate factor must actually vary the
        # fig6 workload (the urgent/bulk mix is randomised per base seed).
        scenario = get_scenario("fig6_chain")
        main_demand = scenario.demands[0]
        times_a = [t for t, _ in main_demand.build_arrivals(0.2, base_seed=0)]
        times_b = [t for t, _ in main_demand.build_arrivals(0.2, base_seed=1)]
        assert times_a != times_b
        # ... while staying reproducible for a fixed base seed.
        again = [t for t, _ in main_demand.build_arrivals(0.2, base_seed=0)]
        assert times_a == again

    def test_load_scale_scales_offered_rate(self):
        demand = Demand(src="a", dst="z", kind="cbr", rate_bps=1e6,
                        packet_size=500)
        base = list(demand.build_arrivals(0.012))
        doubled = list(demand.build_arrivals(0.012, load_scale=2.0))
        assert len(doubled) == 2 * len(base)
        with pytest.raises(TrafficError):
            demand.build_arrivals(0.01, load_scale=0.0)


class TestProgramVariants:
    @pytest.mark.parametrize("scenario_name", ["fig6_chain", "leaf_spine_fct"])
    def test_program_twins_match_native_results(self, scenario_name):
        scenario = get_scenario(scenario_name)
        native = scenario.run(quick=True)
        for lang_backend in ("compiled", "interpreted"):
            programmed = scenario.run(quick=True, lang_backend=lang_backend)
            for label, result in native.items():
                assert programmed[label].flow_stats == result.flow_stats, (
                    f"{scenario_name}/{label} diverges under "
                    f"lang_backend={lang_backend}"
                )
                assert (programmed[label].conservation
                        == result.conservation)

    def test_missing_program_variant_raises(self):
        scenario = Scenario(
            name="no_programs",
            title="no programs",
            topology=lambda: linear_chain(1, link_rate_bps=1e6),
            demands=[Demand(src="h_src", dst="h_dst", kind="cbr",
                            rate_bps=5e5)],
            variants={"A": fifo_factory},
            duration=0.01,
        )
        with pytest.raises(KeyError, match="no program variant"):
            scenario.run(lang_backend="compiled")


class TestFig6Chain:
    @pytest.fixture(scope="class")
    def results(self):
        return get_scenario("fig6_chain").run(quick=True)

    def test_all_packets_accounted_for(self, results):
        for result in results.values():
            conservation = result.check_conservation()
            assert conservation["in_flight"] == 0
            assert conservation["lost_to_faults"] == 0
            assert (conservation["delivered"] + conservation["dropped"]
                    == conservation["injected"])

    def test_lstf_meets_budget_fifo_misses_it(self, results):
        lstf = results["LSTF"].flow_stats["urgent"]["max_delay"]
        fifo = results["FIFO"].flow_stats["urgent"]["max_delay"]
        assert lstf <= URGENT_SLACK
        assert fifo > URGENT_SLACK
        assert lstf < fifo

    def test_same_urgent_packets_in_both_variants(self, results):
        assert (results["LSTF"].flow_stats["urgent"]["packets"]
                == results["FIFO"].flow_stats["urgent"]["packets"] > 0)


class TestLeafSpineFCT:
    @pytest.fixture(scope="class")
    def results(self):
        return get_scenario("leaf_spine_fct").run(quick=True)

    def test_flows_complete_under_both_schedulers(self, results):
        for result in results.values():
            result.check_conservation()
            assert result.fct is not None
            assert result.fct.count > 0
        assert results["SRPT"].fct.count == results["FIFO"].fct.count

    def test_srpt_shortens_mean_and_short_flow_fct(self, results):
        srpt, fifo = results["SRPT"], results["FIFO"]
        assert srpt.fct.mean <= fifo.fct.mean
        assert srpt.fct_short.mean <= fifo.fct_short.mean
        assert srpt.fct_short.p99 <= fifo.fct_short.p99

    def test_per_port_stats_cover_the_fabric(self, results):
        stats = results["SRPT"].stats_by_node
        # Both spine uplinks of leaf0 saw traffic (ECMP spread).
        leaf0 = stats["leaf0"]["per_port"]
        assert leaf0["to_spine0"]["transmitted"] > 0
        assert leaf0["to_spine1"]["transmitted"] > 0


class TestExperimentRegistryIntegration:
    def test_fig6_experiment_runs_on_the_chain(self):
        from repro.reporting import run_experiment

        result = run_experiment("fig6", quick=True)
        by_scheduler = {row["scheduler"]: row for row in result.rows}
        assert by_scheduler["LSTF"]["meets_budget"] is True
        assert by_scheduler["FIFO"]["meets_budget"] is False
        assert by_scheduler["LSTF"]["hops"] == 3
        assert "per_node_stats" in result.details

    def test_chain_flap_experiment_reports_fault_columns(self):
        from repro.reporting import run_experiment

        result = run_experiment("chain_flap", quick=True)
        by_scheduler = {row["scheduler"]: row for row in result.rows}
        for row in by_scheduler.values():
            assert row["lost_to_faults"] > 0
            assert row["topology_changes"] == 6  # 3 down/up cycles
        assert "conservation" in result.details

    def test_dead_spine_experiment_conserves(self):
        from repro.reporting import run_experiment

        result = run_experiment("dead_spine", quick=True)
        for name, counters in result.details["conservation"].items():
            assert counters["injected"] == (
                counters["delivered"] + counters["dropped"]
                + counters["lost_to_faults"] + counters["in_flight"]
            ), name

    def test_leaf_spine_experiment_reports_fct(self):
        from repro.reporting import run_experiment

        result = run_experiment("leaf_spine_fct", quick=True)
        by_scheduler = {row["scheduler"]: row for row in result.rows}
        assert (by_scheduler["SRPT"]["mean_fct_ms"]
                <= by_scheduler["FIFO"]["mean_fct_ms"])
        per_node = result.details["per_node_stats"]["SRPT"]
        assert "spine0" in per_node
        assert any(port.startswith("to_") for port in per_node["spine0"]["per_port"])
