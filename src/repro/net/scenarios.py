"""Built-in fabric scenarios.

Two scenarios upgrade the paper's single-port experiments to real
multi-hop fabrics:

* :data:`FIG6_CHAIN` — Figure 6's LSTF-vs-FIFO urgent-packet claim on a
  three-switch chain with cross traffic entering at every hop.  LSTF's
  whole point is multi-hop: a packet that lost slack queueing at hop 1
  jumps ahead at hops 2 and 3, which a single congested port cannot show.
* :data:`LEAF_SPINE_FCT` — the Section 3.4 SRPT-vs-FIFO flow-completion
  claim on a 4-leaf / 2-spine Clos fabric with ECMP and two senders
  converging on each receiver (incast at the receiver's access link).

Both register themselves in :data:`~repro.net.scenario.SCENARIOS` on
import, and the experiment registry (:mod:`repro.reporting.experiments`)
wraps them so ``repro run fig6 --quick`` and ``repro run leaf_spine_fct
--quick`` execute fabric runs.
"""

from __future__ import annotations

import random
from typing import Iterator, Tuple

from ..algorithms.fifo import FIFOTransaction
from ..algorithms.fine_grained import SRPTTransaction
from ..algorithms.lstf import LSTFTransaction
from ..core.packet import Packet
from ..core.scheduler import ProgrammableScheduler
from ..core.tree import single_node_tree
from ..lang.programs import fifo_program, fine_grained_program
from ..lang.bridge import compile_scheduling_program
from .faults import FaultPlan, LinkLoss, SwitchDown, flapping_link
from .scenario import Demand, Scenario, register
from .topology import leaf_spine, linear_chain


def _transaction_factory(transaction_class):
    """A per-port scheduler factory for a single-node transaction tree."""

    def factory(switch: str, port: str) -> ProgrammableScheduler:
        return ProgrammableScheduler(single_node_tree(transaction_class()))

    return factory


def _program_variant(program_builder, **kwargs):
    """A :data:`~repro.net.scenario.ProgramVariantBuilder` for one program.

    ``program_builder(backend=..., **kwargs)`` must return a lang-bridge
    transaction; the campaign engine uses these twins to sweep the
    compiled-vs-interpreted execution backend over identical workloads.
    """

    def for_backend(lang_backend):
        def factory(switch: str, port: str) -> ProgrammableScheduler:
            transaction = program_builder(backend=lang_backend, **kwargs)
            return ProgrammableScheduler(single_node_tree(transaction))

        return factory

    return for_backend


#: Figure 6's LSTF transaction as program text, adapted to the fabric's
#: in-band telemetry: the fabric *accumulates* each hop's wait into
#: ``prev_wait_time`` (see :func:`repro.algorithms.lstf.stamp_wait_time`),
#: so the transaction consumes it and resets the field — the exact
#: behaviour of the native :class:`~repro.algorithms.lstf.LSTFTransaction`.
LSTF_FABRIC_SOURCE = """
// Figure 6 on a fabric: consume the previous hop's wait, re-rank on slack
p.slack = p.slack - p.prev_wait_time;
p.prev_wait_time = 0;
p.rank = p.slack;
"""


def lstf_fabric_program(backend=None):
    """Fabric-telemetry LSTF as a compiled/interpreted program."""
    return compile_scheduling_program(
        LSTF_FABRIC_SOURCE, name="lstf_fabric", backend=backend
    )


# --------------------------------------------------------------------------- #
# Figure 6 on a 3-hop chain                                                    #
# --------------------------------------------------------------------------- #
CHAIN_LINK_RATE = 10e6
CHAIN_HOPS = 3
#: End-to-end slack budget carried by urgent packets (seconds).
URGENT_SLACK = 0.02
#: Relaxed slack carried by everything else.
BULK_SLACK = 0.5


def _fig6_mix(seed: int = 0) -> Iterator[Tuple[float, Packet]]:
    """The congested urgent/bulk mix of Figure 6, addressed h_src -> h_dst."""
    rng = random.Random(seed)
    time = 0.0
    for index in range(200):
        time += rng.expovariate(2000.0)
        urgent = index % 10 == 0
        yield time, Packet(
            flow="urgent" if urgent else "bulk",
            length=600,
            fields={"slack": URGENT_SLACK if urgent else BULK_SLACK},
        )


def build_fig6_chain() -> Scenario:
    """LSTF vs per-hop FIFO on a linear chain with per-hop cross traffic."""
    demands = [
        Demand(src="h_src", dst="h_dst", kind="explicit", arrivals=_fig6_mix),
    ]
    # One cross-traffic host per switch, all draining toward h_dst, so every
    # hop of the main path is congested (offered load grows hop by hop).
    for hop in range(1, CHAIN_HOPS + 1):
        demands.append(
            Demand(
                src=f"c{hop}", dst="h_dst", kind="cbr",
                rate_bps=7e6, packet_size=1500,
                flow=f"cross{hop}", fields={"slack": BULK_SLACK},
            )
        )
    return Scenario(
        name="fig6_chain",
        title="Figure 6: LSTF vs per-hop FIFO on a 3-switch chain",
        topology=lambda: linear_chain(
            CHAIN_HOPS, link_rate_bps=CHAIN_LINK_RATE, cross_hosts=True
        ),
        demands=demands,
        variants={
            "LSTF": _transaction_factory(LSTFTransaction),
            "FIFO": _transaction_factory(FIFOTransaction),
        },
        program_variants={
            "LSTF": _program_variant(lstf_fabric_program),
            "FIFO": _program_variant(fifo_program),
        },
        duration=0.2,
        quick_duration=0.12,
        keep_packets=False,
        paper_reference="Figure 6, Section 3.1",
        notes=(
            "Urgent packets carry a 20 ms end-to-end slack; the fabric "
            "stamps each hop's queueing delay into prev_wait_time and LSTF "
            "re-ranks on remaining slack at every switch, so urgent packets "
            "that lost slack early overtake bulk later.  Per-hop FIFO has "
            "no such recourse and blows the budget."
        ),
    )


# --------------------------------------------------------------------------- #
# Section 3.4 FCT on a leaf-spine fabric                                       #
# --------------------------------------------------------------------------- #
LEAF_SPINE_RATE = 1e9
FCT_LOAD = 0.4e9


def build_leaf_spine_fct() -> Scenario:
    """SRPT vs FIFO flow completion times on a 4-leaf / 2-spine Clos."""
    pairs = [
        ("h0_0", "h2_0"), ("h1_0", "h2_0"),   # incast onto h2_0
        ("h0_1", "h3_0"), ("h1_1", "h3_0"),   # incast onto h3_0
    ]
    # Seeds are derived per demand from (scenario base seed, flow name), so
    # the four senders offer independent flow arrival processes.
    demands = [
        Demand(src=src, dst=dst, kind="flows", rate_bps=FCT_LOAD,
               flow=f"{src}->{dst}")
        for src, dst in pairs
    ]
    return Scenario(
        name="leaf_spine_fct",
        title="Section 3.4: SRPT vs FIFO FCT on a leaf-spine fabric",
        topology=lambda: leaf_spine(
            leaves=4, spines=2, hosts_per_leaf=2,
            host_rate_bps=LEAF_SPINE_RATE,
        ),
        demands=demands,
        variants={
            "SRPT": _transaction_factory(SRPTTransaction),
            "FIFO": _transaction_factory(FIFOTransaction),
        },
        program_variants={
            "SRPT": _program_variant(fine_grained_program,
                                     field="remaining_size"),
            "FIFO": _program_variant(fifo_program),
        },
        duration=0.15,
        quick_duration=0.05,
        ecmp=True,
        keep_packets=False,
        paper_reference="Section 3.4",
        notes=(
            "Two senders on different leaves converge on each receiver, so "
            "the receiver's access link is the bottleneck; flows spread "
            "across both spines by ECMP flow hashing.  SRPT (rank = "
            "remaining flow size, a one-line transaction) completes short "
            "flows ahead of long ones and shortens mean and tail FCT "
            "against per-hop FIFO on the identical workload."
        ),
    )


# --------------------------------------------------------------------------- #
# Fault scenarios: scheduling under failing links and switches                  #
# --------------------------------------------------------------------------- #
def build_chain_flap() -> Scenario:
    """LSTF vs FIFO on a 3-switch chain whose middle hop flaps.

    The s1-s2 link goes down for 20 ms out of every 50 ms (three cycles),
    and the s2-s3 link drops half a percent of packets throughout.  Each
    outage strands the main path: s1's egress queue builds while the link
    is dark, the packet on the wire at failure time is blackholed into
    ``lost_to_faults``, and the backlog bursts out on recovery — exactly
    the regime where LSTF's re-ranking on remaining slack should recover
    urgent packets that lost their budget waiting out the flap, while
    per-hop FIFO drains the backlog in arrival order.
    """
    demands = [
        Demand(src="h_src", dst="h_dst", kind="poisson", rate_bps=6e6,
               packet_size=1500, flow="bulk", fields={"slack": BULK_SLACK}),
        Demand(src="h_src", dst="h_dst", kind="poisson", rate_bps=0.5e6,
               packet_size=600, flow="urgent", fields={"slack": URGENT_SLACK}),
    ]
    plan = FaultPlan(
        events=flapping_link("s1", "s2", first_down=0.03, downtime=0.02,
                             period=0.05, cycles=3),
        losses=(LinkLoss("s2", "s3", rate=0.005),),
    )
    return Scenario(
        name="chain_flap",
        title="Fault injection: LSTF vs FIFO across a flapping middle hop",
        topology=lambda: linear_chain(CHAIN_HOPS,
                                      link_rate_bps=CHAIN_LINK_RATE),
        demands=demands,
        variants={
            "LSTF": _transaction_factory(LSTFTransaction),
            "FIFO": _transaction_factory(FIFOTransaction),
        },
        program_variants={
            "LSTF": _program_variant(lstf_fabric_program),
            "FIFO": _program_variant(fifo_program),
        },
        duration=0.2,
        quick_duration=0.1,
        keep_packets=False,
        fault_plan=plan,
        paper_reference="Section 3.1 (robustness extension)",
        notes=(
            "Urgent and bulk Poisson streams share the chain; the middle "
            "link flaps down 20 ms of every 50 ms and the last hop loses "
            "0.5% of packets.  Conservation holds throughout: "
            "injected == delivered + dropped + lost_to_faults + in_flight."
        ),
    )


def build_dead_spine() -> Scenario:
    """SRPT vs FIFO FCT on a leaf-spine fabric that loses one spine.

    ``spine1`` fails 15 ms in and never recovers.  ECMP reconverges onto
    ``spine0``, halving fabric capacity: flows hashed onto the dead spine
    lose their in-flight packets to ``lost_to_faults``, everything after
    the reconvergence shares the surviving spine.  SRPT's short-flow
    advantage should persist (and matter more) on the degraded fabric.
    """
    pairs = [
        ("h0_0", "h2_0"), ("h1_0", "h2_0"),
        ("h0_1", "h3_0"), ("h1_1", "h3_0"),
    ]
    demands = [
        Demand(src=src, dst=dst, kind="flows", rate_bps=FCT_LOAD,
               flow=f"{src}->{dst}")
        for src, dst in pairs
    ]
    return Scenario(
        name="dead_spine",
        title="Fault injection: SRPT vs FIFO with one dead spine",
        topology=lambda: leaf_spine(
            leaves=4, spines=2, hosts_per_leaf=2,
            host_rate_bps=LEAF_SPINE_RATE,
        ),
        demands=demands,
        variants={
            "SRPT": _transaction_factory(SRPTTransaction),
            "FIFO": _transaction_factory(FIFOTransaction),
        },
        program_variants={
            "SRPT": _program_variant(fine_grained_program,
                                     field="remaining_size"),
            "FIFO": _program_variant(fifo_program),
        },
        duration=0.15,
        quick_duration=0.05,
        ecmp=True,
        keep_packets=False,
        fault_plan=FaultPlan(events=(SwitchDown(0.015, "spine1"),)),
        paper_reference="Section 3.4 (robustness extension)",
        notes=(
            "spine1 dies at t=15 ms and stays dead; ECMP reconverges onto "
            "spine0.  Packets queued inside or in flight toward the dead "
            "spine are blackholed into lost_to_faults; the remaining "
            "traffic completes over half the fabric."
        ),
    )


FIG6_CHAIN = register(build_fig6_chain())
LEAF_SPINE_FCT = register(build_leaf_spine_fct())
CHAIN_FLAP = register(build_chain_flap())
DEAD_SPINE = register(build_dead_spine())
