"""A small discrete-event simulator.

The behavioural experiments in the paper (bandwidth shares under HPFQ, rate
limits under shaping, Stop-and-Go delay bounds, minimum-rate guarantees) all
need packets to *take time on the wire*.  This simulator provides exactly
that: a clock, an event queue, and components (sources, output ports) that
schedule work against it.

Design notes
------------
* Time is a float in seconds; the simulator never invents time — it jumps
  from event to event.
* Determinism: same inputs, same outputs.  Events at the same time run in
  scheduling order; all randomness lives in the traffic generators, which
  take explicit seeds.
* Components register themselves via :meth:`Simulator.schedule` /
  :meth:`Simulator.schedule_at`; there is no global registry.
* The :meth:`Simulator.run` loop is deliberately *flat*: it operates on the
  event queue's raw tuple heap with the hot names bound to locals, because
  at fabric scale the per-event dispatch overhead dominates the simulation.
  Events are bare ``(time, seq, callback)`` tuples (see
  :mod:`repro.sim.events`); cancellation goes through
  :meth:`Simulator.cancel`.
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable, Optional, Union

from ..exceptions import SimulationError
from ..obs import metrics
from .events import Event, EventQueue, TimingWheelQueue, make_event_queue

_INF = float("inf")
_NEG_INF = float("-inf")


class _SimMetrics:
    """Instruments for the event loop, captured once at construction."""

    __slots__ = ("run_wall_s", "drain_width", "events", "heap_size")

    def __init__(self, registry: "metrics.MetricsRegistry") -> None:
        self.run_wall_s = registry.histogram("sim.run_wall_s")
        self.drain_width = registry.histogram(
            "sim.drain_width", buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128))
        self.events = registry.counter("sim.events")
        self.heap_size = registry.gauge("sim.heap_size")


class Simulator:
    """Discrete-event simulation kernel."""

    __slots__ = ("now", "_queue", "events_processed", "_running", "_deferred",
                 "_metrics", "_raw_heap", "_ff_horizon")

    def __init__(self, event_queue: Union[None, str, EventQueue,
                                          TimingWheelQueue] = None) -> None:
        self.now: float = 0.0
        #: Event queue backend: a backend name (``"heap"``/``"wheel"``), a
        #: queue instance, or ``None`` to consult ``REPRO_EVENT_QUEUE``.
        if event_queue is None or isinstance(event_queue, str):
            self._queue = make_event_queue(event_queue)
        else:
            self._queue = event_queue
        #: The heap backend's raw tuple list, or None for other backends.
        #: The schedule methods and run() inline heappush/heappop against
        #: it; when absent they go through the queue's insert/pop/peek API.
        self._raw_heap = getattr(self._queue, "_heap", None)
        self.events_processed = 0
        self._running = False
        #: One-slot deferral buffer (see :meth:`schedule_fast`): the most
        #: recently fast-scheduled event, kept out of the heap while it is
        #: a plausible next-event candidate.
        self._deferred: Optional[Event] = None
        #: Latest time a port may fast-forward a transmit completion to
        #: without going through the event loop (see the batched-transmit
        #: loop in :mod:`repro.sim.link`).  run() raises it to the active
        #: horizon while events are unbounded; -inf disables fast-forward
        #: outside run() and under ``max_events``.
        self._ff_horizon: float = _NEG_INF
        # None unless a metrics registry was enabled when this simulator
        # was built; run() binds it to a local, so the disabled cost is
        # one pointer comparison per outer loop iteration.
        registry = metrics.active()
        self._metrics = None if registry is None else _SimMetrics(registry)

    @property
    def event_queue_kind(self) -> str:
        """Name of the active event-queue backend (``heap``/``wheel``)."""
        if isinstance(self._queue, TimingWheelQueue):
            return "wheel"
        if isinstance(self._queue, EventQueue):
            return "heap"
        return type(self._queue).__name__

    # -- scheduling -----------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], Any], name: str = "") -> Event:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        # Inlined EventQueue.push: one event per simulated packet per hop
        # makes even the single extra call measurable.
        queue = self._queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        entry = (self.now + delay, seq, callback)
        heap = self._raw_heap
        if heap is not None:
            heappush(heap, entry)
        else:
            queue.insert(entry)
        return entry

    def schedule_at(self, time: float, callback: Callable[[], Any], name: str = "") -> Event:
        """Run ``callback`` at absolute simulated time ``time``."""
        now = self.now
        if time < now - 1e-12:
            raise SimulationError(
                f"cannot schedule at {time} (now is {now}): time must not go backwards"
            )
        queue = self._queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        entry = (time if time > now else now, seq, callback)
        heap = self._raw_heap
        if heap is not None:
            heappush(heap, entry)
        else:
            queue.insert(entry)
        return entry

    def schedule_fast(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Like :meth:`schedule`, but keep the event in a one-slot deferral
        buffer instead of the heap.

        Intended for self-rescheduling hot loops (a port's back-to-back
        transmit completions): the completion just scheduled is very often
        the next event to run, so the run loop can *prefetch* it — compare
        it against the heap head and execute it without ever paying the
        heappush/heappop pair.  A previously deferred event is demoted to
        the heap; ordering is unaffected either way because the run loop
        always picks the (time, seq)-smallest of the slot and the heap head.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        queue = self._queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        entry = (self.now + delay, seq, callback)
        heap = self._raw_heap
        if self._running:
            previous = self._deferred
            if previous is not None:
                if heap is not None:
                    heappush(heap, previous)
                else:
                    queue.insert(previous)
            self._deferred = entry
        else:
            # Outside run() the slot is never drained; keep the queue
            # authoritative so peek/len stay exact.
            if heap is not None:
                heappush(heap, entry)
            else:
                queue.insert(entry)
        return entry

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (handle returned by ``schedule*``)."""
        if event is self._deferred:
            self._deferred = None
            return
        self._queue.cancel(event)

    # -- execution ------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the queue empties or ``until`` is reached.

        Returns the simulation time when the run stopped.  Events scheduled
        exactly at ``until`` are processed.
        """
        queue = self._queue
        # Horizon / budget as float sentinels: one comparison per event
        # instead of a None test plus a comparison.
        until_f = _INF if until is None else until
        max_f = _INF if max_events is None else max_events
        heap = self._raw_heap
        self._running = True
        # Ports may fast-forward back-to-back transmit completions (the
        # batched-transmit loop) only while the event budget is unbounded
        # and never past the run horizon.
        self._ff_horizon = until_f if max_events is None else _NEG_INF
        processed = 0
        stop = False
        m = self._metrics
        wall_start = perf_counter() if m is not None else 0.0
        if m is not None:
            m.heap_size.set(len(queue))
        try:
            if heap is None:
                processed = self._run_generic(queue, until_f, max_f)
            else:
                # Bind the queue internals once: entries pushed by callbacks
                # land in the same list objects, and EventQueue.compact
                # rebuilds in place.
                tombstones = queue._tombstones
                pop = heappop
                while not stop:
                    # Candidate: the (time, seq)-smallest of the deferred
                    # slot and the heap head.  The slot is the previous
                    # iteration's prefetched transmit completion
                    # (schedule_fast) and very often wins, skipping the
                    # heappush/heappop pair entirely.
                    deferred = self._deferred
                    if deferred is None:
                        if not heap:
                            break
                        entry = heap[0]
                        time = entry[0]
                        if time > until_f:
                            break
                        pop(heap)
                    elif heap and heap[0] < deferred:
                        entry = heap[0]
                        time = entry[0]
                        if time > until_f:
                            break
                        pop(heap)
                    else:
                        entry = deferred
                        time = entry[0]
                        if time > until_f:
                            break
                        self._deferred = None
                    if tombstones and entry[1] in tombstones:
                        tombstones.discard(entry[1])
                        continue
                    self.now = time
                    entry[2]()
                    processed += 1
                    if processed >= max_f:
                        break
                    # Batch drain: every heap event already due at this
                    # exact instant is eligible — run them without
                    # re-checking the horizon or re-advancing the clock.
                    # Bail to the outer loop the moment a callback
                    # prefetches a deferred event (it may order before the
                    # heap head).  A fast-forwarding port advances the
                    # clock past ``time`` only when no due event remains,
                    # so the drain condition still holds.
                    if self._deferred is None:
                        batch_start = processed
                        while heap:
                            entry = heap[0]
                            if entry[0] != time or self._deferred is not None:
                                break
                            pop(heap)
                            if tombstones and entry[1] in tombstones:
                                tombstones.discard(entry[1])
                                continue
                            entry[2]()
                            processed += 1
                            if processed >= max_f:
                                stop = True
                                break
                        if m is not None:
                            m.drain_width.observe(processed - batch_start)
        finally:
            self._running = False
            self._ff_horizon = _NEG_INF
            # Flush the deferral slot so the queue is authoritative again
            # for peek/len/next run().
            deferred = self._deferred
            if deferred is not None:
                if heap is not None:
                    heappush(heap, deferred)
                else:
                    queue.insert(deferred)
                self._deferred = None
            self.events_processed += processed
            if m is not None:
                m.run_wall_s.observe(perf_counter() - wall_start)
                m.events.inc(processed)
                m.heap_size.set(len(queue))
        if until is not None:
            next_time = queue.peek_time()
            if next_time is None or next_time > until:
                # Advance the clock to the requested horizon so rate
                # measurements over [0, until] use the intended window even
                # if the last packet departed earlier.
                if until > self.now:
                    self.now = until
        return self.now

    def _run_generic(self, queue, until_f: float, max_f: float) -> int:
        """Run loop for non-heap backends (the timing wheel).

        Drives the queue through its ``peek``/``pop``/``insert`` API
        instead of raw heap access; ordering semantics — deferral slot
        included — are identical to the flat loop.
        """
        peek = queue.peek
        pop = queue.pop
        processed = 0
        while True:
            deferred = self._deferred
            head = peek()
            if deferred is None:
                if head is None:
                    break
                entry = head
                time = entry[0]
                if time > until_f:
                    break
                pop()
            elif head is not None and head < deferred:
                entry = head
                time = entry[0]
                if time > until_f:
                    break
                pop()
            else:
                entry = deferred
                time = entry[0]
                if time > until_f:
                    break
                self._deferred = None
                # Simulator.cancel clears the slot, but a direct
                # queue.cancel on a deferred entry leaves a tombstone —
                # honour it like the flat loop does.
                tombstones = queue._tombstones
                if tombstones and entry[1] in tombstones:
                    tombstones.discard(entry[1])
                    continue
            self.now = time
            entry[2]()
            processed += 1
            if processed >= max_f:
                break
        return processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        # The deferral slot only holds an event mid-run(); count it so
        # callbacks observing the queue see a consistent total.
        return len(self._queue) + (1 if self._deferred is not None else 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"
