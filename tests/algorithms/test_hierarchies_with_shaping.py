"""Tests for the Hierarchies-with-Shaping tree (Figure 4)."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    FIG4_RIGHT_RATE_BPS,
    build_fig4_tree,
    build_shaped_hierarchy,
)
from repro.core import Packet, ProgrammableScheduler
from repro.metrics import max_windowed_rate_bps
from repro.sim import OutputPort, PacketSource, Simulator
from repro.traffic import FlowSpec, cbr_arrivals, merge_arrivals


class TestTreeConstruction:
    def test_fig4_right_node_is_shaped(self):
        tree = build_fig4_tree()
        assert tree.node("Right").shaping is not None
        assert tree.node("Left").shaping is None
        assert tree.node("Right").shaping.rate_bps == FIG4_RIGHT_RATE_BPS

    def test_generic_builder_applies_limits_selectively(self):
        tree = build_shaped_hierarchy(
            class_flows={"video": {"v1": 1.0}, "bulk": {"b1": 1.0}},
            class_weights={"video": 1.0, "bulk": 1.0},
            class_rate_limits_bps={"bulk": 5e6},
        )
        assert tree.node("bulk").shaping is not None
        assert tree.node("video").shaping is None


class TestShapingBehaviour:
    def test_right_class_held_back_without_wall_clock_progress(self):
        scheduler = ProgrammableScheduler(build_fig4_tree(right_burst_bytes=1500))
        for _ in range(5):
            scheduler.enqueue(Packet(flow="C", length=1500), now=0.0)
        # Only the burst-allowance worth of Right traffic is eligible at t=0.
        eligible = scheduler.drain(now=0.0)
        assert len(eligible) == 1
        assert len(scheduler) == 4

    def test_left_class_never_blocked_by_right_shaper(self):
        scheduler = ProgrammableScheduler(build_fig4_tree(right_burst_bytes=1500))
        for _ in range(3):
            scheduler.enqueue(Packet(flow="C", length=1500), now=0.0)
            scheduler.enqueue(Packet(flow="A", length=1500), now=0.0)
        eligible = scheduler.drain(now=0.0)
        assert sum(1 for p in eligible if p.flow == "A") == 3

    def test_right_rate_limited_to_10mbps_on_a_link(self):
        """The Figure 4 experiment in miniature: Right offers far more than
        10 Mbit/s but never receives more, regardless of offered load."""
        sim = Simulator()
        scheduler = ProgrammableScheduler(build_fig4_tree())
        port = OutputPort(sim, scheduler, rate_bps=100e6)
        duration = 0.2
        streams = []
        for flow in ("A", "B", "C", "D"):
            spec = FlowSpec(name=flow, rate_bps=50e6, packet_size=1500)
            streams.append(cbr_arrivals(spec, duration=duration))
        PacketSource(sim, port, merge_arrivals(*streams))
        sim.run(until=duration)
        right_rate = max_windowed_rate_bps(
            port.sink.packets, window_s=0.02, flows=["C", "D"], skip_first_windows=1
        )
        assert right_rate <= FIG4_RIGHT_RATE_BPS * 1.15
        # And Left picks up the remaining capacity (work conservation at the
        # root is preserved for unshaped classes).
        left_bytes = sum(p.length for p in port.sink.packets if p.flow in "AB")
        right_bytes = sum(p.length for p in port.sink.packets if p.flow in "CD")
        assert left_bytes > right_bytes * 3

    def test_increasing_offered_load_does_not_increase_right_throughput(self):
        def right_rate(offered_per_flow_bps):
            sim = Simulator()
            scheduler = ProgrammableScheduler(build_fig4_tree())
            port = OutputPort(sim, scheduler, rate_bps=100e6)
            duration = 0.1
            streams = [
                cbr_arrivals(FlowSpec(name=f, rate_bps=offered_per_flow_bps,
                                      packet_size=1500), duration)
                for f in ("C", "D")
            ]
            PacketSource(sim, port, merge_arrivals(*streams))
            sim.run(until=duration)
            return port.sink.throughput_bps(start=0.02, end=duration)

        low_load = right_rate(10e6)
        high_load = right_rate(40e6)
        assert high_load <= low_load * 1.2
        assert high_load <= FIG4_RIGHT_RATE_BPS * 1.3
