"""Pluggable PIFO backend layer: protocol, registry and factory.

The paper's thesis is that *one* PIFO primitive can express every scheduling
algorithm; this module makes the primitive's *storage* a first-class,
swappable subsystem so the same algorithm can run on the reference sorted
list, a heap calendar, or an integer-rank bucket queue — and so new storage
experiments (software sharding, SIMD sort, an FFI kernel) can slot in
without touching any scheduler, simulator, switch or hardware code.

Every layer of the stack accepts a *backend spec*:

* ``None`` — the default backend (:data:`DEFAULT_BACKEND`);
* a registry name: ``"sorted"`` (alias ``"list"``), ``"calendar"``
  (alias ``"heap"``), ``"bucketed"`` (alias ``"bucket"``), ``"quantized"``
  (alias ``"quantized_bucket"`` — the bucket queue with real-valued ranks
  quantised to integer slots);
* a backend class (anything implementing :class:`PIFOBackend`), or a
  zero-config callable ``f(capacity=..., name=...)`` returning one.

The spec threads through :class:`~repro.core.tree.TreeNode` /
:class:`~repro.core.tree.ScheduleTree`,
:class:`~repro.core.scheduler.ProgrammableScheduler`, the simulator's
:class:`~repro.sim.link.OutputPort`, the
:class:`~repro.switch.switch.SharedMemorySwitch`, the hardware
:class:`~repro.hardware.pifo_block.PIFOBlock` and every tree builder in
:mod:`repro.algorithms`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Type, Union, runtime_checkable

from .pifo import (
    BucketedPIFO,
    CalendarPIFO,
    PIFOBase,
    PIFOEntry,
    QuantizedBucketedPIFO,
    Rank,
    SortedListPIFO,
)


@runtime_checkable
class PIFOBackend(Protocol):
    """Structural interface every PIFO backend implements.

    Matches :class:`~repro.core.pifo.PIFOBase`; third-party backends only
    need to satisfy this protocol (they do not have to subclass
    ``PIFOBase``, although that is the easy way to stay equivalent).
    """

    capacity: Optional[int]
    name: str
    pushes: int
    pops: int
    drops: int

    def push(self, element, rank: Rank) -> None: ...
    def pop(self): ...
    def pop_entry(self) -> PIFOEntry: ...
    def peek(self): ...
    def peek_rank(self) -> Rank: ...
    def peek_entry(self) -> PIFOEntry: ...
    def enqueue_many(self, items) -> int: ...
    def drain(self) -> list: ...
    def entries(self) -> list: ...
    def ranks(self) -> list: ...
    def remove(self, predicate) -> list: ...
    def clear(self) -> None: ...
    def __len__(self) -> int: ...

    @property
    def is_empty(self) -> bool: ...


#: Spec accepted everywhere a backend can be chosen.
BackendSpec = Union[None, str, Type, Callable[..., "PIFOBackend"]]

#: Name -> class registry.  Aliases map to the same class.
PIFO_BACKENDS: Dict[str, Type[PIFOBase]] = {
    "sorted": SortedListPIFO,
    "list": SortedListPIFO,
    "calendar": CalendarPIFO,
    "heap": CalendarPIFO,
    "bucketed": BucketedPIFO,
    "bucket": BucketedPIFO,
    "quantized": QuantizedBucketedPIFO,
    "quantized_bucket": QuantizedBucketedPIFO,
}

#: Backend used when a spec is ``None``.
DEFAULT_BACKEND = "sorted"


def available_backends() -> List[str]:
    """Canonical (alias-free) registry names, sorted."""
    return sorted({cls.backend_name for cls in PIFO_BACKENDS.values()})


def register_backend(name: str, cls: Type[PIFOBase]) -> None:
    """Add a backend class to the registry under ``name`` (lower-cased)."""
    if not callable(cls):
        raise TypeError(f"backend {name!r} must be a class or factory, got {cls!r}")
    PIFO_BACKENDS[name.lower()] = cls


def resolve_backend(backend: BackendSpec = None) -> Callable[..., PIFOBackend]:
    """Turn a backend spec into a factory ``f(capacity=..., name=...)``.

    Raises ``ValueError`` for unknown registry names and ``TypeError`` for
    specs that are neither a name, a class, nor a callable.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, str):
        try:
            return PIFO_BACKENDS[backend.lower()]
        except KeyError:
            raise ValueError(
                f"unknown PIFO backend {backend!r}; available: {available_backends()}"
            ) from None
    if callable(backend):
        return backend
    raise TypeError(
        f"backend spec must be None, a name, a class or a factory, got {backend!r}"
    )


def make_pifo(
    backend: BackendSpec = None,
    capacity: Optional[int] = None,
    name: str = "pifo",
) -> PIFOBackend:
    """Create a PIFO using the given backend spec.

    This is the single construction point the tree, scheduler, simulator,
    switch and hardware layers all go through.
    """
    return resolve_backend(backend)(capacity=capacity, name=name)


def backend_name(pifo: PIFOBackend) -> str:
    """Registry name of a PIFO instance's backend (class name otherwise)."""
    return getattr(pifo, "backend_name", type(pifo).__name__)


def backend_requires_integer_ranks(backend: BackendSpec) -> bool:
    """Whether a spec resolves to an integer-rank-only backend.

    Used by :class:`~repro.core.tree.TreeNode` to keep *shaping* PIFOs —
    whose ranks are wall-clock send times, i.e. floats — off bucket-queue
    backends even when the tree's scheduling PIFOs use one.
    """
    factory = resolve_backend(backend)
    return bool(getattr(factory, "requires_integer_ranks", False))
