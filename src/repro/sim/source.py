"""Traffic sources: feed arrival streams into an output port.

A source pulls ``(time, packet)`` pairs from an iterator (typically built by
:mod:`repro.traffic.generators`) and schedules each arrival in the
simulator.  Arrivals are scheduled lazily — one event in flight per source —
so even very long workloads do not pre-materialise the whole event list.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Tuple

from ..core.packet import Packet
from ..exceptions import TrafficError
from .simulator import Simulator


class PacketSource:
    """Replays an arrival stream into a destination port.

    Parameters
    ----------
    sim:
        The simulator.
    destination:
        Any object with a ``receive(packet)`` method (usually an
        :class:`~repro.sim.link.OutputPort`).
    arrivals:
        Iterable of ``(time, packet)`` pairs in non-decreasing time order.
    name:
        Label for debugging.
    """

    def __init__(
        self,
        sim: Simulator,
        destination,
        arrivals: Iterable[Tuple[float, Packet]],
        name: str = "source",
    ) -> None:
        self.sim = sim
        self.destination = destination
        self.name = name
        self._iterator: Iterator[Tuple[float, Packet]] = iter(arrivals)
        self.generated_packets = 0
        self._last_time = -1.0
        self._pending = None
        self._schedule_next()

    def _schedule_next(self) -> None:
        try:
            time, packet = next(self._iterator)
        except StopIteration:
            self._pending = None
            return
        if time < self._last_time - 1e-12:
            raise TrafficError(
                f"source {self.name!r} produced arrivals out of order "
                f"({time} after {self._last_time})"
            )
        self._last_time = time
        self._pending = self.sim.schedule_at(
            time, lambda t=time, p=packet: self._emit(p),
            name=f"{self.name}.arrival",
        )

    def _emit(self, packet: Packet) -> None:
        self.generated_packets += 1
        self.destination.receive(packet)
        self._schedule_next()

    def stop(self) -> None:
        """Cancel any not-yet-emitted arrival and drop the rest of the stream.

        Used by the fabric's drain phase so "finish the packets in flight"
        does not mean "replay the remainder of an arrival stream"."""
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._iterator = iter(())


def chain_hops(
    sim: Simulator,
    upstream_port,
    downstream_port,
    transform: Optional[Callable[[Packet], Packet]] = None,
    propagation_delay: float = 0.0,
) -> None:
    """Connect two ports so packets leaving the first enter the second.

    ``transform`` may modify or replace the packet between hops (the LSTF
    experiment uses it to stamp the previous hop's wait time); a propagation
    delay can model the wire between switches.
    """

    def _forward(packet: Packet) -> None:
        forwarded = transform(packet) if transform is not None else packet
        if propagation_delay > 0:
            sim.schedule(propagation_delay, lambda p=forwarded: downstream_port.receive(p))
        else:
            downstream_port.receive(forwarded)

    previous = upstream_port.on_departure

    def _combined(packet: Packet) -> None:
        if previous is not None:
            previous(packet)
        _forward(packet)

    upstream_port.on_departure = _combined
