"""Tests for FIFO, arrival-sequence and strict-priority transactions."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    ArrivalSequenceTransaction,
    ClassPriorityTransaction,
    FIFOTransaction,
    StrictPriorityTransaction,
)
from repro.core import Packet, ProgrammableScheduler, TransactionContext, single_node_tree


class TestFIFO:
    def test_rank_is_arrival_time(self):
        txn = FIFOTransaction()
        assert txn(Packet(flow="A", length=10), TransactionContext(now=3.5)) == 3.5

    def test_fifo_order_across_flows(self):
        scheduler = ProgrammableScheduler(single_node_tree(FIFOTransaction()))
        packets = [Packet(flow=f, length=100) for f in "ABCBA"]
        for i, packet in enumerate(packets):
            scheduler.enqueue(packet, now=float(i))
        assert scheduler.drain() == packets

    def test_same_instant_preserves_enqueue_order(self):
        scheduler = ProgrammableScheduler(single_node_tree(FIFOTransaction()))
        packets = [Packet(flow="A", length=100) for _ in range(5)]
        for packet in packets:
            scheduler.enqueue(packet, now=0.0)
        assert scheduler.drain() == packets


class TestArrivalSequence:
    def test_counter_increments(self):
        txn = ArrivalSequenceTransaction()
        ranks = [txn(Packet(flow="A", length=1), TransactionContext()) for _ in range(3)]
        assert ranks == [0, 1, 2]

    def test_reset_restarts_counter(self):
        txn = ArrivalSequenceTransaction()
        txn(Packet(flow="A", length=1), TransactionContext())
        txn.reset()
        assert txn(Packet(flow="A", length=1), TransactionContext()) == 0


class TestStrictPriority:
    def test_rank_is_priority_field(self):
        txn = StrictPriorityTransaction()
        assert txn(Packet(flow="A", length=10, priority=3), TransactionContext()) == 3

    def test_lower_priority_value_dequeues_first(self):
        scheduler = ProgrammableScheduler(single_node_tree(StrictPriorityTransaction()))
        low = Packet(flow="bulk", length=100, priority=7)
        high = Packet(flow="control", length=100, priority=0)
        scheduler.enqueue(low)
        scheduler.enqueue(high)
        assert scheduler.dequeue() is high
        assert scheduler.dequeue() is low

    def test_fifo_within_priority_level(self):
        scheduler = ProgrammableScheduler(single_node_tree(StrictPriorityTransaction()))
        packets = [Packet(flow=f"p{i}", length=100, priority=1) for i in range(4)]
        for packet in packets:
            scheduler.enqueue(packet)
        assert scheduler.drain() == packets

    def test_starvation_of_low_priority(self):
        """Strict priority serves all high-priority traffic first - the very
        behaviour motivating the minimum-rate guarantee tree."""
        scheduler = ProgrammableScheduler(single_node_tree(StrictPriorityTransaction()))
        for _ in range(5):
            scheduler.enqueue(Packet(flow="low", length=100, priority=1))
            scheduler.enqueue(Packet(flow="high", length=100, priority=0))
        order = [p.flow for p in scheduler.drain()]
        assert order[:5] == ["high"] * 5
        assert order[5:] == ["low"] * 5


class TestClassPriority:
    def test_lookup_by_element_flow(self):
        txn = ClassPriorityTransaction({"gold": 0, "silver": 1})
        rank = txn(
            Packet(flow="x", length=10),
            TransactionContext(element_flow="silver"),
        )
        assert rank == 1

    def test_default_priority_used_for_unknown_class(self):
        txn = ClassPriorityTransaction({"gold": 0}, default_priority=9)
        rank = txn(Packet(flow="x", length=10), TransactionContext(element_flow="bronze"))
        assert rank == 9

    def test_unknown_class_without_default_raises(self):
        txn = ClassPriorityTransaction({"gold": 0})
        with pytest.raises(KeyError):
            txn(Packet(flow="x", length=10), TransactionContext(element_flow="bronze"))
