"""Unit contract of the metrics registry (repro.obs.metrics).

The registry's promises: get-or-create instruments with kind safety,
fixed-bucket histograms with an inclusive-upper-bound layout, lazy
callbacks and global sources folded into deterministic snapshots, and a
module-level enable/disable fast path that components capture once at
construction time.
"""

from __future__ import annotations

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_counts,
)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == {"c": 5}

    def test_gauge_tracks_high_water(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(7.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.max_value == 7.0
        assert gauge.snapshot() == {"g": 2.0, "g.max": 7.0}


class TestHistogramBucketing:
    def test_value_on_bound_lands_in_that_bucket(self):
        # Upper bounds are inclusive: observe(b) belongs to bucket b.
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe(1.0)
        hist.observe(2.0)
        hist.observe(4.0)
        assert [count for _, count in hist.bucket_counts()] == [1, 1, 1, 0]

    def test_below_first_and_above_last(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(-5.0)   # below everything -> first bucket
        hist.observe(0.5)
        hist.observe(100.0)  # above the last bound -> overflow bucket
        bounds = [bound for bound, _ in hist.bucket_counts()]
        counts = [count for _, count in hist.bucket_counts()]
        assert bounds == [1.0, 2.0, float("inf")]
        assert counts == [2, 0, 1]

    def test_sum_count_min_max_mean(self):
        hist = Histogram("h", buckets=(10.0,))
        for value in (1.0, 3.0, 8.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(12.0)
        assert hist.mean == pytest.approx(4.0)
        assert hist.min == 1.0
        assert hist.max == 8.0
        snap = hist.snapshot()
        assert snap["h.count"] == 3
        assert snap["h.min"] == 1.0
        assert snap["h.max"] == 8.0

    def test_empty_histogram_has_no_min_max(self):
        hist = Histogram("h", buckets=(1.0,))
        snap = hist.snapshot()
        assert snap["h.count"] == 0
        assert snap["h.mean"] == 0.0
        assert "h.min" not in snap and "h.max" not in snap

    def test_bounds_must_ascend_and_be_nonempty(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_sorted_and_numeric_only(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.level").set(1.0)
        registry.register_callback(
            "cb", lambda: {"num": 3, "text": "dropped", "also": 1.5})
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["b.count"] == 2
        assert snap["cb.num"] == 3
        assert snap["cb.also"] == 1.5
        assert "cb.text" not in snap

    def test_broken_callback_is_swallowed(self):
        registry = MetricsRegistry()
        registry.counter("ok").inc()

        def boom():
            raise RuntimeError("broken source")

        registry.register_callback("bad", boom)
        assert registry.snapshot()["ok"] == 1

    def test_callbacks_are_lazy(self):
        registry = MetricsRegistry()
        calls = []
        registry.register_callback("lazy", lambda: calls.append(1) or {})
        assert calls == []
        registry.snapshot()
        assert calls == [1]

    def test_histograms_accessor(self):
        registry = MetricsRegistry()
        registry.counter("c")
        hist = registry.histogram("h", buckets=(1.0,))
        assert registry.histograms() == {"h": hist}


class TestModuleFastPath:
    def test_disabled_by_default_in_tests(self):
        assert metrics.active() is None
        assert not metrics.is_enabled()

    def test_collecting_restores_previous_state(self):
        assert metrics.active() is None
        with metrics.collecting() as registry:
            assert metrics.active() is registry
            inner = MetricsRegistry()
            with metrics.collecting(inner):
                assert metrics.active() is inner
            assert metrics.active() is registry
        assert metrics.active() is None

    def test_collecting_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with metrics.collecting():
                raise RuntimeError("boom")
        assert metrics.active() is None

    def test_global_sources_fold_into_every_snapshot(self):
        metrics.register_global_source("testsrc", lambda: {"hits": 7})
        try:
            assert metrics.global_sources_snapshot()["testsrc.hits"] == 7
            with metrics.collecting() as registry:
                assert registry.snapshot()["testsrc.hits"] == 7
        finally:
            metrics._global_sources.pop("testsrc", None)

    def test_kernel_cache_is_a_registered_global_source(self):
        # repro.lang.treekernel registers itself on import.
        import repro.lang.treekernel  # noqa: F401

        snap = metrics.global_sources_snapshot()
        assert "lang.kernel_cache.hits" in snap
        assert "lang.kernel_cache.installs" in snap


class TestMergeCounts:
    def test_sums_keywise_and_skips_non_numeric(self):
        merged = merge_counts([
            {"hits": 2, "misses": 1, "label": "a"},
            {"hits": 3, "installs": 4},
        ])
        assert merged == {"hits": 5, "misses": 1, "installs": 4}

    def test_empty(self):
        assert merge_counts([]) == {}
