"""Cross-run workload memoisation: byte-identical stores, bounded memory.

The cache's contract is invisibility: a campaign executed with workload
memoisation produces a result store byte-identical (modulo
:data:`~repro.campaign.store.TIMING_FIELDS`) to one that rebuilds every
workload from scratch.  Plus the mechanics: paired runs hit the cache,
the LRU stays bounded, replays never share mutable packet state, and
faulted scenarios keep rebuilding their topology.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    Campaign,
    CampaignRunner,
    ResultStore,
    WorkloadCache,
    execute_spec,
    strip_timing,
)
from repro.campaign.workload_cache import CACHE_ENV, active_cache, reset_cache
from repro.net import get_scenario


def cache_probe_campaign() -> Campaign:
    """fig6 across two backends + a replicate: 2 workloads, 4 paired runs."""
    return Campaign(
        name="workload_cache_probe",
        title="cache identity probe",
        scenarios=["fig6_chain"],
        pifo_backends=["sorted", "calendar"],
        replicates=2,
    )


def canonical(records):
    return [json.dumps(strip_timing(r), sort_keys=True) for r in records]


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_cache()
    yield
    reset_cache()


class TestStoreIdentity:
    def test_cached_store_identical_to_uncached(self, tmp_path, monkeypatch):
        campaign = cache_probe_campaign()

        monkeypatch.setenv(CACHE_ENV, "off")
        reset_cache()
        cold = ResultStore(tmp_path / "cold.jsonl")
        CampaignRunner(campaign, cold, workers=1, quick=True).run()

        monkeypatch.delenv(CACHE_ENV)
        reset_cache()
        warm = ResultStore(tmp_path / "warm.jsonl")
        CampaignRunner(campaign, warm, workers=1, quick=True).run()

        cache = active_cache()
        assert cache is not None and cache.hits > 0, \
            "warm pass never hit the cache — the probe is vacuous"
        assert canonical(warm.load()) == canonical(cold.load())

    def test_execute_spec_pure_across_cache_states(self, monkeypatch):
        spec = cache_probe_campaign().expand(quick=True)[0]
        monkeypatch.setenv(CACHE_ENV, "off")
        reset_cache()
        cold = strip_timing(execute_spec(spec))
        monkeypatch.delenv(CACHE_ENV)
        reset_cache()
        first = strip_timing(execute_spec(spec))
        replay = strip_timing(execute_spec(spec))  # cache hit
        assert first == cold
        assert replay == cold


class TestCacheMechanics:
    def test_paired_runs_share_one_workload(self):
        campaign = cache_probe_campaign()
        cache = WorkloadCache()
        scenario = get_scenario("fig6_chain")
        for spec in campaign.expand(quick=True):
            scenario.run(quick=True, variant=spec.variant,
                         pifo_backend=spec.pifo_backend,
                         base_seed=spec.seed, telemetry=False,
                         workload_cache=cache)
        # 2 replicates x 1 scenario = 2 distinct workloads; every other
        # run (2 backends x variants) replays one of them.
        assert cache.info()["workloads"] == 2
        assert cache.misses == 2
        assert cache.hits > 0

    def test_lru_bound_holds(self):
        cache = WorkloadCache(capacity=2)
        scenario = get_scenario("fig6_chain")
        for seed in range(5):
            cache.arrivals_for(scenario, duration=0.01, base_seed=seed,
                               load_scale=1.0)
        assert cache.info()["workloads"] == 2
        assert cache.misses == 5

    def test_replays_do_not_share_packet_state(self):
        cache = WorkloadCache()
        scenario = get_scenario("fig6_chain")
        protos = cache.arrivals_for(scenario, duration=0.01, base_seed=7,
                                    load_scale=1.0)
        host = next(iter(protos))
        first = [p for _, p in cache.replay(protos[host])]
        for packet in first:
            packet.set("prev_wait_time", 123.0)  # simulate in-run mutation
        second = [p for _, p in cache.replay(protos[host])]
        assert first and len(first) == len(second)
        for a, b in zip(first, second):
            assert b is not a
            assert "prev_wait_time" not in b.fields
            assert a.flow == b.flow and a.length == b.length

    def test_fault_scenarios_rebuild_topology(self):
        cache = WorkloadCache()
        faulted = get_scenario("chain_flap")
        assert faulted.fault_plan is not None
        assert cache.topology_for(faulted) is not cache.topology_for(faulted)
        clean = get_scenario("fig6_chain")
        assert cache.topology_for(clean) is cache.topology_for(clean)

    def test_faulted_campaign_store_identical(self, tmp_path, monkeypatch):
        campaign = Campaign(
            name="faulted_cache_probe",
            title="cache identity under fault plans",
            scenarios=["chain_flap"],
            pifo_backends=["sorted", "calendar"],
        )
        monkeypatch.setenv(CACHE_ENV, "off")
        reset_cache()
        cold = ResultStore(tmp_path / "cold.jsonl")
        CampaignRunner(campaign, cold, workers=1, quick=True).run()
        monkeypatch.delenv(CACHE_ENV)
        reset_cache()
        warm = ResultStore(tmp_path / "warm.jsonl")
        CampaignRunner(campaign, warm, workers=1, quick=True).run()
        assert canonical(warm.load()) == canonical(cold.load())
