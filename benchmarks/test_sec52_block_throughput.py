"""Section 5.2 — PIFO block performance model.

Regenerates the operational claims of the block design: one enqueue plus one
dequeue per clock cycle is sustainable indefinitely; dequeues from the same
logical PIFO are limited to once every 3 cycles, which still exceeds what a
100 Gbit/s port needs (one packet per 5 cycles at 64-byte packets); and the
Python model's absolute throughput (operations/second) for sizing
simulations.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.hardware import PIFOBlock, SAME_PIFO_DEQUEUE_INTERVAL


def test_sec52_full_rate_enqueue_dequeue_per_cycle(benchmark):
    def run(cycles=5000):
        block = PIFOBlock(strict_timing=True, logical_pifo_count=16)
        refusals = 0
        for cycle in range(cycles):
            pifo = cycle % 16
            if not block.enqueue(pifo, rank=float(cycle), flow=f"f{cycle % 64}",
                                 metadata=cycle, cycle=cycle):
                refusals += 1
            if cycle >= 16:
                if block.dequeue((cycle - 16) % 16, cycle=cycle) is None:
                    refusals += 1
        return refusals, block

    refusals, block = benchmark(run)
    report(
        "Section 5.2: strict-timing full-rate operation",
        [{"cycles": 5000, "refused_operations": refusals,
          "enqueues": block.stats.enqueues, "dequeues": block.stats.dequeues}],
    )
    assert refusals == 0


def test_sec52_same_pifo_dequeue_spacing_supports_100g(benchmark):
    """A dequeue from one logical PIFO every 3 cycles sustains more than the
    one-packet-per-5-cycles a 100 Gbit/s port needs at 64-byte packets."""
    def run(cycles=3000):
        block = PIFOBlock(strict_timing=True)
        for i in range(1200):
            block.enqueue(0, rank=float(i), flow=f"f{i % 1000}", metadata=i, cycle=None)
        served = 0
        for cycle in range(cycles):
            if block.dequeue(0, cycle=cycle) is not None:
                served += 1
        return served

    served = benchmark(run)
    cycles = 3000
    packets_needed_100g = cycles / 5  # one packet per 5 cycles
    report(
        "Section 5.2: same-logical-PIFO dequeue rate vs 100 Gbit/s requirement",
        [
            {
                "cycles": cycles,
                "dequeues_served": served,
                "interval_cycles": SAME_PIFO_DEQUEUE_INTERVAL,
                "needed_for_100G": packets_needed_100g,
            }
        ],
    )
    assert served == pytest.approx(cycles / SAME_PIFO_DEQUEUE_INTERVAL, abs=1)
    assert served >= packets_needed_100g


def test_sec52_python_model_throughput(benchmark):
    """Raw enqueue+dequeue throughput of the behavioural block model (no
    cycle bookkeeping) — useful for sizing large simulations."""
    def run(operations=2000):
        block = PIFOBlock()
        for i in range(operations):
            block.enqueue(0, rank=float(i % 97), flow=f"f{i % 50}", metadata=i)
        drained = 0
        while block.dequeue(0) is not None:
            drained += 1
        return drained

    drained = benchmark(run)
    assert drained == 2000
