"""Network topologies: hosts, switches and links as a directed graph.

A :class:`Network` is pure description — no simulator state.  Nodes are
:class:`Host` and :class:`SwitchNode` objects; edges are :class:`Link`
objects with a line rate and a propagation delay.  ``add_link`` installs
both directions by default (full-duplex), each direction being its own
:class:`Link` so asymmetric rates are expressible.

The fabric layer (:mod:`repro.net.fabric`) instantiates simulation objects
from a :class:`Network`; the routing pass (:mod:`repro.net.routing`)
computes next hops over it.  Builders for the three standard evaluation
shapes — :func:`linear_chain`, :func:`dumbbell`, :func:`leaf_spine` — live
at the bottom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..exceptions import TopologyError

#: Default link speed for builders: the paper's per-port line rate scaled
#: down so behavioural experiments congest quickly.
DEFAULT_LINK_RATE_BPS = 10e6


@dataclass(frozen=True)
class Host:
    """An end host: injects traffic and terminates it.  No forwarding."""

    name: str
    kind: str = field(default="host", init=False)


@dataclass(frozen=True)
class SwitchNode:
    """A switch: forwards between its links through per-port schedulers."""

    name: str
    kind: str = field(default="switch", init=False)


@dataclass(frozen=True)
class Link:
    """One direction of a wire: ``src -> dst`` at ``rate_bps`` with latency."""

    src: str
    dst: str
    rate_bps: float
    propagation_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise TopologyError(f"link {self.src}->{self.dst}: rate must be positive")
        if self.propagation_delay < 0:
            raise TopologyError(
                f"link {self.src}->{self.dst}: propagation delay must be >= 0"
            )


class Network:
    """A named graph of hosts and switches joined by directed links."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self.nodes: Dict[str, object] = {}
        #: Directed adjacency: src -> dst -> Link.
        self.links: Dict[str, Dict[str, Link]] = {}

    # -- construction ------------------------------------------------------
    def _add_node(self, node) -> None:
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self.links[node.name] = {}

    def add_host(self, name: str) -> Host:
        host = Host(name)
        self._add_node(host)
        return host

    def add_switch(self, name: str) -> SwitchNode:
        switch = SwitchNode(name)
        self._add_node(switch)
        return switch

    def add_link(
        self,
        src: str,
        dst: str,
        rate_bps: float = DEFAULT_LINK_RATE_BPS,
        propagation_delay: float = 0.0,
        bidirectional: bool = True,
    ) -> Link:
        """Join two nodes; installs the reverse direction too by default."""
        for endpoint in (src, dst):
            if endpoint not in self.nodes:
                raise TopologyError(f"link references unknown node {endpoint!r}")
        if src == dst:
            raise TopologyError(f"self-link on {src!r}")
        if dst in self.links[src]:
            raise TopologyError(f"duplicate link {src!r}->{dst!r}")
        link = Link(src, dst, rate_bps, propagation_delay)
        self.links[src][dst] = link
        if bidirectional and src not in self.links[dst]:
            self.links[dst][src] = Link(dst, src, rate_bps, propagation_delay)
        return link

    # -- queries -----------------------------------------------------------
    def hosts(self) -> List[str]:
        return sorted(n for n, node in self.nodes.items() if node.kind == "host")

    def switches(self) -> List[str]:
        return sorted(n for n, node in self.nodes.items() if node.kind == "switch")

    def is_host(self, name: str) -> bool:
        return self.node(name).kind == "host"

    def node(self, name: str):
        try:
            return self.nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def neighbors(self, name: str) -> List[str]:
        """Downstream neighbours of a node, sorted for determinism."""
        self.node(name)
        return sorted(self.links[name])

    def link(self, src: str, dst: str) -> Link:
        try:
            return self.links[src][dst]
        except KeyError:
            raise TopologyError(f"no link {src!r}->{dst!r}") from None

    def iter_links(self) -> Iterator[Link]:
        for src in sorted(self.links):
            for dst in sorted(self.links[src]):
                yield self.links[src][dst]

    def validate(self) -> None:
        """Check the network is usable: every host attached, graph connected."""
        if not self.hosts():
            raise TopologyError(f"network {self.name!r} has no hosts")
        for host in self.hosts():
            if not self.links[host]:
                raise TopologyError(f"host {host!r} has no links")
        unreached = set(self.nodes) - self._reachable(next(iter(sorted(self.nodes))))
        if unreached:
            raise TopologyError(
                f"network {self.name!r} is disconnected: cannot reach "
                f"{sorted(unreached)}"
            )

    def _reachable(self, start: str) -> set:
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in self.links[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network(name={self.name!r}, hosts={len(self.hosts())}, "
            f"switches={len(self.switches())})"
        )


# --------------------------------------------------------------------------- #
# Builders                                                                     #
# --------------------------------------------------------------------------- #
def linear_chain(
    num_switches: int = 3,
    link_rate_bps: float = DEFAULT_LINK_RATE_BPS,
    host_rate_bps: Optional[float] = None,
    propagation_delay: float = 0.0,
    cross_hosts: bool = False,
) -> Network:
    """``h_src - s1 - s2 - ... - sN - h_dst``: the multi-hop delay topology.

    With ``cross_hosts=True`` every switch additionally gets one local host
    ``c1..cN`` so cross traffic can be injected at (or drained from) each
    hop — the setup the multi-hop LSTF experiment needs.
    Host access links default to the switch-to-switch rate.
    """
    if num_switches < 1:
        raise TopologyError("a chain needs at least one switch")
    host_rate = host_rate_bps if host_rate_bps is not None else link_rate_bps
    net = Network(name=f"chain{num_switches}")
    net.add_host("h_src")
    net.add_host("h_dst")
    switches = [f"s{i + 1}" for i in range(num_switches)]
    for name in switches:
        net.add_switch(name)
    net.add_link("h_src", switches[0], host_rate, propagation_delay)
    for left, right in zip(switches, switches[1:]):
        net.add_link(left, right, link_rate_bps, propagation_delay)
    net.add_link(switches[-1], "h_dst", link_rate_bps, propagation_delay)
    if cross_hosts:
        for index, name in enumerate(switches):
            cross = f"c{index + 1}"
            net.add_host(cross)
            net.add_link(cross, name, host_rate, propagation_delay)
    return net


def dumbbell(
    hosts_per_side: int = 2,
    access_rate_bps: float = DEFAULT_LINK_RATE_BPS,
    bottleneck_rate_bps: Optional[float] = None,
    propagation_delay: float = 0.0,
) -> Network:
    """Classic congestion topology: N senders, one bottleneck, N receivers.

    Hosts ``l0..l{N-1}`` hang off switch ``s_left``; hosts ``r0..r{N-1}``
    hang off ``s_right``; the middle link is the (usually slower)
    bottleneck.
    """
    if hosts_per_side < 1:
        raise TopologyError("dumbbell needs at least one host per side")
    bottleneck = (bottleneck_rate_bps if bottleneck_rate_bps is not None
                  else access_rate_bps)
    net = Network(name=f"dumbbell{hosts_per_side}")
    net.add_switch("s_left")
    net.add_switch("s_right")
    net.add_link("s_left", "s_right", bottleneck, propagation_delay)
    for index in range(hosts_per_side):
        left, right = f"l{index}", f"r{index}"
        net.add_host(left)
        net.add_host(right)
        net.add_link(left, "s_left", access_rate_bps, propagation_delay)
        net.add_link(right, "s_right", access_rate_bps, propagation_delay)
    return net


def leaf_spine(
    leaves: int = 4,
    spines: int = 2,
    hosts_per_leaf: int = 2,
    host_rate_bps: float = DEFAULT_LINK_RATE_BPS,
    fabric_rate_bps: Optional[float] = None,
    propagation_delay: float = 0.0,
) -> Network:
    """Two-tier Clos fabric: every leaf connects to every spine.

    Hosts ``h{leaf}_{index}`` hang off leaf ``leaf{leaf}``; leaf-to-spine
    links default to the host access rate (so the fabric, not the access
    link, is the bottleneck under incast).  Cross-leaf paths are two hops of
    switching (leaf -> spine -> leaf) with ``spines``-way ECMP.
    """
    if leaves < 2 or spines < 1 or hosts_per_leaf < 1:
        raise TopologyError("leaf_spine needs >=2 leaves, >=1 spine, >=1 host/leaf")
    fabric_rate = (fabric_rate_bps if fabric_rate_bps is not None
                   else host_rate_bps)
    net = Network(name=f"leafspine{leaves}x{spines}")
    spine_names = [f"spine{i}" for i in range(spines)]
    for name in spine_names:
        net.add_switch(name)
    for leaf in range(leaves):
        leaf_name = f"leaf{leaf}"
        net.add_switch(leaf_name)
        for spine in spine_names:
            net.add_link(leaf_name, spine, fabric_rate, propagation_delay)
        for index in range(hosts_per_leaf):
            host = f"h{leaf}_{index}"
            net.add_host(host)
            net.add_link(host, leaf_name, host_rate_bps, propagation_delay)
    return net
