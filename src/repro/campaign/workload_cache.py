"""Cross-run workload memoisation for campaign workers.

A campaign's run table deliberately reuses workloads: runs that differ
only in scheduler variant, PIFO backend or lang backend share a
``workload_id`` (and therefore a derived seed), so they replay the
*identical* arrival stream — that is what makes them paired comparisons.
Serially, every such run still pays to rebuild the stream from scratch:
topology construction, RNG-driven generator machinery, and one
:class:`~repro.core.packet.Packet` allocation per arrival.

This module memoises that work inside the executing process (each warm
engine worker holds its own cache instance, as does a serial runner): the
first run of a workload materialises every demand's arrivals into plain
tuples, and subsequent runs *replay* them — fresh ``Packet`` objects
stamped from the recorded prototypes, in the recorded order — without
touching the generators at all.  Replays are observably identical to a
rebuild by construction: the prototype captures exactly the constructor
arguments the generators used, and per-packet metadata dicts are copied
per replay so in-run mutation (LSTF stamps, SRPT remaining-size updates)
never leaks between runs.

The cache is a bounded LRU keyed on ``(scenario, duration, seed,
load_scale)`` — the same factor levels that define ``workload_id`` plus
the quick/full duration switch.  Topologies are cached per scenario and
shared across runs *only* for fault-free scenarios: a
:class:`~repro.net.faults.FaultPlan` mutates the network mid-run, so
faulted scenarios rebuild their topology every time (their arrivals are
still memoised — traffic is independent of the fault schedule).

``REPRO_WORKLOAD_CACHE=off`` (or ``0``) disables memoisation entirely;
the lockstep suite runs the same campaign both ways and asserts the
stores are byte-identical modulo timing fields.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.packet import Packet

#: Environment kill-switch. ``off``/``0``/``false`` disable the cache.
CACHE_ENV = "REPRO_WORKLOAD_CACHE"

#: Workload entries kept per cache.  A campaign sweeping substrate factors
#: revisits the same few workloads many times; entries beyond this are
#: evicted least-recently-used to bound memory on wide load/replicate
#: sweeps.
DEFAULT_CAPACITY = 8

#: One materialised arrival: the packet prototype as plain data —
#: ``(time, flow, length, packet_class, priority, fields, src, dst)``
#: where ``fields`` is ``None`` or a dict copied per replay.
ArrivalProto = Tuple[float, str, int, Optional[str], int,
                     Optional[dict], Optional[str], Optional[str]]


def cache_enabled() -> bool:
    return os.environ.get(CACHE_ENV, "").strip().lower() not in (
        "off", "0", "false", "no")


class WorkloadCache:
    """Bounded LRU of materialised campaign workloads."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: key -> {host: [ArrivalProto, ...]}
        self._arrivals: "OrderedDict[tuple, Dict[str, List[ArrivalProto]]]" \
            = OrderedDict()
        #: scenario name -> cached Network (fault-free scenarios only).
        self._topologies: Dict[str, object] = {}
        self.hits = 0
        self.misses = 0

    # -- arrivals ----------------------------------------------------------
    def arrivals_for(self, scenario, duration: float, base_seed: int,
                     load_scale: float) -> Dict[str, List[ArrivalProto]]:
        """Materialised per-host arrivals for one workload (cached)."""
        key = (scenario.name, duration, base_seed, load_scale)
        cached = self._arrivals.get(key)
        if cached is not None:
            self.hits += 1
            self._arrivals.move_to_end(key)
            return cached
        self.misses += 1
        built = self._materialise(scenario, duration, base_seed, load_scale)
        self._arrivals[key] = built
        while len(self._arrivals) > self.capacity:
            self._arrivals.popitem(last=False)
        return built

    @staticmethod
    def _materialise(scenario, duration: float, base_seed: int,
                     load_scale: float) -> Dict[str, List[ArrivalProto]]:
        """Run every demand's generator once; record packet prototypes.

        Mirrors the per-host grouping and ``lazy_merge_arrivals`` order of
        :meth:`~repro.net.scenario.Scenario.run`: streams are merged here,
        at build time, so a replay is a single pre-sorted list per host.
        """
        from ..traffic.generators import lazy_merge_arrivals

        by_host: Dict[str, list] = {}
        for demand in scenario.demands:
            by_host.setdefault(demand.src, []).append(
                demand.build_arrivals(duration, base_seed=base_seed,
                                      load_scale=load_scale)
            )
        materialised: Dict[str, List[ArrivalProto]] = {}
        for host, streams in by_host.items():
            protos: List[ArrivalProto] = []
            for time, packet in lazy_merge_arrivals(*streams):
                fields = packet.fields
                protos.append((
                    time, packet.flow, packet.length, packet.packet_class,
                    packet.priority, dict(fields) if fields else None,
                    packet.src, packet.dst,
                ))
            materialised[host] = protos
        return materialised

    @staticmethod
    def replay(protos: List[ArrivalProto]) -> Iterator[Tuple[float, Packet]]:
        """Fresh ``(time, Packet)`` pairs from recorded prototypes.

        Metadata dicts are copied per replay — the simulation mutates them
        in flight (wait-time stamps, remaining-size updates), and a shared
        dict would let one run's state leak into the next.
        """
        for (time, flow, length, packet_class, priority, fields,
             src, dst) in protos:
            yield time, Packet(
                flow, length,
                packet_class=packet_class,
                priority=priority,
                fields=dict(fields) if fields is not None else None,
                src=src, dst=dst,
            )

    # -- topologies --------------------------------------------------------
    def topology_for(self, scenario):
        """The scenario's network, shared across runs when that is sound.

        Fault plans mutate the topology mid-run, so faulted scenarios get
        a fresh build every call; fault-free fabrics only ever *read* the
        network (routes live on the switches), so one instance serves
        every run.
        """
        if scenario.fault_plan is not None:
            return scenario.topology()
        network = self._topologies.get(scenario.name)
        if network is None:
            network = self._topologies[scenario.name] = scenario.topology()
        return network

    def info(self) -> Dict[str, int]:
        return {"workloads": len(self._arrivals), "hits": self.hits,
                "misses": self.misses, "capacity": self.capacity}


#: Process-global cache used by :func:`active_cache`.  Each warm engine
#: worker is its own process, so each holds (at most) one of these.
_CACHE: Optional[WorkloadCache] = None


def active_cache() -> Optional[WorkloadCache]:
    """The process's workload cache, or ``None`` when disabled by env."""
    global _CACHE
    if not cache_enabled():
        return None
    if _CACHE is None:
        _CACHE = WorkloadCache()
    return _CACHE


def reset_cache() -> None:
    """Drop the process-global cache (tests and long-lived tools)."""
    global _CACHE
    _CACHE = None
