"""Tests for campaign result aggregation into summary tables."""

from __future__ import annotations

import pytest

from repro.reporting import campaign_report_text, summarize_records


def make_record(scenario, variant, pifo="sorted", lang="compiled",
                delivered=100, dropped=0, mean_delay=0.010, fct_mean=0.020,
                fct_p99=0.050, wall=1.0):
    return {
        "campaign": "c", "scenario": scenario, "variant": variant,
        "pifo_backend": pifo, "lang_backend": lang, "load_scale": 1.0,
        "replicate": 0, "quick": True,
        "delivered": delivered, "dropped": dropped,
        "mean_delay": mean_delay, "max_delay": mean_delay * 3,
        "fct_mean": fct_mean, "fct_p99": fct_p99,
        "wall_clock_s": wall,
    }


RECORDS = [
    make_record("fig6", "LSTF", delivered=100, mean_delay=0.010),
    make_record("fig6", "LSTF", pifo="calendar", delivered=110, mean_delay=0.030),
    make_record("fig6", "FIFO", delivered=90, dropped=5, mean_delay=0.040),
    make_record("clos", "SRPT", delivered=200, fct_mean=0.002, fct_p99=0.004),
]


class TestSummarize:
    def test_groups_and_sorts_by_key(self):
        rows = summarize_records(RECORDS, group_by=("scenario", "variant"))
        keys = [(row["scenario"], row["variant"]) for row in rows]
        assert keys == [("clos", "SRPT"), ("fig6", "FIFO"), ("fig6", "LSTF")]

    def test_counts_sum_and_metrics_average(self):
        rows = summarize_records(RECORDS, group_by=("scenario", "variant"))
        lstf = next(r for r in rows if r["variant"] == "LSTF")
        assert lstf["runs"] == 2
        assert lstf["delivered"] == 210
        assert lstf["mean_delay_ms"] == pytest.approx(20.0)

    def test_group_by_any_factor(self):
        rows = summarize_records(RECORDS, group_by=("pifo_backend",))
        assert {row["pifo_backend"] for row in rows} == {"sorted", "calendar"}

    def test_numeric_factors_sort_numerically(self):
        records = [
            {**make_record("s", "v"), "load_scale": scale}
            for scale in (10.0, 0.5, 2.0)
        ]
        rows = summarize_records(records, group_by=("load_scale",))
        assert [row["load_scale"] for row in rows] == [0.5, 2.0, 10.0]

    def test_missing_metrics_render_as_none(self):
        rows = summarize_records([
            {**make_record("s", "v"), "fct_mean": None, "fct_p99": None},
        ])
        assert rows[0]["fct_mean_ms"] is None

    def test_unknown_group_key_raises(self):
        with pytest.raises(ValueError, match="cannot group by"):
            summarize_records(RECORDS, group_by=("nonsense",))

    def test_empty_records(self):
        assert summarize_records([], group_by=("scenario",)) == []

    def test_failure_records_counted_but_excluded_from_metrics(self):
        records = [
            make_record("fig6", "LSTF", delivered=100, mean_delay=0.010),
            {**make_record("fig6", "LSTF"), "status": "failed",
             "delivered": 0, "mean_delay": None, "error": "boom"},
        ]
        rows = summarize_records(records, group_by=("scenario", "variant"))
        assert rows[0]["runs"] == 2
        assert rows[0]["failed"] == 1
        assert rows[0]["delivered"] == 100           # healthy run only
        assert rows[0]["mean_delay_ms"] == pytest.approx(10.0)

    def test_lost_to_faults_column_sums(self):
        records = [
            {**make_record("flap", "LSTF"), "lost_to_faults": 7},
            {**make_record("flap", "LSTF"), "lost_to_faults": 3},
        ]
        rows = summarize_records(records, group_by=("scenario",))
        assert rows[0]["lost_to_faults"] == 10
        # Pre-faults records default to zero, not a KeyError.
        legacy = summarize_records(RECORDS, group_by=("scenario",))
        assert all(row["lost_to_faults"] == 0 for row in legacy)


class TestReportText:
    def test_renders_table(self):
        text = campaign_report_text(RECORDS, group_by=("scenario", "variant"),
                                    title="Sweep")
        assert "Sweep" in text
        assert "LSTF" in text
        assert "mean_delay_ms" in text
