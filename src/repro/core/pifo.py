"""The push-in first-out queue (PIFO).

A PIFO is a priority queue that lets an element be *pushed into an arbitrary
location* based on the element's rank, but always *dequeues from the head*
(Section 2 of the paper).  Two properties matter for correctness:

* **Lower ranks dequeue first.**  The paper fixes this convention in a
  footnote; we keep it throughout the library.
* **Ties break FIFO.**  Elements with equal rank leave in the order they were
  pushed.  Stop-and-Go queueing (Section 3.2) relies on this to transmit all
  packets of a frame in arrival order.

Two implementations are provided:

:class:`PIFO`
    The reference implementation backed by a sorted list and ``bisect``.
    Pushes are O(n) in the worst case (list insert) but fast in practice and,
    more importantly, trivially correct.

:class:`CalendarPIFO`
    The same interface with an O(log n) push backed by a heap, used by the
    simulator for large workloads.  It keeps a monotonically increasing
    sequence number alongside the rank so heap ordering matches PIFO
    semantics (rank, then arrival order).

Both accept arbitrary elements: packets at the leaves of a scheduling tree,
or references to other PIFOs at interior nodes.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Any, Generic, Iterator, List, Optional, Tuple, TypeVar

from ..exceptions import PIFOEmptyError, PIFOFullError

T = TypeVar("T")

#: Rank type.  The paper uses integer ranks in hardware (16 or 32 bits); the
#: reference model accepts any totally ordered value, in particular floats
#: for virtual times and wall-clock departure times.
Rank = float


class PIFOEntry(Generic[T]):
    """An (element, rank) pair stored inside a PIFO.

    The sequence number records push order and implements the FIFO
    tie-breaking rule for equal ranks.
    """

    __slots__ = ("rank", "seq", "element")

    def __init__(self, rank: Rank, seq: int, element: T) -> None:
        self.rank = rank
        self.seq = seq
        self.element = element

    def key(self) -> Tuple[Rank, int]:
        return (self.rank, self.seq)

    def __lt__(self, other: "PIFOEntry") -> bool:
        return self.key() < other.key()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PIFOEntry(rank={self.rank}, seq={self.seq}, element={self.element!r})"


class PIFO(Generic[T]):
    """Reference push-in first-out queue.

    Parameters
    ----------
    capacity:
        Optional bound on the number of buffered elements.  The hardware
        design bounds each PIFO block at 64 K elements (Section 5.1); the
        reference model defaults to unbounded.
    name:
        Optional label used in error messages and debugging output.
    """

    def __init__(self, capacity: Optional[int] = None, name: str = "pifo") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self._entries: List[PIFOEntry[T]] = []
        self._keys: List[Tuple[Rank, int]] = []
        self._seq = 0
        self.capacity = capacity
        self.name = name
        # Counters useful for experiments and ablations.
        self.pushes = 0
        self.pops = 0
        self.drops = 0

    # -- core operations ---------------------------------------------------
    def push(self, element: T, rank: Rank) -> None:
        """Insert ``element`` at the position determined by ``rank``.

        Equal-rank elements retain FIFO order.  Raises
        :class:`~repro.exceptions.PIFOFullError` when the capacity bound
        would be exceeded.
        """
        if self.capacity is not None and len(self._entries) >= self.capacity:
            self.drops += 1
            raise PIFOFullError(
                f"PIFO {self.name!r} is full (capacity={self.capacity})"
            )
        entry = PIFOEntry(rank, self._seq, element)
        self._seq += 1
        # bisect_right on (rank, seq): seq is strictly increasing so an equal
        # rank always lands after previously pushed equal ranks (FIFO ties).
        index = bisect.bisect_right(self._keys, entry.key())
        self._keys.insert(index, entry.key())
        self._entries.insert(index, entry)
        self.pushes += 1

    def pop(self) -> T:
        """Remove and return the head (lowest rank, earliest push)."""
        if not self._entries:
            raise PIFOEmptyError(f"pop from empty PIFO {self.name!r}")
        self._keys.pop(0)
        entry = self._entries.pop(0)
        self.pops += 1
        return entry.element

    def pop_entry(self) -> PIFOEntry[T]:
        """Like :meth:`pop` but returns the full entry (element and rank)."""
        if not self._entries:
            raise PIFOEmptyError(f"pop from empty PIFO {self.name!r}")
        self._keys.pop(0)
        entry = self._entries.pop(0)
        self.pops += 1
        return entry

    def peek(self) -> T:
        """Return the head element without removing it."""
        if not self._entries:
            raise PIFOEmptyError(f"peek on empty PIFO {self.name!r}")
        return self._entries[0].element

    def peek_rank(self) -> Rank:
        """Return the head element's rank without removing it."""
        if not self._entries:
            raise PIFOEmptyError(f"peek on empty PIFO {self.name!r}")
        return self._entries[0].rank

    def peek_entry(self) -> PIFOEntry[T]:
        """Return the head entry without removing it."""
        if not self._entries:
            raise PIFOEmptyError(f"peek on empty PIFO {self.name!r}")
        return self._entries[0]

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[T]:
        """Iterate elements in dequeue order without removing them."""
        return (entry.element for entry in self._entries)

    def entries(self) -> List[PIFOEntry[T]]:
        """Return a snapshot of entries in dequeue order."""
        return list(self._entries)

    def ranks(self) -> List[Rank]:
        """Return the ranks in dequeue order."""
        return [entry.rank for entry in self._entries]

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def clear(self) -> None:
        """Drop all buffered elements."""
        self._entries.clear()
        self._keys.clear()

    # -- extended operations used by the switch substrate -------------------
    def remove(self, predicate) -> List[T]:
        """Remove and return every element for which ``predicate`` is true.

        Used by buffer management (drop on threshold crossing) and by PFC to
        purge paused flows from a software PIFO.  This is *not* a hardware
        PIFO operation; the hardware model instead masks flows at dequeue
        time (Section 6.2).
        """
        kept: List[PIFOEntry[T]] = []
        removed: List[T] = []
        for entry in self._entries:
            if predicate(entry.element):
                removed.append(entry.element)
            else:
                kept.append(entry)
        self._entries = kept
        self._keys = [entry.key() for entry in kept]
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PIFO(name={self.name!r}, len={len(self)})"


class CalendarPIFO(Generic[T]):
    """Heap-backed PIFO with the same semantics as :class:`PIFO`.

    Push and pop are O(log n).  Used by the discrete-event simulator when a
    run buffers tens of thousands of packets; behavioural equivalence with
    :class:`PIFO` is enforced by a property-based test.
    """

    def __init__(self, capacity: Optional[int] = None, name: str = "calendar-pifo") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self._heap: List[PIFOEntry[T]] = []
        self._seq = 0
        self.capacity = capacity
        self.name = name
        self.pushes = 0
        self.pops = 0
        self.drops = 0

    def push(self, element: T, rank: Rank) -> None:
        if self.capacity is not None and len(self._heap) >= self.capacity:
            self.drops += 1
            raise PIFOFullError(
                f"PIFO {self.name!r} is full (capacity={self.capacity})"
            )
        heapq.heappush(self._heap, PIFOEntry(rank, self._seq, element))
        self._seq += 1
        self.pushes += 1

    def pop(self) -> T:
        if not self._heap:
            raise PIFOEmptyError(f"pop from empty PIFO {self.name!r}")
        self.pops += 1
        return heapq.heappop(self._heap).element

    def pop_entry(self) -> PIFOEntry[T]:
        if not self._heap:
            raise PIFOEmptyError(f"pop from empty PIFO {self.name!r}")
        self.pops += 1
        return heapq.heappop(self._heap)

    def peek(self) -> T:
        if not self._heap:
            raise PIFOEmptyError(f"peek on empty PIFO {self.name!r}")
        return self._heap[0].element

    def peek_rank(self) -> Rank:
        if not self._heap:
            raise PIFOEmptyError(f"peek on empty PIFO {self.name!r}")
        return self._heap[0].rank

    def peek_entry(self) -> PIFOEntry[T]:
        if not self._heap:
            raise PIFOEmptyError(f"peek on empty PIFO {self.name!r}")
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def is_empty(self) -> bool:
        return not self._heap

    def clear(self) -> None:
        self._heap.clear()

    def entries(self) -> List[PIFOEntry[T]]:
        """Return entries in dequeue order (requires a sort; O(n log n))."""
        return sorted(self._heap)

    def ranks(self) -> List[Rank]:
        return [entry.rank for entry in sorted(self._heap)]

    def __iter__(self) -> Iterator[T]:
        return (entry.element for entry in sorted(self._heap))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CalendarPIFO(name={self.name!r}, len={len(self)})"
