"""Hierarchical Packet Fair Queueing (Figure 3, Section 2.2) and the generic
hierarchy builder used by every tree-structured example in the paper.

HPFQ apportions link capacity between classes, then recursively between
sub-classes, down to individual flows; each node of the hierarchy runs WFQ
(realised with the STFQ transaction) over its children.  The paper programs
it as a tree of scheduling transactions — one WFQ/STFQ transaction per node.

:func:`build_hierarchy` turns a declarative specification (nested
:class:`HierarchySpec`) into a :class:`~repro.core.tree.ScheduleTree`,
optionally attaching token-bucket shaping transactions to classes, which is
how the *Hierarchies with Shaping* example (Figure 4) is expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.backend import BackendSpec
from ..core.predicates import FlowIn, MatchAll
from ..core.tree import ScheduleTree, TreeNode
from ..exceptions import TreeConfigurationError
from .stfq import STFQTransaction
from .token_bucket import TokenBucketShapingTransaction


@dataclass
class ShapingSpec:
    """Token-bucket shaping attached to a class (Figure 4's ``TBF_Right``)."""

    rate_bps: float
    burst_bytes: float = 15000.0


@dataclass
class HierarchySpec:
    """Declarative description of one node of a scheduling hierarchy.

    Attributes
    ----------
    name:
        Node name; must be unique across the hierarchy.
    weight:
        Weight of this class relative to its siblings in the parent's fair
        scheduler (the numbers on the edges of Figure 3a).
    flows:
        For leaf classes, mapping from flow identifier to the flow's weight
        inside this class's WFQ.
    children:
        For interior classes, the child class specifications.
    shaping:
        Optional token-bucket limit applied to the class as a whole.
    """

    name: str
    weight: float = 1.0
    flows: Mapping[str, float] = field(default_factory=dict)
    children: Sequence["HierarchySpec"] = field(default_factory=tuple)
    shaping: Optional[ShapingSpec] = None

    def all_flows(self) -> List[str]:
        """Every flow served somewhere under this class."""
        flows = list(self.flows)
        for child in self.children:
            flows.extend(child.all_flows())
        return flows


def _build_node(spec: HierarchySpec, is_root: bool) -> TreeNode:
    if spec.flows and spec.children:
        raise TreeConfigurationError(
            f"class {spec.name!r} declares both flows and children; "
            "a class is either a leaf (flows) or interior (children)"
        )
    if spec.children:
        weights = {child.name: child.weight for child in spec.children}
    else:
        weights = dict(spec.flows)
    scheduling = STFQTransaction(weights=weights)
    shaping = None
    if spec.shaping is not None:
        if is_root:
            raise TreeConfigurationError(
                "shaping cannot be attached to the root class; shape the "
                "child classes instead"
            )
        shaping = TokenBucketShapingTransaction(
            rate_bps=spec.shaping.rate_bps,
            burst_bytes=spec.shaping.burst_bytes,
        )
    predicate = MatchAll() if is_root else FlowIn(spec.all_flows())
    node = TreeNode(
        name=spec.name,
        predicate=predicate,
        scheduling=scheduling,
        shaping=shaping,
    )
    for child_spec in spec.children:
        node.add_child(_build_node(child_spec, is_root=False))
    return node


def build_hierarchy(
    spec: HierarchySpec, pifo_backend: BackendSpec = None
) -> ScheduleTree:
    """Build a scheduling tree from a hierarchy specification.

    Packets are routed to classes by their flow identifier: a class matches
    every flow declared anywhere beneath it, so only ``Packet.flow`` needs to
    be set by the workload.  ``pifo_backend`` selects the PIFO storage
    backend for every node (see :mod:`repro.core.backend`).
    """
    return ScheduleTree(_build_node(spec, is_root=True), pifo_backend=pifo_backend)


def fig3_spec() -> HierarchySpec:
    """The exact HPFQ hierarchy of Figure 3a.

    Link capacity splits 1:9 between Left and Right; inside Left, flows A and
    B split 3:7; inside Right, flows C and D split 4:6.
    """
    return HierarchySpec(
        name="Root",
        children=(
            HierarchySpec(name="Left", weight=1.0, flows={"A": 3.0, "B": 7.0}),
            HierarchySpec(name="Right", weight=9.0, flows={"C": 4.0, "D": 6.0}),
        ),
    )


def build_fig3_tree(pifo_backend: BackendSpec = None) -> ScheduleTree:
    """The HPFQ tree of Figure 3, ready to attach to a scheduler."""
    return build_hierarchy(fig3_spec(), pifo_backend=pifo_backend)


def build_wfq_tree(
    weights: Mapping[str, float], pifo_backend: BackendSpec = None
) -> ScheduleTree:
    """Single-node WFQ over a set of flows (the Section 2.1 configuration)."""
    root = TreeNode(
        name="WFQ",
        scheduling=STFQTransaction(weights=dict(weights)),
        pifo_backend=pifo_backend,
    )
    return ScheduleTree(root)


def build_deep_hierarchy(
    levels: int,
    fanout: int = 2,
    flows_per_leaf: int = 2,
    base_weight: float = 1.0,
    pifo_backend: BackendSpec = None,
) -> ScheduleTree:
    """Build a uniform hierarchy ``levels`` deep (used by the 5-level
    hierarchical-scheduling claim in the introduction and by scaling
    benchmarks).

    Level 1 is the root; leaves at level ``levels`` each serve
    ``flows_per_leaf`` flows named ``f<leaf>.<i>``.
    """
    if levels < 1:
        raise ValueError("levels must be at least 1")
    if fanout < 1 or flows_per_leaf < 1:
        raise ValueError("fanout and flows_per_leaf must be at least 1")

    leaf_counter = [0]

    def _spec(depth: int, index: int) -> HierarchySpec:
        name = f"L{depth}.{index}"
        if depth == levels:
            leaf_id = leaf_counter[0]
            leaf_counter[0] += 1
            flows = {
                f"f{leaf_id}.{i}": base_weight for i in range(flows_per_leaf)
            }
            return HierarchySpec(name=name, weight=base_weight, flows=flows)
        children = tuple(
            _spec(depth + 1, index * fanout + i) for i in range(fanout)
        )
        return HierarchySpec(name=name, weight=base_weight, children=children)

    return build_hierarchy(_spec(1, 0), pifo_backend=pifo_backend)


def hierarchy_flows(tree: ScheduleTree) -> Dict[str, List[str]]:
    """Map each leaf class to the flows it serves (handy for workloads)."""
    mapping: Dict[str, List[str]] = {}
    for leaf in tree.leaves():
        scheduling = leaf.scheduling
        if isinstance(scheduling, STFQTransaction):
            mapping[leaf.name] = list(scheduling.weights)
        else:  # pragma: no cover - defensive
            mapping[leaf.name] = []
    return mapping
