"""Per-run resource capture from stdlib ``resource.getrusage``.

No third-party dependency (psutil is deliberately avoided): everything
here comes from ``getrusage(RUSAGE_SELF)``, which every POSIX Python
ships.  CPU times are measured as deltas across the probed section.
``ru_maxrss`` is a *lifetime* high-water mark for the process — it can
only grow — so ``rss_peak_bytes`` is reported as the absolute peak
observed by the end of the run, not a delta.  Within a warm worker that
still upper-bounds each run and matches what an operator cares about
(did this worker's footprint blow up, and when).

On platforms without the ``resource`` module (Windows) the probe
degrades to zeros rather than failing the run.
"""

from __future__ import annotations

import sys
from typing import Dict, Optional

try:  # pragma: no cover - absent only on Windows
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None  # type: ignore[assignment]

__all__ = ["ResourceProbe", "RESOURCE_FIELDS", "rss_peak_bytes"]

#: Store-record fields produced by the probe (events is supplied by the
#: caller, from the simulator's deterministic event count).
RESOURCE_FIELDS = (
    "rss_peak_bytes", "cpu_user_s", "cpu_sys_s", "events", "events_per_s",
)

# ru_maxrss units: kilobytes on Linux, bytes on macOS.
_MAXRSS_SCALE = 1 if sys.platform == "darwin" else 1024


def rss_peak_bytes() -> int:
    """Process-lifetime RSS high-water mark, in bytes (0 if unsupported)."""
    if _resource is None:
        return 0
    return _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss * _MAXRSS_SCALE


class ResourceProbe:
    """Bracket a run: ``start()`` ... ``stop(events, wall_s)`` -> fields."""

    __slots__ = ("_user0", "_sys0")

    def __init__(self) -> None:
        self._user0 = 0.0
        self._sys0 = 0.0

    def start(self) -> "ResourceProbe":
        if _resource is not None:
            usage = _resource.getrusage(_resource.RUSAGE_SELF)
            self._user0 = usage.ru_utime
            self._sys0 = usage.ru_stime
        return self

    def stop(self, events: int = 0,
             wall_s: Optional[float] = None) -> Dict[str, float]:
        """Finish the bracket and return the record fields."""
        if _resource is None:
            cpu_user = cpu_sys = 0.0
            peak = 0
        else:
            usage = _resource.getrusage(_resource.RUSAGE_SELF)
            cpu_user = max(0.0, usage.ru_utime - self._user0)
            cpu_sys = max(0.0, usage.ru_stime - self._sys0)
            peak = usage.ru_maxrss * _MAXRSS_SCALE
        events_per_s = 0.0
        if wall_s and wall_s > 0 and events:
            events_per_s = events / wall_s
        return {
            "rss_peak_bytes": peak,
            "cpu_user_s": round(cpu_user, 6),
            "cpu_sys_s": round(cpu_sys, 6),
            "events": int(events),
            "events_per_s": round(events_per_s, 3),
        }
