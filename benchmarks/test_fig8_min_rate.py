"""Figure 8 / Section 3.3 — minimum rate guarantees.

Regenerates: throughput of a flow with a 20 Mbit/s guarantee while an
aggressive best-effort flow overloads the port, plus the collapsed-tree
ablation showing why the two-level tree is required (intra-flow ordering).
"""

from __future__ import annotations

from conftest import report, run_overload_experiment

from repro.algorithms import build_collapsed_min_rate_tree, build_min_rate_tree
from repro.core import Packet, ProgrammableScheduler

LINK_RATE = 50e6
GUARANTEE = 20e6
DURATION = 0.1


def run_min_rate(guaranteed_offered_bps=25e6, bulk_offered_bps=100e6):
    tree = build_min_rate_tree(
        ["guaranteed", "bulk"], {"guaranteed": GUARANTEE}, burst_bytes=6000
    )
    return run_overload_experiment(
        tree,
        {"guaranteed": guaranteed_offered_bps, "bulk": bulk_offered_bps},
        LINK_RATE,
        DURATION,
    )


def test_fig8_guaranteed_flow_receives_its_minimum_rate(benchmark):
    port = benchmark(run_min_rate)
    guaranteed_rate = port.sink.throughput_bps(flow="guaranteed", start=0.02, end=DURATION)
    bulk_rate = port.sink.throughput_bps(flow="bulk", start=0.02, end=DURATION)
    report(
        "Figure 8: min-rate guarantee under overload (guarantee = 20 Mbit/s)",
        [
            {"flow": "guaranteed", "offered_Mbps": 25, "measured_Mbps": guaranteed_rate / 1e6},
            {"flow": "bulk", "offered_Mbps": 100, "measured_Mbps": bulk_rate / 1e6},
        ],
    )
    assert guaranteed_rate >= GUARANTEE * 0.9
    # The port stays fully used: bulk soaks up the rest.
    assert guaranteed_rate + bulk_rate >= LINK_RATE * 0.95


def test_fig8_guarantee_inactive_when_flow_sends_little(benchmark):
    """A guaranteed flow offering less than its guarantee simply gets what it
    offers; the guarantee is a floor, not a reservation."""
    port = benchmark(lambda: run_min_rate(guaranteed_offered_bps=5e6))
    guaranteed_rate = port.sink.throughput_bps(flow="guaranteed", start=0.02, end=DURATION)
    report("Figure 8: under-offering flow",
           [{"offered_Mbps": 5, "measured_Mbps": guaranteed_rate / 1e6}])
    assert guaranteed_rate <= 6e6
    assert guaranteed_rate >= 4e6


def test_fig8_ablation_collapsed_tree_reorders_flow(benchmark):
    """Section 3.3's argument for the 2-level tree: collapsing it into a
    single transaction reorders packets within a flow, the 2-level tree does
    not."""
    def run_ablation():
        def departure_tags(tree):
            scheduler = ProgrammableScheduler(tree)
            for i in range(3):
                scheduler.enqueue(Packet(flow="f", length=1400, fields={"i": i}), now=0.0)
            scheduler.enqueue(Packet(flow="f", length=1400, fields={"i": 3}), now=1.0)
            return [p.get("i") for p in scheduler.drain(now=1.0)]

        collapsed = departure_tags(build_collapsed_min_rate_tree({"f": 8e6},
                                                                 burst_bytes=1500))
        two_level = departure_tags(build_min_rate_tree(["f"], {"f": 8e6},
                                                       burst_bytes=1500))
        return collapsed, two_level

    collapsed, two_level = benchmark(run_ablation)
    report(
        "Figure 8 ablation: intra-flow departure order",
        [
            {"variant": "collapsed single node", "order": collapsed,
             "in_order": collapsed == sorted(collapsed)},
            {"variant": "two-level tree", "order": two_level,
             "in_order": two_level == sorted(two_level)},
        ],
    )
    assert two_level == sorted(two_level)
    assert collapsed != sorted(collapsed)
