"""Tests for minimum-rate guarantees (Figure 8, Section 3.3)."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    MinRateTransaction,
    OVER_MIN,
    UNDER_MIN,
    build_collapsed_min_rate_tree,
    build_min_rate_tree,
)
from repro.core import Packet, ProgrammableScheduler, TransactionContext


def ctx(flow, length, now):
    return TransactionContext(now=now, element_flow=flow, element_length=length)


class TestMinRateTransaction:
    def test_under_rate_flow_gets_priority_rank(self):
        txn = MinRateTransaction({"A": 8e6}, burst_bytes=10000)
        assert txn(Packet(flow="A", length=1000), ctx("A", 1000, 0.0)) == UNDER_MIN

    def test_flow_exceeding_bucket_marked_over_min(self):
        txn = MinRateTransaction({"A": 8e6}, burst_bytes=1500)
        txn(Packet(flow="A", length=1000), ctx("A", 1000, 0.0))
        rank = txn(Packet(flow="A", length=1000), ctx("A", 1000, 0.0))
        assert rank == OVER_MIN

    def test_tokens_replenish_at_min_rate(self):
        txn = MinRateTransaction({"A": 8e6}, burst_bytes=1500)
        txn(Packet(flow="A", length=1000), ctx("A", 1000, 0.0))
        assert txn(Packet(flow="A", length=1000), ctx("A", 1000, 0.0)) == OVER_MIN
        # After 2 ms at 1 MB/s the bucket regained 2000 bytes (capped 1500).
        assert txn(Packet(flow="A", length=1000), ctx("A", 1000, 0.002)) == UNDER_MIN

    def test_flow_without_guarantee_is_best_effort(self):
        txn = MinRateTransaction({"A": 8e6}, burst_bytes=1500, default_rate_bps=0.0)
        # A flow with no guarantee is always over-the-minimum, even its very
        # first packet: it must never preempt guaranteed flows.
        assert txn(Packet(flow="B", length=1500), ctx("B", 1500, 0.0)) == OVER_MIN
        assert txn(Packet(flow="B", length=1500), ctx("B", 1500, 10.0)) == OVER_MIN

    def test_independent_buckets_per_flow(self):
        txn = MinRateTransaction({"A": 8e6, "B": 8e6}, burst_bytes=1500)
        assert txn(Packet(flow="A", length=1400), ctx("A", 1400, 0.0)) == UNDER_MIN
        assert txn(Packet(flow="B", length=1400), ctx("B", 1400, 0.0)) == UNDER_MIN


class TestMinRateTree:
    def test_two_level_tree_structure(self):
        tree = build_min_rate_tree(["A", "B"], {"A": 10e6})
        assert tree.depth() == 2
        assert {leaf.name for leaf in tree.leaves()} == {"A", "B"}

    def test_guaranteed_flow_served_before_best_effort_backlog(self):
        tree = build_min_rate_tree(["guaranteed", "bulk"], {"guaranteed": 80e6},
                                   burst_bytes=4000)
        scheduler = ProgrammableScheduler(tree)
        # Heavy bulk backlog plus a couple of guaranteed-flow packets.
        for i in range(10):
            scheduler.enqueue(Packet(flow="bulk", length=1500), now=0.0)
        scheduler.enqueue(Packet(flow="guaranteed", length=1500), now=0.0)
        scheduler.enqueue(Packet(flow="guaranteed", length=1500), now=0.0)
        order = [p.flow for p in scheduler.drain(now=0.0)]
        assert order[0] == "guaranteed"
        assert order[1] == "guaranteed"

    def test_no_intra_flow_reordering_in_two_level_tree(self):
        """The key Section 3.3 argument: priorities attach to transmission
        opportunities, so packets of a flow still leave in FIFO order."""
        tree = build_min_rate_tree(["f"], {"f": 8e6}, burst_bytes=1500)
        scheduler = ProgrammableScheduler(tree)
        packets = [Packet(flow="f", length=1400, fields={"i": i}) for i in range(6)]
        for packet in packets:
            scheduler.enqueue(packet, now=0.0)
        order = [p.get("i") for p in scheduler.drain(now=0.0)]
        assert order == sorted(order)

    def test_collapsed_tree_reorders_within_flow(self):
        """The single-node variant the paper warns against: an arriving
        packet that flips the flow back under its minimum rate jumps ahead
        of that flow's earlier (over-minimum) packets."""
        tree = build_collapsed_min_rate_tree({"f": 8e6}, burst_bytes=1500)
        scheduler = ProgrammableScheduler(tree)
        scheduler.enqueue(Packet(flow="f", length=1400, fields={"i": 0}), now=0.0)
        scheduler.enqueue(Packet(flow="f", length=1400, fields={"i": 1}), now=0.0)
        scheduler.enqueue(Packet(flow="f", length=1400, fields={"i": 2}), now=0.0)
        # By now the bucket is drained, so packets 1 and 2 are over-minimum.
        # Much later, the bucket has refilled: packet 3 is under-minimum and
        # the collapsed transaction ranks it ahead of packets 1 and 2.
        scheduler.enqueue(Packet(flow="f", length=1400, fields={"i": 3}), now=1.0)
        order = [p.get("i") for p in scheduler.drain(now=1.0)]
        assert order != sorted(order)
        assert order.index(3) < order.index(1)

    def test_sum_of_guarantees_respected_between_two_flows(self):
        tree = build_min_rate_tree(
            ["gold", "silver", "bulk"],
            {"gold": 40e6, "silver": 20e6},
            burst_bytes=3000,
        )
        scheduler = ProgrammableScheduler(tree)
        for _ in range(4):
            scheduler.enqueue(Packet(flow="bulk", length=1500), now=0.0)
        scheduler.enqueue(Packet(flow="gold", length=1500), now=0.0)
        scheduler.enqueue(Packet(flow="silver", length=1500), now=0.0)
        order = [p.flow for p in scheduler.drain(now=0.0)]
        assert set(order[:2]) == {"gold", "silver"}
