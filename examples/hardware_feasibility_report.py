"""Hardware feasibility report for a scheduling policy.

Given a scheduling tree, this example answers the questions Section 4 and 5
of the paper answer for their design: how many PIFO blocks does the policy
need, what do the next-hop tables look like, do the transactions fit the
atom budget, and what chip area would the mesh cost?

Run with::

    python examples/hardware_feasibility_report.py
"""

from __future__ import annotations

from repro.algorithms import build_deep_hierarchy, build_fig4_tree
from repro.hardware import (
    AtomPipelineAnalyzer,
    FlowSchedulerDesign,
    MeshDesign,
    PAPER_TRANSACTIONS,
    PIFOBlockDesign,
    compile_tree,
)


def report_for(name: str, tree) -> None:
    print(f"=== {name} ===")
    program = compile_tree(tree)
    print(f"tree levels: {program.levels}, PIFO blocks: {program.block_count()}")
    print(program.mesh.describe())

    mesh_design = MeshDesign(
        block=PIFOBlockDesign(flow_scheduler=FlowSchedulerDesign()),
        num_blocks=program.block_count(),
    )
    print(f"estimated mesh area: {mesh_design.blocks_area_mm2():.2f} mm^2 "
          f"+ {mesh_design.atoms_area_mm2():.2f} mm^2 of atoms "
          f"= {mesh_design.total_area_mm2():.2f} mm^2 "
          f"({mesh_design.overhead_percent():.1f}% of a 200 mm^2 chip)")
    print(f"mesh wiring: {program.mesh.total_mesh_wires()} bits "
          f"({program.mesh.wire_sets()} wire sets x "
          f"{program.mesh.bits_per_wire_set()} bits)\n")


def transaction_feasibility() -> None:
    print("=== Transaction feasibility (Domino atom mapping) ===")
    analyzer = AtomPipelineAnalyzer()
    total_atoms = 0
    print(f"{'transaction':<16}{'feasible':>9}{'atoms':>7}{'area (um^2)':>13}")
    for name in sorted(PAPER_TRANSACTIONS):
        report = analyzer.analyze(PAPER_TRANSACTIONS[name])
        total_atoms += report.total_atoms
        print(f"{name:<16}{str(report.feasible):>9}{report.total_atoms:>7}"
              f"{report.area_um2:>13.0f}")
    print(f"total atoms for every paper transaction: {total_atoms} "
          "(budget: 300 per chip)\n")


def main() -> None:
    report_for("Hierarchies with Shaping (Figure 4)", build_fig4_tree())
    report_for("5-level programmable hierarchy",
               build_deep_hierarchy(levels=5, fanout=2, flows_per_leaf=2))
    transaction_feasibility()
    print("Table 2 reminder: the flow scheduler meets 1 GHz timing up to "
          f"{FlowSchedulerDesign(num_flows=2048).num_flows} flows "
          f"({FlowSchedulerDesign(num_flows=2048).area_mm2():.3f} mm^2).")


if __name__ == "__main__":
    main()
