"""Hardware feasibility model: PIFO blocks, mesh, compiler, area/timing.

This package reproduces Sections 4 and 5 of the paper with a behavioural /
analytic substitution for the Verilog implementation (see DESIGN.md):

* :mod:`repro.hardware.atoms` — Domino-style atom vocabulary and the
  transaction feasibility analysis of Section 4.1.
* :mod:`repro.hardware.flow_scheduler`, :mod:`repro.hardware.rank_store`,
  :mod:`repro.hardware.pifo_block` — the Section 5.2 PIFO block
  (flow scheduler in flip-flops + rank store in SRAM) with its per-cycle
  operation constraints.
* :mod:`repro.hardware.mesh`, :mod:`repro.hardware.compiler` — the PIFO mesh,
  next-hop lookup tables, the tree-to-mesh compiler of Section 4.3 and a
  mesh-backed scheduler that can be diffed against the reference engine.
* :mod:`repro.hardware.area_model` — the analytic reproduction of Tables 1
  and 2, the Section 5.3 parameter sweep and the Section 5.4 wiring count.
"""

from .atoms import (
    ATOM_BUDGET_PER_CHIP,
    ATOM_TEMPLATES,
    AtomPipelineAnalyzer,
    AtomTemplate,
    PAIRS_ATOM_AREA_UM2,
    PAPER_TRANSACTIONS,
    PipelineReport,
    StateUpdate,
    TransactionSpec,
    paper_transaction_specs,
    require_feasible,
)
from .area_model import (
    FlowSchedulerDesign,
    MAX_FLOWS_AT_1GHZ,
    MeshDesign,
    PAPER_PARAMETER_VARIATIONS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TOTAL_MESH_WIRES,
    PAPER_WIRES_PER_SET,
    PIFOBlockDesign,
    SRAM_MM2_PER_MBIT,
    SWITCH_CHIP_AREA_MM2,
    flat_sorted_array_comparisons,
    parameter_variation_rows,
    table2_rows,
)
from .compiler import (
    HardwareScheduler,
    MeshCompiler,
    MeshProgram,
    PIFOAssignment,
    compile_tree,
)
from .flow_scheduler import FlowScheduler, FlowSchedulerEntry
from .mesh import ConflictArbiter, NextHop, PIFOMesh
from .pifo_block import (
    DequeuedElement,
    PIFOBlock,
    SAME_PIFO_DEQUEUE_INTERVAL,
)
from .rank_store import RankStore

__all__ = [
    "AtomTemplate",
    "ATOM_TEMPLATES",
    "ATOM_BUDGET_PER_CHIP",
    "PAIRS_ATOM_AREA_UM2",
    "AtomPipelineAnalyzer",
    "TransactionSpec",
    "StateUpdate",
    "PipelineReport",
    "PAPER_TRANSACTIONS",
    "paper_transaction_specs",
    "require_feasible",
    "FlowScheduler",
    "FlowSchedulerEntry",
    "RankStore",
    "PIFOBlock",
    "DequeuedElement",
    "SAME_PIFO_DEQUEUE_INTERVAL",
    "PIFOMesh",
    "NextHop",
    "ConflictArbiter",
    "MeshCompiler",
    "MeshProgram",
    "PIFOAssignment",
    "compile_tree",
    "HardwareScheduler",
    "FlowSchedulerDesign",
    "PIFOBlockDesign",
    "MeshDesign",
    "table2_rows",
    "parameter_variation_rows",
    "flat_sorted_array_comparisons",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_PARAMETER_VARIATIONS",
    "PAPER_WIRES_PER_SET",
    "PAPER_TOTAL_MESH_WIRES",
    "SWITCH_CHIP_AREA_MM2",
    "SRAM_MM2_PER_MBIT",
    "MAX_FLOWS_AT_1GHZ",
]
