"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs (which build a wheel) fail.  ``python setup.py develop`` and
``pip install -e . --no-build-isolation`` both work through this shim.
"""

from setuptools import setup

setup()
