"""Stable seed derivation for reproducible, order-independent experiments.

Randomised workloads must be reproducible no matter how they are executed:
the same scenario must produce the same arrivals whether its demands are
built first or last, and a campaign run must produce the same results
whether it executes on one worker or eight.  Python's ``hash()`` is salted
per process and ``random.Random(seed).randrange`` chains would couple seeds
to iteration order, so both are unusable for this.

:func:`derive_seed` instead hashes its parts with BLAKE2b (keyed only by
the values themselves) into a 63-bit integer seed.  Properties relied on
throughout the campaign and scenario layers:

* **Deterministic across processes** — no per-process salt, no environment
  dependence; the same parts give the same seed on any worker.
* **Order-free** with respect to *other* derivations — deriving seed B
  never depends on whether seed A was derived before it.
* **Well-spread** — structurally close inputs (``replicate 1`` vs
  ``replicate 2``) give statistically unrelated seeds, unlike the
  ``base + offset`` convention that correlates neighbouring streams.
"""

from __future__ import annotations

import hashlib
from typing import Union

SeedPart = Union[int, float, str, bytes]

#: Seeds fit in 63 bits so they stay exact in a C ``long long`` and survive
#: JSON round-trips (JavaScript-safe would be 53; record *parts*, not seeds,
#: when exporting beyond Python).
_SEED_BITS = 63


def derive_seed(*parts: SeedPart) -> int:
    """Derive a stable 63-bit seed from a sequence of identifying parts.

    ``parts`` is typically ``(base_seed, run_id)`` for a campaign run or
    ``(base_seed, flow_name)`` for one demand of a scenario.  Parts are
    length-prefixed before hashing so ``("ab", "c")`` and ``("a", "bc")``
    derive different seeds.
    """
    if not parts:
        raise ValueError("derive_seed needs at least one part")
    hasher = hashlib.blake2b(digest_size=16)
    for part in parts:
        if isinstance(part, bool):  # bool is an int subclass; disambiguate
            token = f"b:{part}".encode()
        elif isinstance(part, int):
            token = f"i:{part}".encode()
        elif isinstance(part, float):
            # repr() round-trips floats exactly in Python 3.
            token = f"f:{part!r}".encode()
        elif isinstance(part, str):
            token = b"s:" + part.encode("utf-8")
        elif isinstance(part, bytes):
            token = b"y:" + part
        else:
            raise TypeError(
                f"seed parts must be int/float/str/bytes, got {type(part).__name__}"
            )
        hasher.update(len(token).to_bytes(4, "big"))
        hasher.update(token)
    digest = hasher.digest()
    return int.from_bytes(digest, "big") & ((1 << _SEED_BITS) - 1)
