"""Command-line interface: ``python -m repro``.

Subcommands
-----------
``list``
    List every reproduced experiment (id, paper reference, description).
``run EXPERIMENT [--quick] [--json]``
    Run one experiment and print its paper-vs-measured table.
``report [--quick] [EXPERIMENT ...]``
    Run several experiments (all by default) and print the combined report.
``programs``
    List the transactions available in the transaction language.
``scenarios``
    List the registered network-fabric scenarios (topology, variants,
    traffic matrix size); run one via ``run`` with its experiment id.
``show PROGRAM``
    Print a transaction's source, its state analysis and the Domino-style
    atom pipeline it compiles to.

The CLI never writes files; redirect stdout to capture a report.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from . import __version__
from .hardware.atoms import AtomPipelineAnalyzer
from .lang.analysis import analyze_program, spec_from_program
from .lang.programs import (
    DEFAULT_FACTORIES,
    PROGRAM_SOURCES,
    PROGRAM_STATE,
    SHAPING_PROGRAMS,
)
from .reporting import (
    generate_report,
    list_experiments,
    render_kv,
    render_table,
    run_experiment,
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Programmable Packet Scheduling at Line Rate' "
            "(SIGCOMM 2016): run the paper's experiments and inspect "
            "scheduling transactions."
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list reproduced experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see 'list')")
    run_parser.add_argument("--quick", action="store_true",
                            help="shorter simulation durations")
    run_parser.add_argument("--json", action="store_true",
                            help="print the result as JSON instead of a table")

    report_parser = subparsers.add_parser(
        "report", help="run several experiments and print the combined report"
    )
    report_parser.add_argument("experiments", nargs="*",
                               help="experiment ids (default: all)")
    report_parser.add_argument("--quick", action="store_true",
                               help="shorter simulation durations")

    subparsers.add_parser("programs",
                          help="list transaction-language programs")

    subparsers.add_parser("scenarios",
                          help="list network-fabric scenarios")

    show_parser = subparsers.add_parser(
        "show", help="show a program's source, analysis and atom pipeline"
    )
    show_parser.add_argument("program", help="program name (see 'programs')")

    return parser


# --------------------------------------------------------------------------- #
# Subcommand implementations                                                   #
# --------------------------------------------------------------------------- #
def _cmd_list() -> int:
    rows = [
        {
            "id": spec.experiment_id,
            "paper": spec.paper_reference,
            "description": spec.description,
        }
        for spec in list_experiments()
    ]
    print(render_table(rows, title="Reproduced experiments"))
    return 0


def _cmd_run(experiment: str, quick: bool, as_json: bool) -> int:
    try:
        result = run_experiment(experiment, quick=quick)
    except KeyError as exc:
        print(str(exc.args[0]), file=sys.stderr)
        return 2
    if as_json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(render_table(result.rows, title=result.title))
    if result.notes:
        print(f"\nNotes: {result.notes}")
    return 0


def _cmd_report(experiments: Sequence[str], quick: bool) -> int:
    ids = list(experiments) or None
    try:
        print(generate_report(ids, quick=quick))
    except KeyError as exc:
        print(str(exc.args[0]), file=sys.stderr)
        return 2
    return 0


def _cmd_programs() -> int:
    rows = []
    for name in sorted(PROGRAM_SOURCES):
        analysis = analyze_program(PROGRAM_SOURCES[name], state=PROGRAM_STATE[name])
        rows.append(
            {
                "program": name,
                "kind": "shaping" if name in SHAPING_PROGRAMS else "scheduling",
                "state_variables": len(PROGRAM_STATE[name]),
                "stateless_ops": analysis.stateless_ops,
            }
        )
    print(render_table(rows, title="Transaction-language programs"))
    return 0


def _cmd_scenarios() -> int:
    from .net import list_scenarios

    rows = []
    for scenario in list_scenarios():
        network = scenario.topology()
        rows.append(
            {
                "scenario": scenario.name,
                "paper": scenario.paper_reference,
                "topology": (f"{len(network.switches())} switches / "
                             f"{len(network.hosts())} hosts"),
                "variants": ", ".join(scenario.variants),
                "demands": len(scenario.demands),
            }
        )
    print(render_table(rows, title="Network-fabric scenarios"))
    print("\nRun one with: repro run SCENARIO [--quick] [--json]")
    return 0


def _cmd_show(program: str) -> int:
    if program not in PROGRAM_SOURCES:
        known = ", ".join(sorted(PROGRAM_SOURCES))
        print(f"unknown program {program!r}; known programs: {known}",
              file=sys.stderr)
        return 2
    source = PROGRAM_SOURCES[program]
    state = PROGRAM_STATE[program]
    kind = "shaping" if program in SHAPING_PROGRAMS else "scheduling"
    analysis = analyze_program(source, state=state)
    spec = spec_from_program(program, source, state=state, kind=kind)
    pipeline = AtomPipelineAnalyzer().analyze(spec)

    print(f"# {program} ({kind} transaction)")
    print(source.strip())
    print()
    print(render_kv(
        {
            "feasible at line rate": pipeline.feasible,
            "atoms": pipeline.total_atoms,
            "pipeline depth": pipeline.pipeline_depth,
            "atom area (mm^2)": pipeline.area_mm2,
        },
        title="Atom pipeline (Section 4.1)",
    ))
    print()
    print("Analysis")
    print("========")
    print(analysis.summary())
    transaction = DEFAULT_FACTORIES[program]()
    generated = getattr(transaction, "generated_source", lambda: None)()
    print()
    print(f"Execution backend: {transaction.backend}")
    if generated is not None:
        print()
        print("Generated Python (repro.lang.compiler)")
        print("======================================")
        print(generated.rstrip())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command is None:
        parser.print_help()
        return 1
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.quick, args.json)
    if args.command == "report":
        return _cmd_report(args.experiments, args.quick)
    if args.command == "programs":
        return _cmd_programs()
    if args.command == "scenarios":
        return _cmd_scenarios()
    if args.command == "show":
        return _cmd_show(args.program)
    parser.error(f"unhandled command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
