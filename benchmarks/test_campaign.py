"""Campaign engine benchmark: serial vs sharded sweep throughput.

Runs the built-in ``paper_sweep`` campaign (quick durations) serially and
across a worker pool, verifies the parallel result store is identical to
the serial one modulo wall-clock fields, and records runs/second plus the
parallel speed-up to ``BENCH_campaign.json`` at the repo root (the
artifact CI uploads).  Set ``BENCH_QUICK=1`` to benchmark a fig6-only
subset for smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import report

from repro.campaign import (
    Campaign,
    CampaignRunner,
    ResultStore,
    get_campaign,
    strip_timing,
)

BENCH_QUICK = bool(os.environ.get("BENCH_QUICK"))
BENCH_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_campaign.json"
WORKER_COUNTS = [1, 2] if BENCH_QUICK else [1, 2, 4]


def _campaign() -> Campaign:
    if BENCH_QUICK:
        return Campaign(
            name="paper_sweep_smoke",
            title="fig6 subset of paper_sweep",
            scenarios=["fig6_chain"],
            pifo_backends=["sorted", "calendar", "quantized"],
            lang_backends=["compiled", "interpreted"],
        )
    return get_campaign("paper_sweep")


def _run(campaign: Campaign, workers: int, tmp_dir: Path):
    store = ResultStore(tmp_dir / f"store_w{workers}.jsonl")
    runner = CampaignRunner(campaign, store, workers=workers, quick=True)
    start = time.perf_counter()
    runner.run()
    elapsed = time.perf_counter() - start
    return store, elapsed


def test_campaign_serial_vs_parallel_throughput(tmp_path):
    """Sharding must preserve results bit-for-bit and not cost throughput."""
    campaign = _campaign()
    total = campaign.size()
    rows = []
    stores = {}
    # Speed-up is bounded by the host's cores (a 1-core CI box can only
    # show the sharding *overhead*); record the context with the numbers.
    artifact = {"campaign": campaign.name, "runs": total,
                "cpu_count": os.cpu_count(), "workers": {}}
    for workers in WORKER_COUNTS:
        store, elapsed = _run(campaign, workers, tmp_path)
        stores[workers] = store
        rate = total / elapsed
        serial_elapsed = rows[0]["elapsed_s"] if rows else elapsed
        rows.append({
            "workers": workers,
            "runs": total,
            "elapsed_s": elapsed,
            "runs_per_second": rate,
            "speedup_vs_serial": serial_elapsed / elapsed,
        })
        artifact["workers"][str(workers)] = {
            "elapsed_s": elapsed,
            "runs_per_second": rate,
        }
    serial = [strip_timing(r) for r in stores[WORKER_COUNTS[0]].load()]
    for workers in WORKER_COUNTS[1:]:
        parallel = [strip_timing(r) for r in stores[workers].load()]
        assert parallel == serial, f"workers={workers} diverged from serial"
    artifact["speedup_max_workers_vs_serial"] = (
        artifact["workers"][str(WORKER_COUNTS[0])]["elapsed_s"]
        / artifact["workers"][str(WORKER_COUNTS[-1])]["elapsed_s"]
    )
    report("Campaign sweep throughput (paper_sweep, quick durations)", rows)
    BENCH_ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    assert len(serial) == total
    # Every run must have delivered traffic — an empty result at sweep
    # scale means a mis-wired factor, not a slow machine.
    assert all(r["delivered"] > 0 for r in serial)
