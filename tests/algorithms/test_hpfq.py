"""Tests for HPFQ and the generic hierarchy builder (Figure 3)."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    HierarchySpec,
    ShapingSpec,
    build_deep_hierarchy,
    build_fig3_tree,
    build_hierarchy,
    build_wfq_tree,
    fig3_spec,
    hierarchy_flows,
)
from repro.core import Packet, ProgrammableScheduler
from repro.exceptions import TreeConfigurationError


class TestHierarchyBuilder:
    def test_fig3_structure(self):
        tree = build_fig3_tree()
        assert tree.depth() == 2
        assert {leaf.name for leaf in tree.leaves()} == {"Left", "Right"}
        assert tree.root.scheduling.weights == {"Left": 1.0, "Right": 9.0}
        assert tree.node("Left").scheduling.weights == {"A": 3.0, "B": 7.0}

    def test_packets_routed_by_flow(self):
        tree = build_fig3_tree()
        assert tree.leaf_for(Packet(flow="A", length=10)).name == "Left"
        assert tree.leaf_for(Packet(flow="D", length=10)).name == "Right"

    def test_spec_rejects_both_flows_and_children(self):
        bad = HierarchySpec(
            name="X",
            flows={"A": 1.0},
            children=(HierarchySpec(name="Y", flows={"B": 1.0}),),
        )
        with pytest.raises(TreeConfigurationError):
            build_hierarchy(bad)

    def test_root_shaping_rejected(self):
        bad = HierarchySpec(
            name="Root",
            flows={"A": 1.0},
            shaping=ShapingSpec(rate_bps=1e6),
        )
        with pytest.raises(TreeConfigurationError):
            build_hierarchy(bad)

    def test_all_flows_collected_recursively(self):
        assert sorted(fig3_spec().all_flows()) == ["A", "B", "C", "D"]

    def test_hierarchy_flows_helper(self):
        mapping = hierarchy_flows(build_fig3_tree())
        assert mapping == {"Left": ["A", "B"], "Right": ["C", "D"]}

    def test_deep_hierarchy_has_requested_levels(self):
        tree = build_deep_hierarchy(levels=5, fanout=2, flows_per_leaf=2)
        assert tree.depth() == 5
        assert len(tree.leaves()) == 2 ** 4
        # Every leaf's flows are routable.
        some_flow = next(iter(tree.leaves()[0].scheduling.weights))
        assert tree.leaf_for(Packet(flow=some_flow, length=10)).is_leaf

    def test_deep_hierarchy_validation(self):
        with pytest.raises(ValueError):
            build_deep_hierarchy(levels=0)
        with pytest.raises(ValueError):
            build_deep_hierarchy(levels=2, fanout=0)


class TestHPFQOrdering:
    def test_right_class_dominates_by_nine_to_one(self):
        scheduler = ProgrammableScheduler(build_fig3_tree())
        for _ in range(20):
            for flow in "ABCD":
                scheduler.enqueue(Packet(flow=flow, length=1000))
        order = scheduler.drain()
        first_20 = order[:20]
        left = sum(1 for p in first_20 if p.flow in "AB")
        right = sum(1 for p in first_20 if p.flow in "CD")
        assert left == 2
        assert right == 18

    def test_within_right_class_c_to_d_is_4_to_6(self):
        scheduler = ProgrammableScheduler(build_fig3_tree())
        for _ in range(30):
            scheduler.enqueue(Packet(flow="C", length=1000))
            scheduler.enqueue(Packet(flow="D", length=1000))
        order = [p.flow for p in scheduler.drain()]
        window = order[:20]
        assert window.count("D") == pytest.approx(12, abs=1)
        assert window.count("C") == pytest.approx(8, abs=1)

    def test_hierarchy_isolation_left_share_independent_of_right_load(self):
        """Left's 10% share should not depend on how many Right flows are
        active - the class-level isolation HPFQ provides."""
        def left_fraction(right_flows):
            spec = HierarchySpec(
                name="Root",
                children=(
                    HierarchySpec(name="Left", weight=1.0, flows={"A": 1.0}),
                    HierarchySpec(
                        name="Right",
                        weight=9.0,
                        flows={f"R{i}": 1.0 for i in range(right_flows)},
                    ),
                ),
            )
            scheduler = ProgrammableScheduler(build_hierarchy(spec))
            for _ in range(40):
                scheduler.enqueue(Packet(flow="A", length=1000))
                for i in range(right_flows):
                    scheduler.enqueue(Packet(flow=f"R{i}", length=1000))
            window = scheduler.drain()[:40]
            return sum(1 for p in window if p.flow == "A") / len(window)

        assert left_fraction(1) == pytest.approx(0.1, abs=0.03)
        assert left_fraction(4) == pytest.approx(0.1, abs=0.03)

    def test_single_node_wfq_tree(self):
        scheduler = ProgrammableScheduler(build_wfq_tree({"A": 1.0, "B": 2.0}))
        for _ in range(9):
            scheduler.enqueue(Packet(flow="A", length=1000))
            scheduler.enqueue(Packet(flow="B", length=1000))
        window = [p.flow for p in scheduler.drain()][:9]
        assert window.count("B") == 6
        assert window.count("A") == 3

    def test_arrivals_in_one_class_do_not_reorder_the_other_class(self):
        """Class isolation: a burst of Right-class arrivals changes how often
        Right is scheduled, but never the internal order of Left's buffered
        packets (and vice versa)."""
        scheduler = ProgrammableScheduler(build_fig3_tree())
        left_packets = [
            Packet(flow=flow, length=1000, fields={"tag": f"l{i}"})
            for i, flow in enumerate(["A", "B", "A", "B"])
        ]
        for packet in left_packets:
            scheduler.enqueue(packet)
        # Now a large burst of Right-class traffic arrives.
        for _ in range(20):
            scheduler.enqueue(Packet(flow="C", length=1000))
            scheduler.enqueue(Packet(flow="D", length=1000))
        drained = scheduler.drain()
        # Every Left packet is eventually served and the within-flow order of
        # the packets buffered *before* the burst is untouched.
        a_order = [p.get("tag") for p in drained if p.flow == "A"]
        b_order = [p.get("tag") for p in drained if p.flow == "B"]
        assert a_order == ["l0", "l2"]
        assert b_order == ["l1", "l3"]
