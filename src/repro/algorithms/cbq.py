"""Class-Based Queueing (Section 3.4, item 5).

CBQ first schedules among classes based on a priority assigned to each
class, then uses fair queueing among packets within a class.  The paper
programs it as a two-level PIFO tree: the root runs strict priority over
class references and each class node runs WFQ/STFQ over its flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.backend import BackendSpec
from ..core.predicates import FlowIn
from ..core.tree import ScheduleTree, TreeNode
from .stfq import STFQTransaction
from .strict_priority import ClassPriorityTransaction


@dataclass
class CBQClass:
    """One CBQ class: a priority plus the flows it serves.

    Attributes
    ----------
    name:
        Class name.
    priority:
        Strict priority of the class (lower = scheduled first).
    flows:
        Mapping from flow identifier to its fair-queueing weight within the
        class.
    """

    name: str
    priority: int
    flows: Mapping[str, float] = field(default_factory=dict)


def build_cbq_tree(
    classes: Sequence[CBQClass],
    root_name: str = "CBQ",
    pifo_backend: BackendSpec = None,
) -> ScheduleTree:
    """Build the two-level CBQ tree (inter-class priority, intra-class WFQ)."""
    priorities = {cbq_class.name: cbq_class.priority for cbq_class in classes}
    root = TreeNode(
        name=root_name,
        scheduling=ClassPriorityTransaction(priorities),
    )
    for cbq_class in classes:
        root.add_child(
            TreeNode(
                name=cbq_class.name,
                predicate=FlowIn(cbq_class.flows),
                scheduling=STFQTransaction(weights=dict(cbq_class.flows)),
            )
        )
    return ScheduleTree(root, pifo_backend=pifo_backend)
