"""Compiled programs must behave like the hand-written algorithm classes.

The same scheduling algorithms exist twice in the library: hand-written
transaction classes in :mod:`repro.algorithms` and program text in
:mod:`repro.lang.programs`.  These tests drive both with identical packet
sequences (including hypothesis-generated ones) and require identical ranks,
send times and departure orders — the strongest evidence that the language
implements the paper's figures faithfully.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Packet, ProgrammableScheduler, TransactionContext, single_node_tree
from repro.algorithms import (
    LSTFTransaction,
    MinRateTransaction,
    STFQTransaction,
    SRPTTransaction,
    StopAndGoShapingTransaction,
    TokenBucketShapingTransaction,
)
from repro.exceptions import TransactionError
from repro.lang import RuntimeLangError, compile_scheduling_program, compile_shaping_program
from repro.lang.programs import (
    DEFAULT_FACTORIES,
    PROGRAM_SOURCES,
    fine_grained_program,
    lstf_program,
    min_rate_program,
    stfq_program,
    stop_and_go_program,
    token_bucket_program,
)


def make_ctx(flow, length, now=0.0):
    return TransactionContext(now=now, node="n", element_flow=flow, element_length=length)


# --------------------------------------------------------------------------- #
# STFQ (Figure 1)                                                             #
# --------------------------------------------------------------------------- #
class TestSTFQEquivalence:
    def make_pair(self, weights=None):
        weights = weights or {}
        return (
            STFQTransaction(weights=weights),
            stfq_program(weights=weights),
        )

    def test_single_flow_ranks_match(self):
        hand, compiled = self.make_pair()
        for i in range(20):
            packet = Packet(flow="a", length=1000)
            ctx = make_ctx("a", 1000)
            assert hand(packet, ctx) == compiled(packet, make_ctx("a", 1000))

    def test_two_flows_with_weights(self):
        weights = {"gold": 4.0, "bronze": 1.0}
        hand, compiled = self.make_pair(weights)
        sequence = ["gold", "bronze", "gold", "gold", "bronze", "gold", "bronze"]
        for flow in sequence:
            packet = Packet(flow=flow, length=1500)
            assert hand(packet, make_ctx(flow, 1500)) == pytest.approx(
                compiled(packet, make_ctx(flow, 1500))
            )

    def test_dequeue_side_virtual_time_update(self):
        hand, compiled = self.make_pair()
        packet = Packet(flow="a", length=1000)
        hand(packet, make_ctx("a", 1000))
        compiled(packet, make_ctx("a", 1000))
        # Simulate dequeuing an element with rank 123: both must advance
        # virtual_time identically.
        ctx = TransactionContext(now=0.0, node="n", element_flow="a",
                                 element_length=1000, extras={"rank": 123.0})
        hand.on_dequeue(packet, ctx)
        compiled.on_dequeue(packet, ctx)
        assert hand.state["virtual_time"] == compiled.state["virtual_time"] == 123.0

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d"]),
                st.integers(min_value=64, max_value=9000),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_property_identical_ranks_on_random_sequences(self, arrivals):
        weights = {"a": 1.0, "b": 2.0, "c": 0.5, "d": 4.0}
        hand, compiled = self.make_pair(weights)
        for flow, length in arrivals:
            packet = Packet(flow=flow, length=length)
            rank_hand = hand(packet, make_ctx(flow, length))
            rank_prog = compiled(packet, make_ctx(flow, length))
            assert rank_prog == pytest.approx(rank_hand)

    def test_full_scheduler_departure_order_matches(self):
        weights = {"a": 3.0, "b": 1.0}
        hand_sched = ProgrammableScheduler(single_node_tree(STFQTransaction(weights=weights)))
        prog_sched = ProgrammableScheduler(single_node_tree(stfq_program(weights=weights)))
        packets = []
        for i in range(30):
            flow = "a" if i % 3 else "b"
            packets.append((flow, 1000 + (i % 5) * 100))
        for flow, length in packets:
            hand_sched.enqueue(Packet(flow=flow, length=length))
            prog_sched.enqueue(Packet(flow=flow, length=length))
        hand_order = [(p.flow, p.length) for p in hand_sched.drain()]
        prog_order = [(p.flow, p.length) for p in prog_sched.drain()]
        assert hand_order == prog_order


# --------------------------------------------------------------------------- #
# Token bucket (Figure 4c)                                                    #
# --------------------------------------------------------------------------- #
class TestTokenBucketEquivalence:
    RATE_BPS = 10e6
    BURST = 3000.0

    def make_pair(self):
        hand = TokenBucketShapingTransaction(rate_bps=self.RATE_BPS, burst_bytes=self.BURST)
        compiled = token_bucket_program(
            rate_bytes_per_s=self.RATE_BPS / 8.0, burst_bytes=self.BURST
        )
        return hand, compiled

    def test_burst_then_spacing(self):
        hand, compiled = self.make_pair()
        now = 0.0
        for i in range(10):
            packet = Packet(flow="r", length=1500)
            ctx_h = make_ctx("r", 1500, now)
            ctx_c = make_ctx("r", 1500, now)
            assert hand(packet, ctx_h) == pytest.approx(compiled(packet, ctx_c))

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
                st.integers(min_value=64, max_value=9000),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_property_identical_send_times(self, gaps_and_lengths):
        hand, compiled = self.make_pair()
        now = 0.0
        for gap, length in gaps_and_lengths:
            now += gap
            packet = Packet(flow="r", length=length)
            send_hand = hand(packet, make_ctx("r", length, now))
            send_prog = compiled(packet, make_ctx("r", length, now))
            assert send_prog == pytest.approx(send_hand)
            assert send_prog >= now - 1e-12

    def test_state_trajectories_match(self):
        hand, compiled = self.make_pair()
        times = [0.0, 0.0001, 0.0002, 0.01, 0.0101, 0.5]
        for now in times:
            packet = Packet(flow="r", length=1200)
            hand(packet, make_ctx("r", 1200, now))
            compiled(packet, make_ctx("r", 1200, now))
        assert compiled.state["tokens"] == pytest.approx(hand.state["tokens"])
        assert compiled.state["last_time"] == pytest.approx(hand.state["last_time"])


# --------------------------------------------------------------------------- #
# LSTF (Figure 6)                                                             #
# --------------------------------------------------------------------------- #
class TestLSTFEquivalence:
    def test_rank_is_decremented_slack(self):
        hand = LSTFTransaction()
        compiled = lstf_program()
        packet_h = Packet(flow="a", length=500, fields={"slack": 10.0, "prev_wait_time": 3.0})
        packet_c = Packet(flow="a", length=500, fields={"slack": 10.0, "prev_wait_time": 3.0})
        assert hand(packet_h, make_ctx("a", 500)) == compiled(packet_c, make_ctx("a", 500)) == 7.0

    def test_slack_written_back_to_packet(self):
        compiled = lstf_program()
        packet = Packet(flow="a", length=500, fields={"slack": 10.0, "prev_wait_time": 4.0})
        compiled(packet, make_ctx("a", 500))
        assert packet.get("slack") == 6.0

    def test_missing_slack_raises(self):
        compiled = lstf_program()
        packet = Packet(flow="a", length=500)
        with pytest.raises((RuntimeLangError, TransactionError)):
            compiled(packet, make_ctx("a", 500))

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_property_departure_order_matches(self, slack_wait_pairs):
        hand_sched = ProgrammableScheduler(single_node_tree(LSTFTransaction()))
        prog_sched = ProgrammableScheduler(single_node_tree(lstf_program()))
        for index, (slack, wait) in enumerate(slack_wait_pairs):
            fields = {"slack": slack, "prev_wait_time": wait, "index": index}
            hand_sched.enqueue(Packet(flow="f", length=100, fields=dict(fields)))
            prog_sched.enqueue(Packet(flow="f", length=100, fields=dict(fields)))
        hand_order = [p.get("index") for p in hand_sched.drain()]
        prog_order = [p.get("index") for p in prog_sched.drain()]
        assert hand_order == prog_order


# --------------------------------------------------------------------------- #
# Stop-and-Go (Figure 7)                                                      #
# --------------------------------------------------------------------------- #
class TestStopAndGoEquivalence:
    FRAME = 0.001

    def test_release_at_frame_end(self):
        hand = StopAndGoShapingTransaction(frame_length=self.FRAME)
        compiled = stop_and_go_program(frame_length=self.FRAME)
        # Arrivals inside consecutive frames (never idle for a whole frame),
        # where the paper's single-if update and the generalised while-loop
        # update agree.
        arrival_times = [0.0, 0.0002, 0.0009, 0.0011, 0.0015, 0.0021, 0.0028]
        for now in arrival_times:
            packet = Packet(flow="s", length=200)
            send_hand = hand(packet, make_ctx("s", 200, now))
            send_prog = compiled(packet, make_ctx("s", 200, now))
            assert send_prog == pytest.approx(send_hand)
            assert send_prog >= now

    def test_all_packets_in_a_frame_share_a_release_time(self):
        compiled = stop_and_go_program(frame_length=self.FRAME)
        releases = set()
        for now in (0.0, 0.0001, 0.0004, 0.0009):
            packet = Packet(flow="s", length=200)
            releases.add(compiled(packet, make_ctx("s", 200, now)))
        assert len(releases) == 1

    def test_frame_advances_monotonically(self):
        compiled = stop_and_go_program(frame_length=self.FRAME)
        previous = 0.0
        for now in (0.0, 0.0005, 0.0012, 0.0024, 0.0036, 0.0048):
            packet = Packet(flow="s", length=200)
            release = compiled(packet, make_ctx("s", 200, now))
            assert release >= previous
            previous = release


# --------------------------------------------------------------------------- #
# Minimum rate guarantees (Figure 8)                                          #
# --------------------------------------------------------------------------- #
class TestMinRateEquivalence:
    RATE_BPS = 8e6  # 1 MB/s
    BURST = 3000.0

    def test_single_flow_priority_flips_match(self):
        hand = MinRateTransaction(min_rates_bps={"g": self.RATE_BPS},
                                  burst_bytes=self.BURST)
        compiled = min_rate_program(
            min_rate_bytes_per_s=self.RATE_BPS / 8.0, burst_bytes=self.BURST
        )
        # Back-to-back packets exhaust the bucket (rank flips 0 -> 1); a long
        # idle period refills it (rank returns to 0).
        schedule = [0.0, 0.0001, 0.0002, 0.0003, 0.0004, 0.0005, 0.5, 0.5001]
        hand_ranks, prog_ranks = [], []
        for now in schedule:
            packet = Packet(flow="g", length=1500)
            hand_ranks.append(hand(packet, make_ctx("g", 1500, now)))
            prog_ranks.append(compiled(packet, make_ctx("g", 1500, now)))
        assert prog_ranks == hand_ranks
        assert 0 in prog_ranks and 1 in prog_ranks

    def test_ranks_are_binary(self):
        compiled = min_rate_program(min_rate_bytes_per_s=1e6, burst_bytes=3000.0)
        for i in range(50):
            packet = Packet(flow="g", length=1500)
            rank = compiled(packet, make_ctx("g", 1500, i * 1e-4))
            assert rank in (0, 1)


# --------------------------------------------------------------------------- #
# Fine-grained priorities (Section 3.4)                                       #
# --------------------------------------------------------------------------- #
class TestFineGrainedEquivalence:
    def test_srpt_matches_hand_written(self):
        hand = SRPTTransaction()
        compiled = fine_grained_program("remaining_size")
        for remaining in (100, 5000, 1, 250000):
            packet = Packet(flow="x", length=1500, fields={"remaining_size": remaining})
            assert hand(packet, make_ctx("x", 1500)) == compiled(packet, make_ctx("x", 1500))

    def test_invalid_field_name_rejected(self):
        with pytest.raises(ValueError):
            fine_grained_program("not a valid identifier")


# --------------------------------------------------------------------------- #
# Construction-time checks                                                    #
# --------------------------------------------------------------------------- #
class TestCompilationChecks:
    def test_scheduling_program_must_set_rank(self):
        compiled = compile_scheduling_program("x = 1")
        with pytest.raises(RuntimeLangError):
            compiled(Packet(flow="a", length=100), make_ctx("a", 100))

    def test_shaping_program_must_set_send_time_or_rank(self):
        compiled = compile_shaping_program("x = 1")
        with pytest.raises(RuntimeLangError):
            compiled(Packet(flow="a", length=100), make_ctx("a", 100))

    def test_require_line_rate_accepts_paper_programs(self):
        transaction = compile_scheduling_program(
            PROGRAM_SOURCES["stfq"],
            state={"virtual_time": 0.0, "last_finish": {}},
            flow_attrs={"weight": lambda flow: 1.0},
            require_line_rate=True,
        )
        report = transaction.pipeline_report()
        assert report.feasible

    def test_reset_restores_initial_state(self):
        compiled = stfq_program()
        packet = Packet(flow="a", length=1000)
        compiled(packet, make_ctx("a", 1000))
        assert compiled.state["last_finish"]
        compiled.reset()
        assert compiled.state["last_finish"] == {}
        assert compiled.state["virtual_time"] == 0.0

    def test_reset_does_not_share_table_between_instances(self):
        first = stfq_program()
        second = stfq_program()
        first(Packet(flow="a", length=1000), make_ctx("a", 1000))
        assert second.state["last_finish"] == {}

    def test_default_factories_build_working_transactions(self):
        for name, factory in DEFAULT_FACTORIES.items():
            transaction = factory()
            report = transaction.pipeline_report()
            assert report.feasible, name

    def test_describe_mentions_program_name(self):
        assert "stfq" in stfq_program().describe()
