"""Priority Flow Control (PFC) integration (Section 6.2).

PFC lets a downstream switch pause specific flows (or priority classes) on
its upstream neighbour.  The paper integrates PFC into the PIFO design by
*masking* paused flows in the flow scheduler during dequeue and unmasking
them on resume — paused packets stay buffered, they simply become invisible
to the scheduler.

:class:`PFCController` tracks the pause state and
:class:`PFCFilteredScheduler` wraps any scheduler, applying the mask at
dequeue time.  The wrapper holds back (and later re-offers) head elements
belonging to paused flows, which behaviourally matches the hardware masking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..core.packet import Packet


class PFCController:
    """Tracks which flows (or priority classes) are currently paused."""

    def __init__(self) -> None:
        self._paused_flows: Set[str] = set()
        self._paused_priorities: Set[int] = set()
        self.pause_messages = 0
        self.resume_messages = 0

    # -- control-plane messages ---------------------------------------------------
    def pause_flow(self, flow: str) -> None:
        self._paused_flows.add(flow)
        self.pause_messages += 1

    def resume_flow(self, flow: str) -> None:
        self._paused_flows.discard(flow)
        self.resume_messages += 1

    def pause_priority(self, priority: int) -> None:
        self._paused_priorities.add(priority)
        self.pause_messages += 1

    def resume_priority(self, priority: int) -> None:
        self._paused_priorities.discard(priority)
        self.resume_messages += 1

    # -- queries ---------------------------------------------------------------------
    def is_paused(self, packet: Packet) -> bool:
        return (
            packet.flow in self._paused_flows
            or packet.priority in self._paused_priorities
        )

    def paused_flows(self) -> Set[str]:
        return set(self._paused_flows)


class PFCFilteredScheduler:
    """Wrap a scheduler so paused flows are never handed to the link.

    Dequeued packets belonging to paused flows are parked in a side list and
    re-offered (in their original dequeue order) once their flow resumes —
    the software analogue of masking entries in the flow scheduler.
    """

    def __init__(self, scheduler, controller: Optional[PFCController] = None) -> None:
        self.scheduler = scheduler
        self.controller = controller if controller is not None else PFCController()
        self._parked: List[Packet] = []

    # -- scheduler interface ------------------------------------------------------
    def enqueue(self, packet: Packet, now: float = 0.0) -> bool:
        return self.scheduler.enqueue(packet, now=now)

    def dequeue(self, now: float = 0.0) -> Optional[Packet]:
        # First serve any previously parked packet whose flow has resumed.
        for index, packet in enumerate(self._parked):
            if not self.controller.is_paused(packet):
                return self._parked.pop(index)
        # Otherwise pull from the underlying scheduler, parking paused heads.
        while True:
            packet = self.scheduler.dequeue(now=now)
            if packet is None:
                return None
            if self.controller.is_paused(packet):
                self._parked.append(packet)
                continue
            return packet

    def next_shaping_release(self) -> Optional[float]:
        if hasattr(self.scheduler, "next_shaping_release"):
            return self.scheduler.next_shaping_release()
        return None

    def __len__(self) -> int:
        return len(self.scheduler) + len(self._parked)

    @property
    def parked_packets(self) -> int:
        """Packets currently held back by PFC."""
        return len(self._parked)
