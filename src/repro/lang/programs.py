"""The paper's transactions, written in the transaction language.

Each ``*_SOURCE`` constant is the program text of one figure, kept as close
to the paper's listing as the language allows (the figures themselves mix
Python-ish and C-ish syntax; the language accepts both styles).  The
factory functions below compile each program into a ready-to-use
transaction with the right state, parameters and flow attributes.

These are used three ways:

* as a programmability demonstration (the same algorithms exist hand-written
  in :mod:`repro.algorithms`; equivalence between the two is tested),
* as input to the Domino-style atom analysis (Section 4.1), and
* by the examples and the CLI to show end-to-end "program text in,
  scheduler out".
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from .bridge import (
    CompiledSchedulingTransaction,
    CompiledShapingTransaction,
    compile_scheduling_program,
    compile_shaping_program,
)

# --------------------------------------------------------------------------- #
# Figure 1 — STFQ (the WFQ approximation used throughout the paper)           #
# --------------------------------------------------------------------------- #
STFQ_SOURCE = """
// Figure 1: scheduling transaction for STFQ
f = flow(p)
if f in last_finish
    p.start = max(virtual_time, last_finish[f])
else
    p.start = virtual_time
last_finish[f] = p.start + p.length / f.weight
p.rank = p.start
"""

#: Dequeue-side virtual-time update STFQ needs (Section 7 discusses why this
#: state must be maintained at the switch).
STFQ_DEQUEUE_SOURCE = """
if dequeued_rank > virtual_time
    virtual_time = dequeued_rank
"""

# --------------------------------------------------------------------------- #
# Figure 4c — Token Bucket Filter (shaping)                                   #
# --------------------------------------------------------------------------- #
TOKEN_BUCKET_SOURCE = """
// Figure 4c: shaping transaction for TBF_Right
tokens = min(tokens + r * (now - last_time), B)
if p.length <= tokens
    p.send_time = now
else
    p.send_time = now + (p.length - tokens) / r
tokens = tokens - p.length
last_time = now
p.rank = p.send_time
"""

# --------------------------------------------------------------------------- #
# Figure 6 — Least Slack-Time First                                           #
# --------------------------------------------------------------------------- #
LSTF_SOURCE = """
// Figure 6: scheduling transaction for LSTF
p.slack = p.slack - p.prev_wait_time;
p.rank = p.slack;
"""

# --------------------------------------------------------------------------- #
# Figure 7 — Stop-and-Go Queueing (shaping)                                   #
# --------------------------------------------------------------------------- #
STOP_AND_GO_SOURCE = """
// Figure 7: shaping transaction for Stop-and-Go Queueing
if (now >= frame_end_time):
    frame_begin_time = frame_end_time
    frame_end_time = frame_begin_time + T
p.rank = frame_end_time
"""

# --------------------------------------------------------------------------- #
# Figure 8 — minimum rate guarantees                                          #
# --------------------------------------------------------------------------- #
MIN_RATE_SOURCE = """
// Figure 8: scheduling transaction for min. rate guarantees
// Replenish tokens
tb = tb + min_rate * (now - last_time);
if (tb > BURST_SIZE) tb = BURST_SIZE;
// Check if we have enough tokens
if (tb > p.size):
    p.over_min = 0;  // under min. rate
    tb = tb - p.size;
else:
    p.over_min = 1;  // over min. rate
last_time = now;
p.rank = p.over_min;
"""

# --------------------------------------------------------------------------- #
# Section 3.4 one-liners                                                      #
# --------------------------------------------------------------------------- #
FIFO_SOURCE = """
// First-In First-Out: rank is the wall-clock arrival time
p.rank = now
"""

STRICT_PRIORITY_SOURCE = """
// Strict priority: rank is a host-set priority field (IP TOS)
p.rank = p.priority
"""

SJF_SOURCE = """
// Shortest Job First: rank is the flow size set by the end host
p.rank = p.flow_size
"""

SRPT_SOURCE = """
// Shortest Remaining Processing Time: rank is the remaining flow size
p.rank = p.remaining_size
"""

EDF_SOURCE = """
// Earliest Deadline First: rank is the time until the packet's deadline
p.rank = p.deadline
"""

LAS_SOURCE = """
// Least Attained Service, switch-maintained: rank is the service the
// packet's flow has received so far
f = flow(p)
if f in attained
    attained[f] = attained[f] + p.length
else
    attained[f] = p.length
p.rank = attained[f]
"""

#: All named program sources, for the CLI and for sweep-style tests.
PROGRAM_SOURCES: Dict[str, str] = {
    "stfq": STFQ_SOURCE,
    "token_bucket": TOKEN_BUCKET_SOURCE,
    "lstf": LSTF_SOURCE,
    "stop_and_go": STOP_AND_GO_SOURCE,
    "min_rate": MIN_RATE_SOURCE,
    "fifo": FIFO_SOURCE,
    "strict_priority": STRICT_PRIORITY_SOURCE,
    "sjf": SJF_SOURCE,
    "srpt": SRPT_SOURCE,
    "edf": EDF_SOURCE,
    "las": LAS_SOURCE,
}

#: State-variable declarations each program needs (names and initial values).
PROGRAM_STATE: Dict[str, Dict[str, object]] = {
    "stfq": {"virtual_time": 0.0, "last_finish": {}},
    "token_bucket": {"tokens": 0.0, "last_time": 0.0},
    "lstf": {},
    "stop_and_go": {"frame_begin_time": 0.0, "frame_end_time": 0.0},
    "min_rate": {"tb": 0.0, "last_time": 0.0},
    "fifo": {},
    "strict_priority": {},
    "sjf": {},
    "srpt": {},
    "edf": {},
    "las": {"attained": {}},
}

#: Which programs are shaping transactions (the rest are scheduling).
SHAPING_PROGRAMS = frozenset({"token_bucket", "stop_and_go"})


# --------------------------------------------------------------------------- #
# Factories                                                                   #
# --------------------------------------------------------------------------- #
def stfq_program(
    weights: Optional[Mapping[str, float]] = None,
    default_weight: float = 1.0,
    backend: Optional[str] = None,
) -> CompiledSchedulingTransaction:
    """Figure 1's STFQ as a compiled program, with per-flow weights."""
    weight_table = dict(weights or {})

    def weight_of(flow: object) -> float:
        return float(weight_table.get(flow, default_weight))

    return compile_scheduling_program(
        STFQ_SOURCE,
        state=PROGRAM_STATE["stfq"],
        flow_attrs={"weight": weight_of},
        dequeue_source=STFQ_DEQUEUE_SOURCE,
        name="stfq",
        backend=backend,
    )


def token_bucket_program(
    rate_bytes_per_s: float,
    burst_bytes: float,
    start_full: bool = True,
    backend: Optional[str] = None,
) -> CompiledShapingTransaction:
    """Figure 4c's token bucket as a compiled shaping program.

    ``rate_bytes_per_s`` is the token fill rate ``r`` and ``burst_bytes`` the
    bucket depth ``B``; both are in bytes to match ``p.length``.
    """
    if rate_bytes_per_s <= 0:
        raise ValueError("rate_bytes_per_s must be positive")
    if burst_bytes <= 0:
        raise ValueError("burst_bytes must be positive")
    state = dict(PROGRAM_STATE["token_bucket"])
    state["tokens"] = float(burst_bytes) if start_full else 0.0
    return compile_shaping_program(
        TOKEN_BUCKET_SOURCE,
        state=state,
        params={"r": float(rate_bytes_per_s), "B": float(burst_bytes)},
        name="token_bucket",
        backend=backend,
    )


def lstf_program(backend: Optional[str] = None) -> CompiledSchedulingTransaction:
    """Figure 6's LSTF as a compiled program.

    Packets must carry ``slack`` and ``prev_wait_time`` fields, set by the
    end host and the upstream switches respectively.
    """
    return compile_scheduling_program(LSTF_SOURCE, name="lstf", backend=backend)


def stop_and_go_program(
    frame_length: float, backend: Optional[str] = None
) -> CompiledShapingTransaction:
    """Figure 7's Stop-and-Go shaping program with frame length ``T``."""
    if frame_length <= 0:
        raise ValueError("frame_length must be positive")
    return compile_shaping_program(
        STOP_AND_GO_SOURCE,
        state=dict(PROGRAM_STATE["stop_and_go"]),
        params={"T": float(frame_length)},
        name="stop_and_go",
        backend=backend,
    )


def min_rate_program(
    min_rate_bytes_per_s: float,
    burst_bytes: float,
    start_full: bool = True,
    backend: Optional[str] = None,
) -> CompiledSchedulingTransaction:
    """Figure 8's minimum-rate-guarantee program for the root of the 2-level
    tree described in Section 3.3."""
    if min_rate_bytes_per_s <= 0:
        raise ValueError("min_rate_bytes_per_s must be positive")
    if burst_bytes <= 0:
        raise ValueError("burst_bytes must be positive")
    state = dict(PROGRAM_STATE["min_rate"])
    state["tb"] = float(burst_bytes) if start_full else 0.0
    return compile_scheduling_program(
        MIN_RATE_SOURCE,
        state=state,
        params={
            "min_rate": float(min_rate_bytes_per_s),
            "BURST_SIZE": float(burst_bytes),
        },
        name="min_rate",
        backend=backend,
    )


def fifo_program(backend: Optional[str] = None) -> CompiledSchedulingTransaction:
    """First-In First-Out (rank = wall-clock arrival)."""
    return compile_scheduling_program(FIFO_SOURCE, name="fifo", backend=backend)


def strict_priority_program(
    backend: Optional[str] = None,
) -> CompiledSchedulingTransaction:
    """Strict priority (rank = the packet's priority field)."""
    return compile_scheduling_program(
        STRICT_PRIORITY_SOURCE, name="strict_priority", backend=backend
    )


def fine_grained_program(
    field: str, backend: Optional[str] = None
) -> CompiledSchedulingTransaction:
    """A Section 3.4 fine-grained priority program: rank = ``p.<field>``.

    ``field`` is typically ``flow_size`` (SJF), ``remaining_size`` (SRPT) or
    ``deadline`` (EDF).
    """
    if not field.isidentifier():
        raise ValueError(f"invalid packet field name {field!r}")
    source = f"p.rank = p.{field}\n"
    return compile_scheduling_program(
        source, name=f"rank-from-{field}", backend=backend
    )


def las_program(backend: Optional[str] = None) -> CompiledSchedulingTransaction:
    """Least Attained Service with switch-maintained per-flow counters."""
    return compile_scheduling_program(
        LAS_SOURCE, state=dict(PROGRAM_STATE["las"]), name="las", backend=backend
    )


#: Factory lookup used by the CLI: name -> zero-argument constructor with
#: representative parameters.
DEFAULT_FACTORIES: Dict[str, Callable[[], object]] = {
    "stfq": stfq_program,
    "token_bucket": lambda: token_bucket_program(
        rate_bytes_per_s=1.25e6, burst_bytes=3000.0
    ),
    "lstf": lstf_program,
    "stop_and_go": lambda: stop_and_go_program(frame_length=1e-3),
    "min_rate": lambda: min_rate_program(
        min_rate_bytes_per_s=1.25e6, burst_bytes=3000.0
    ),
    "fifo": fifo_program,
    "strict_priority": strict_priority_program,
    "sjf": lambda: fine_grained_program("flow_size"),
    "srpt": lambda: fine_grained_program("remaining_size"),
    "edf": lambda: fine_grained_program("deadline"),
    "las": las_program,
}
