"""Tests for the PIFO mesh, conflict arbitration and the tree compiler."""

from __future__ import annotations

import pytest

from repro.algorithms import build_deep_hierarchy, build_fig3_tree, build_fig4_tree
from repro.exceptions import CompilationError
from repro.hardware import (
    ConflictArbiter,
    MeshCompiler,
    NextHop,
    PIFOBlock,
    PIFOMesh,
    compile_tree,
)


class TestPIFOMesh:
    def test_add_blocks_and_next_hops(self):
        mesh = PIFOMesh()
        mesh.add_block(PIFOBlock(name="a"))
        mesh.add_block(PIFOBlock(name="b"))
        mesh.set_next_hop("a", 0, NextHop(operation="dequeue", target_block="b"))
        hop = mesh.next_hop("a", 0)
        assert hop.operation == "dequeue"
        assert hop.target_block == "b"

    def test_duplicate_block_rejected(self):
        mesh = PIFOMesh()
        mesh.add_block(PIFOBlock(name="a"))
        with pytest.raises(CompilationError):
            mesh.add_block(PIFOBlock(name="a"))

    def test_next_hop_to_unknown_block_rejected(self):
        mesh = PIFOMesh()
        mesh.add_block(PIFOBlock(name="a"))
        with pytest.raises(CompilationError):
            mesh.set_next_hop("a", 0, NextHop(operation="enqueue", target_block="ghost"))

    def test_invalid_next_hop_operation(self):
        with pytest.raises(CompilationError):
            NextHop(operation="reorder")
        with pytest.raises(CompilationError):
            NextHop(operation="dequeue")  # needs a target

    def test_wiring_formula(self):
        mesh = PIFOMesh()
        for name in "abcde":
            mesh.add_block(PIFOBlock(name=name))
        assert mesh.wire_sets() == 20
        assert mesh.total_mesh_wires() == 20 * 106


class TestConflictArbiter:
    def test_scheduling_beats_shaping_in_same_cycle(self):
        arbiter = ConflictArbiter()
        arbiter.request("root", "shaping", "TBF release")
        arbiter.request("root", "scheduling", "packet arrival")
        granted = arbiter.arbitrate_cycle()
        assert granted["root"].kind == "scheduling"
        assert arbiter.deferred_shaping == 1
        # The shaping enqueue goes through on the next cycle.
        granted = arbiter.arbitrate_cycle()
        assert granted["root"].kind == "shaping"

    def test_independent_blocks_do_not_conflict(self):
        arbiter = ConflictArbiter()
        arbiter.request("b1", "scheduling")
        arbiter.request("b2", "shaping")
        granted = arbiter.arbitrate_cycle()
        assert set(granted) == {"b1", "b2"}
        assert arbiter.deferred_shaping == 0

    def test_sustained_conflicts_delay_shaping_by_many_cycles(self):
        arbiter = ConflictArbiter()
        # One shaping release contends with a scheduling enqueue every cycle.
        arbiter.request("root", "shaping")
        for _ in range(5):
            arbiter.request("root", "scheduling")
        cycles = arbiter.run_until_drained()
        assert cycles == 6
        assert arbiter.granted_shaping == 1
        assert arbiter.granted_scheduling == 5

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            ConflictArbiter().request("b", "other")


class TestCompiler:
    def test_hpfq_compiles_to_two_blocks(self):
        """Figure 10: HPFQ needs one block per tree level and no shaping
        blocks."""
        program = compile_tree(build_fig3_tree())
        assert program.block_count() == 2
        assert set(program.mesh.blocks) == {"sched_L0", "sched_L1"}
        root_slot = program.scheduling_assignment["Root"]
        hop = program.mesh.next_hop(root_slot.block, root_slot.logical_pifo)
        assert hop.operation == "dequeue"
        assert hop.target_block == "sched_L1"
        for leaf in ("Left", "Right"):
            slot = program.scheduling_assignment[leaf]
            assert program.mesh.next_hop(slot.block, slot.logical_pifo).operation == "transmit"

    def test_hierarchies_with_shaping_adds_a_block(self):
        """Figure 11: the shaping PIFO for TBF_Right lives in its own block
        whose next hop is an enqueue into the root's block."""
        program = compile_tree(build_fig4_tree())
        assert program.block_count() == 3
        assert "shape_L1" in program.mesh.blocks
        shaping_slot = program.shaping_assignment["Right"]
        hop = program.mesh.next_hop(shaping_slot.block, shaping_slot.logical_pifo)
        assert hop.operation == "enqueue"
        assert hop.target_block == "sched_L0"

    def test_five_level_hierarchy_fits_five_scheduling_blocks(self):
        program = compile_tree(build_deep_hierarchy(levels=5, fanout=2, flows_per_leaf=1))
        assert program.levels == 5
        assert program.block_count() == 5

    def test_block_budget_enforced(self):
        compiler = MeshCompiler(max_blocks=2)
        with pytest.raises(CompilationError):
            compiler.compile(build_fig4_tree())

    def test_logical_pifo_capacity_enforced(self):
        compiler = MeshCompiler(logical_pifos_per_block=4)
        tree = build_deep_hierarchy(levels=2, fanout=8, flows_per_leaf=1)
        with pytest.raises(CompilationError):
            compiler.compile(tree)

    def test_assignments_are_unique_slots(self):
        program = compile_tree(build_fig4_tree())
        slots = [(a.block, a.logical_pifo) for a in program.assignments()]
        assert len(slots) == len(set(slots))

    def test_describe_mentions_blocks(self):
        program = compile_tree(build_fig3_tree())
        assert "sched_L0" in program.describe()
