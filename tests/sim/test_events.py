"""Event-queue backends: lockstep equivalence and exact accounting.

The timing wheel (:class:`~repro.sim.events.TimingWheelQueue`) must be
*observationally identical* to the binary heap
(:class:`~repro.sim.events.EventQueue`): same ``(time, seq)`` pop order on
any schedule, including interleaved cancellations, aliased slots (times a
full wheel turn apart), far-horizon overflow, and pushes below the cursor.
Hypothesis drives randomized schedules through both backends in lockstep.

Plus the exact-length contract: ``len(queue)`` counts *live* events on
both backends — tombstones, cancel-after-fire, and compaction must never
skew it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.sim.events import EventQueue, TimingWheelQueue, make_event_queue
from repro.sim.simulator import Simulator

BACKENDS = {
    "heap": EventQueue,
    "wheel": TimingWheelQueue,
}


def _noop() -> None:
    pass


def drain(queue):
    order = []
    while queue:
        time, seq, _cb = queue.pop()
        order.append((time, seq))
    return order


# --------------------------------------------------------------------------- #
# Lockstep equivalence                                                         #
# --------------------------------------------------------------------------- #
#: An operation is (kind, value): push at a time offset, or cancel the
#: i-th pushed event (modulo pushes so far).
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("push"),
                  st.floats(min_value=0.0, max_value=0.1,
                            allow_nan=False, allow_infinity=False)),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    min_size=1, max_size=200,
)


class TestWheelHeapLockstep:
    @given(ops=ops_strategy)
    @settings(max_examples=200, deadline=None)
    def test_pop_order_identical(self, ops):
        """Any push/cancel/pop interleaving pops identically on both."""
        heap = EventQueue()
        wheel = TimingWheelQueue(tick=1e-3, slots=16)  # tiny: forces
        # aliasing and overflow on ordinary schedules
        heap_handles, wheel_handles = [], []
        for kind, value in ops:
            if kind == "push":
                heap_handles.append(heap.push(value, _noop))
                wheel_handles.append(wheel.push(value, _noop))
            elif kind == "cancel" and heap_handles:
                i = value % len(heap_handles)
                heap.cancel(heap_handles[i])
                wheel.cancel(wheel_handles[i])
            elif kind == "pop":
                assert bool(heap) == bool(wheel)
                if heap:
                    h = heap.pop()
                    w = wheel.pop()
                    assert (h[0], h[1]) == (w[0], w[1])
            assert len(heap) == len(wheel)
        assert drain(heap) == drain(wheel)

    @given(times=st.lists(
        st.floats(min_value=0.0, max_value=1e-3,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_simulator_runs_identically_on_both(self, times):
        """Full Simulator runs: same callback firing order per backend."""
        orders = {}
        for kind in ("heap", "wheel"):
            sim = Simulator(event_queue=kind)
            fired = []
            for i, t in enumerate(times):
                sim.schedule_at(t, lambda i=i: fired.append((sim.now, i)))
            sim.run()
            orders[kind] = fired
        assert orders["heap"] == orders["wheel"]

    def test_aliased_future_entry_never_jumps_the_queue(self):
        # With 16 slots of 1ms, t=0.001 and t=0.017 share a slot.
        wheel = TimingWheelQueue(tick=1e-3, slots=16)
        wheel.push(0.017, _noop)
        wheel.push(0.001, _noop)
        assert wheel.pop()[0] == 0.001
        assert wheel.pop()[0] == 0.017

    def test_push_below_cursor_after_peek(self):
        wheel = TimingWheelQueue(tick=1e-3, slots=16)
        wheel.push(0.010, _noop)
        assert wheel.peek_time() == 0.010  # advances the cursor
        wheel.push(0.002, _noop)           # earlier than the cursor
        assert wheel.pop()[0] == 0.002
        assert wheel.pop()[0] == 0.010


# --------------------------------------------------------------------------- #
# Exact length accounting                                                      #
# --------------------------------------------------------------------------- #
class TestExactLen:
    @pytest.mark.parametrize("kind", sorted(BACKENDS))
    def test_len_counts_live_events_only(self, kind):
        queue = BACKENDS[kind]()
        handles = [queue.push(i * 1e-6, _noop) for i in range(10)]
        assert len(queue) == 10
        for handle in handles[:4]:
            queue.cancel(handle)
        assert len(queue) == 6
        queue.cancel(handles[0])  # idempotent
        assert len(queue) == 6
        assert len(drain(queue)) == 6
        assert len(queue) == 0 and not queue

    @pytest.mark.parametrize("kind", sorted(BACKENDS))
    def test_cancel_after_fire_does_not_undercount(self, kind):
        queue = BACKENDS[kind]()
        first = queue.push(1e-6, _noop)
        queue.push(2e-6, _noop)
        queue.pop()            # fires `first`
        queue.cancel(first)    # stale cancel for an already-popped event
        assert len(queue) == 1
        assert bool(queue)
        queue.compact()
        assert len(queue) == 1

    @pytest.mark.parametrize("kind", sorted(BACKENDS))
    def test_compaction_preserves_order_and_len(self, kind):
        queue = BACKENDS[kind]()
        handles = [queue.push(i * 1e-6, _noop) for i in range(100)]
        for handle in handles[::2]:
            queue.cancel(handle)   # triggers compaction past the threshold
        assert len(queue) == 50
        times = [entry[0] for entry in
                 iter(lambda: queue.pop() if queue else None, None)]
        assert times == sorted(times) and len(times) == 50

    @pytest.mark.parametrize("kind", sorted(BACKENDS))
    def test_pop_empty_raises(self, kind):
        with pytest.raises(SimulationError):
            BACKENDS[kind]().pop()


class TestFactory:
    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_QUEUE", "wheel")
        assert isinstance(make_event_queue(), TimingWheelQueue)
        monkeypatch.delenv("REPRO_EVENT_QUEUE")
        assert isinstance(make_event_queue(), EventQueue)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_event_queue("splay")

    def test_simulator_reports_kind(self, monkeypatch):
        assert Simulator(event_queue="wheel").event_queue_kind == "wheel"
        monkeypatch.delenv("REPRO_EVENT_QUEUE", raising=False)
        assert Simulator().event_queue_kind == "heap"
