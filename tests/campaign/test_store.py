"""Tests for the JSONL result store."""

from __future__ import annotations

import json

import pytest

from repro.campaign import ResultStore, StoreError, strip_timing


def record(fingerprint: str, **extra) -> dict:
    payload = {"fingerprint": fingerprint, "delivered": 10,
               "wall_clock_s": 1.23, "worker_pid": 999}
    payload.update(extra)
    return payload


class TestResultStore:
    def test_append_and_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(record("aa"))
        store.append(record("bb"))
        loaded = store.load()
        assert [r["fingerprint"] for r in loaded] == ["aa", "bb"]
        assert len(store) == 2

    def test_missing_file_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "absent.jsonl")
        assert store.load() == []
        assert store.fingerprints() == set()
        assert not store.exists()

    def test_fingerprints(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(record("aa"))
        store.append(record("bb"))
        store.append({"no_fingerprint": True})
        assert store.fingerprints() == {"aa", "bb"}

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.append(record("aa"))
        with path.open("a") as handle:
            handle.write('{"fingerprint": "bb", "delivered"')  # interrupt
        assert [r["fingerprint"] for r in store.load()] == ["aa"]

    def test_append_after_torn_tail_truncates_it(self, tmp_path):
        # Appending after an interrupted write must not merge the new
        # record into the partial line (which would corrupt the store).
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.append(record("aa"))
        with path.open("a") as handle:
            handle.write('{"fingerprint": "bb", "delivered"')  # interrupt
        store.append(record("cc"))
        assert [r["fingerprint"] for r in store.load()] == ["aa", "cc"]
        store.append(record("dd"))  # the store stays fully parseable
        assert [r["fingerprint"] for r in store.load()] == ["aa", "cc", "dd"]

    def test_effective_records_dedupes_reruns_last_wins(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(record("aa", delivered=1))
        store.append(record("bb", delivered=5))
        store.append(record("aa", delivered=2))
        store.append({"no_fingerprint": True})
        effective = store.effective_records()
        assert [r.get("fingerprint") for r in effective] == ["bb", "aa", None]
        assert effective[1]["delivered"] == 2

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.append(record("aa"))
        with path.open("a") as handle:
            handle.write("garbage\n")
        store.append(record("bb"))
        with pytest.raises(StoreError, match="line 2"):
            store.load()

    def test_latest_by_fingerprint_keeps_last(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(record("aa", delivered=1))
        store.append(record("aa", delivered=2))
        assert store.latest_by_fingerprint()["aa"]["delivered"] == 2

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(record("aa"))
        store.clear()
        assert store.load() == []
        store.clear()  # idempotent on a missing file

    def test_records_are_canonical_json_lines(self, tmp_path):
        path = tmp_path / "r.jsonl"
        ResultStore(path).append({"b": 1, "a": 2})
        line = path.read_text().strip()
        assert line == json.dumps({"a": 2, "b": 1}, sort_keys=True,
                                  separators=(",", ":"))


class TestStripTiming:
    def test_removes_only_timing_fields(self):
        stripped = strip_timing(record("aa"))
        assert "wall_clock_s" not in stripped
        assert "worker_pid" not in stripped
        assert stripped["fingerprint"] == "aa"
        assert stripped["delivered"] == 10

    def test_does_not_mutate_input(self):
        original = record("aa")
        strip_timing(original)
        assert "wall_clock_s" in original
