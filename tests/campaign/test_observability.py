"""Observability integration across the campaign substrate.

Every execution path — serial runner, warm engine, lease-queue executor —
must (a) stamp resource capture fields into every store record, success
or failure, and (b) publish a live progress sidecar whose final counters
converge exactly with the store's contents.
"""

from __future__ import annotations

import pytest

from repro.campaign import (
    Campaign,
    CampaignRunner,
    LeaseQueue,
    ResultStore,
    record_is_ok,
    strip_timing,
)
from repro.campaign.runner import failure_record
from repro.campaign.spec import RunSpec
from repro.obs.progress import progress_path_for, read_progress
from repro.obs.resources import RESOURCE_FIELDS


def tiny_campaign() -> Campaign:
    return Campaign(
        name="obs_probe",
        title="small sweep for observability tests",
        scenarios=["fig6_chain"],
        pifo_backends=["sorted", "quantized"],
        lang_backends=[None],
        load_scales=[1.0],
        replicates=1,
    )


def assert_resourced(record):
    for field in RESOURCE_FIELDS:
        assert field in record, f"record lacks {field}: {sorted(record)}"
    assert record["rss_peak_bytes"] > 0
    assert record["cpu_user_s"] >= 0.0


class TestSerialRunner:
    @pytest.fixture(scope="class")
    def run(self, tmp_path_factory):
        store = ResultStore(tmp_path_factory.mktemp("obs") / "r.jsonl")
        report = CampaignRunner(tiny_campaign(), store, workers=1,
                                quick=True).run()
        return store, report

    def test_every_record_carries_resources(self, run):
        store, report = run
        records = store.load()
        assert records
        for record in records:
            assert_resourced(record)
            assert record["events"] > 0
            assert record["events_per_s"] > 0

    def test_events_survives_strip_timing(self, run):
        # events is a pure function of the spec, so determinism
        # comparisons keep it; the machine-dependent fields go.
        store, _ = run
        stripped = strip_timing(store.load()[0])
        assert "events" in stripped
        for field in ("rss_peak_bytes", "cpu_user_s", "cpu_sys_s",
                      "events_per_s", "wall_clock_s"):
            assert field not in stripped

    def test_progress_sidecar_converges_with_store(self, run):
        store, report = run
        progress = read_progress(progress_path_for(str(store.path)))
        assert progress is not None
        assert progress["state"] == "done"
        records = store.load()
        assert progress["done"] == progress["total"] == len(records)
        assert progress["ok"] == sum(record_is_ok(r) for r in records)
        assert progress["failed"] == 0


class TestEngineRunner:
    def test_engine_path_writes_progress_and_resources(self, tmp_path):
        store = ResultStore(tmp_path / "engine.jsonl")
        report = CampaignRunner(tiny_campaign(), store, workers=2,
                                quick=True).run()
        assert report.executed == tiny_campaign().size()
        for record in store.load():
            assert_resourced(record)
        progress = read_progress(progress_path_for(str(store.path)))
        assert progress["state"] == "done"
        assert progress["done"] == report.executed
        assert progress["workers"] == 2


class TestFailureRecords:
    def test_failure_record_has_same_resource_shape(self):
        spec = tiny_campaign().expand(quick=True)[0]
        record = failure_record(spec, "failed", RuntimeError("boom"),
                                attempts=1, wall_clock_s=0.1, trace="tb")
        for field in RESOURCE_FIELDS:
            assert field in record
        assert record["events"] == 0
        assert record["events_per_s"] == 0.0
        assert record["rss_peak_bytes"] > 0


class TestLeaseQueueExecutor:
    def test_executor_progress_file_and_resourced_segments(self, tmp_path):
        campaign = tiny_campaign()
        queue = LeaseQueue.initialize(
            tmp_path / "q", campaign.expand(quick=True),
            campaign=campaign.name, shard_size=2,
        )
        queue.work("exec-a")
        assert queue.drained()
        progress = read_progress(str(tmp_path / "q" / "progress_exec-a.json"))
        assert progress is not None
        assert progress["state"] == "done"
        assert progress["executor"] == "exec-a"
        records = list(queue.iter_merged_records())
        assert progress["done"] == progress["total"] == len(records)
        for record in records:
            assert_resourced(record)
