"""Declarative fabric scenarios: topology + traffic matrix + schedulers.

A :class:`Scenario` is a description, not a run: a topology builder, a list
of :class:`Demand` entries (the traffic matrix), one or more named
scheduler *variants* (e.g. ``{"SRPT": ..., "FIFO": ...}``) and a duration.
``Scenario.run()`` instantiates a fresh :class:`~repro.net.fabric.Fabric`
per variant, replays the demands, and returns a :class:`ScenarioResult`
per variant with per-flow delay aggregates, flow-completion times, packet
conservation counters and per-node/per-port switch stats — everything the
experiment registry and the CLI report need.

Scenarios register themselves in :data:`SCENARIOS` via :func:`register`,
the fabric-level analogue of the experiment registry in
:mod:`repro.reporting.experiments` (which wraps the built-in scenarios so
``repro run``/``repro list`` see them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.packet import Packet
from ..exceptions import TrafficError
from ..metrics.fct import FCTSummary, flow_completions_from_sink
from ..sim.simulator import Simulator
from ..traffic.distributions import web_search_flow_sizes
from ..traffic.flows import FlowSpec
from ..traffic.generators import (
    cbr_arrivals,
    flow_arrivals,
    lazy_merge_arrivals,
    onoff_arrivals,
    poisson_arrivals,
)
from .fabric import Fabric, SchedulerFactory
from .topology import Network

Arrival = Tuple[float, Packet]

#: Flows at or below this size count as "short" in FCT summaries, matching
#: the band the datacenter-transport literature (and the single-port
#: Section 3.4 benchmark) reports separately.
SHORT_FLOW_BYTES = 100_000


@dataclass
class Demand:
    """One entry of a scenario's traffic matrix.

    ``kind`` selects the generator:

    * ``"cbr"`` / ``"poisson"`` / ``"onoff"`` — a single long-lived flow at
      ``rate_bps`` from ``src`` to ``dst``;
    * ``"flows"`` — finite flows (Poisson arrivals, heavy-tailed sizes)
      offered at ``rate_bps`` aggregate load, packets tagged with the
      SJF/SRPT/LAS metadata — the FCT workload;
    * ``"explicit"`` — caller-provided ``(time, packet)`` pairs via
      ``arrivals`` (packets are stamped with ``src``/``dst``).  Pass a
      *callable* returning the pairs so every scheduler variant replays an
      identical fresh stream.
    """

    src: str
    dst: str
    rate_bps: float = 0.0
    kind: str = "cbr"
    flow: Optional[str] = None
    packet_size: int = 1500
    start_time: float = 0.0
    duration: Optional[float] = None
    seed: int = 0
    fields: Dict[str, Any] = field(default_factory=dict)
    arrivals: Optional[Iterable[Arrival]] = None

    def flow_name(self) -> str:
        return self.flow if self.flow is not None else f"{self.src}->{self.dst}"

    def build_arrivals(self, scenario_duration: float) -> Iterable[Arrival]:
        duration = (self.duration if self.duration is not None
                    else scenario_duration)
        if self.kind == "explicit":
            if self.arrivals is None:
                raise TrafficError("explicit demand needs an arrivals iterable")
            arrivals = self.arrivals() if callable(self.arrivals) else self.arrivals
            return self._address(arrivals)
        spec = FlowSpec(
            name=self.flow_name(),
            rate_bps=self.rate_bps,
            packet_size=self.packet_size,
            start_time=self.start_time,
            fields=dict(self.fields),
            src=self.src,
            dst=self.dst,
        )
        if self.kind == "cbr":
            return cbr_arrivals(spec, duration=duration)
        if self.kind == "poisson":
            return poisson_arrivals(spec, duration=duration, seed=self.seed)
        if self.kind == "onoff":
            return onoff_arrivals(spec, duration=duration, seed=self.seed)
        if self.kind == "flows":
            return self._address(flow_arrivals(
                f"{self.flow_name()}:",
                load_bps=self.rate_bps,
                duration=duration,
                size_distribution=web_search_flow_sizes(),
                packet_size=self.packet_size,
                seed=self.seed,
                src=self.src,
                dst=self.dst,
            ), fields=self.fields)
        raise TrafficError(f"unknown demand kind {self.kind!r}")

    def _address(self, arrivals: Iterable[Arrival],
                 fields: Optional[Dict[str, Any]] = None) -> Iterable[Arrival]:
        for time, packet in arrivals:
            if packet.src is None:
                packet.src = self.src
            if packet.dst is None:
                packet.dst = self.dst
            if fields:
                for key, value in fields.items():
                    packet.fields.setdefault(key, value)
            yield time, packet


@dataclass
class ScenarioResult:
    """Outcome of one scenario variant."""

    scenario: str
    variant: str
    duration: float
    conservation: Dict[str, int]
    #: flow label -> {packets, bytes, mean/max delay}
    flow_stats: Dict[str, Dict[str, Any]]
    #: Per-destination-host FCT summary over completed flows (``"flows"``
    #: demands only; ``None`` when nothing completed).
    fct: Optional[FCTSummary]
    #: FCT summary over short flows (<= :data:`SHORT_FLOW_BYTES`) — the band
    #: SRPT-style scheduling is judged on.
    fct_short: Optional[FCTSummary]
    stats_by_node: Dict[str, Dict]

    def delivered(self) -> int:
        return self.conservation["delivered"]

    def flow_delay(self, flow: str, which: str = "max") -> Optional[float]:
        stats = self.flow_stats.get(flow)
        return None if stats is None else stats.get(f"{which}_delay")


@dataclass
class Scenario:
    """A runnable fabric experiment description."""

    name: str
    title: str
    topology: Callable[[], Network]
    demands: List[Demand]
    #: Variant label -> scheduler factory ``(switch, port) -> scheduler``.
    variants: Mapping[str, SchedulerFactory]
    duration: float
    ecmp: bool = False
    keep_packets: bool = False
    quick_duration: Optional[float] = None
    paper_reference: str = ""
    notes: str = ""

    def run(self, quick: bool = False, pifo_backend=None,
            variant: Optional[str] = None) -> Dict[str, ScenarioResult]:
        """Run each scheduler variant on a fresh fabric; results by label."""
        duration = (self.quick_duration if quick and self.quick_duration
                    else self.duration)
        selected = ([variant] if variant is not None else list(self.variants))
        results: Dict[str, ScenarioResult] = {}
        for label in selected:
            factory = self.variants[label]
            sim = Simulator()
            fabric = Fabric(
                sim,
                self.topology(),
                factory,
                ecmp=self.ecmp,
                pifo_backend=pifo_backend,
                keep_packets=self.keep_packets,
            )
            by_host: Dict[str, List[Iterable[Arrival]]] = {}
            for demand in self.demands:
                by_host.setdefault(demand.src, []).append(
                    demand.build_arrivals(duration)
                )
            for host, streams in sorted(by_host.items()):
                fabric.attach_source(host, lazy_merge_arrivals(*streams))
            fabric.run(until=duration, drain=True)
            results[label] = self._collect(fabric, label, duration)
        return results

    def _collect(self, fabric: Fabric, label: str,
                 duration: float) -> ScenarioResult:
        flow_stats: Dict[str, Dict[str, Any]] = {}
        completions = []
        for host in sorted(fabric.host_sinks):
            sink = fabric.host_sinks[host]
            for flow, aggregate in sorted(sink.aggregates.items()):
                flow_stats[flow] = {
                    "dst": host,
                    "packets": aggregate.packets,
                    "bytes": aggregate.bytes,
                    "mean_delay": aggregate.mean_delay,
                    "max_delay": aggregate.delay_max,
                }
            completions.extend(flow_completions_from_sink(sink))
        short = [c for c in completions if c.size_bytes <= SHORT_FLOW_BYTES]
        return ScenarioResult(
            scenario=self.name,
            variant=label,
            duration=duration,
            conservation=fabric.conservation_check(),
            flow_stats=flow_stats,
            fct=FCTSummary.from_completions(completions) if completions else None,
            fct_short=FCTSummary.from_completions(short) if short else None,
            stats_by_node=fabric.stats_by_node(),
        )


# --------------------------------------------------------------------------- #
# Registry                                                                     #
# --------------------------------------------------------------------------- #
SCENARIOS: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (idempotent by name)."""
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(
            f"unknown scenario {name!r}; known scenarios: {known}"
        ) from None


def list_scenarios() -> List[Scenario]:
    return [SCENARIOS[name] for name in sorted(SCENARIOS)]
