"""Tests for the global shaping calendar.

The seed scheduler scanned *every* tree node on every
``process_shaping_releases`` poll; the calendar replaces that with one heap
of ``(release_time, seq, token)`` shared by the tree.  These tests pin the
observable contract: global release-time ordering across shaped nodes,
O(1) ``next_shaping_release``, robustness against external tree resets, and
equality with the per-node shaping PIFOs the hardware compiler still places.
"""

from __future__ import annotations

import pytest

from repro.algorithms import build_fig4_tree, build_shaped_hierarchy
from repro.core import Packet, ProgrammableScheduler


def _shaped_two_class_tree():
    return build_shaped_hierarchy(
        class_flows={"gold": {"A": 1.0}, "silver": {"B": 1.0}},
        class_weights={"gold": 1.0, "silver": 1.0},
        class_rate_limits_bps={"gold": 8e6, "silver": 4e6},
        burst_bytes=1500.0,
    )


class TestGlobalShapingCalendar:
    def test_tokens_release_in_global_time_order(self):
        scheduler = ProgrammableScheduler(_shaped_two_class_tree())
        for i in range(4):
            scheduler.enqueue(Packet(flow="A", length=1500, arrival_time=0.0))
            scheduler.enqueue(Packet(flow="B", length=1500, arrival_time=0.0))
        order = []
        now = 0.0
        while len(scheduler) > 0:
            packet = scheduler.dequeue(now)
            if packet is not None:
                order.append((packet.flow, now))
                continue
            nxt = scheduler.next_shaping_release()
            if nxt is None:
                break
            now = nxt
        # Everything eventually departs, and the gold class (double rate)
        # never falls behind silver.
        assert len(order) == 8
        a_times = [t for f, t in order if f == "A"]
        b_times = [t for f, t in order if f == "B"]
        assert a_times[-1] <= b_times[-1]

    def test_shaping_pifo_and_calendar_agree(self):
        scheduler = ProgrammableScheduler(build_fig4_tree())
        for _ in range(3):
            scheduler.enqueue(Packet(flow="C", length=1500, arrival_time=0.0))
        shaped = scheduler.tree.node("Right")
        if shaped.shaping_pifo.is_empty:
            pytest.skip("burst allowance released everything immediately")
        assert scheduler.next_shaping_release() == shaped.shaping_pifo.peek_rank()

    def test_next_release_none_when_idle(self):
        scheduler = ProgrammableScheduler(build_fig4_tree())
        assert scheduler.next_shaping_release() is None

    def test_released_count_and_stats(self):
        scheduler = ProgrammableScheduler(build_fig4_tree())
        for _ in range(5):
            scheduler.enqueue(Packet(flow="D", length=1500, arrival_time=0.0))
        pending = sum(
            len(node.shaping_pifo)
            for node in scheduler.tree.nodes()
            if node.shaping_pifo is not None
        )
        released = scheduler.process_shaping_releases(now=1e9)
        assert released == pending
        assert scheduler.stats.shaping_releases == pending
        for node in scheduler.tree.nodes():
            if node.shaping_pifo is not None:
                assert node.shaping_pifo.is_empty

    def test_scheduler_reset_clears_calendar(self):
        scheduler = ProgrammableScheduler(build_fig4_tree())
        for _ in range(5):
            scheduler.enqueue(Packet(flow="C", length=1500, arrival_time=0.0))
        scheduler.reset()
        assert scheduler.next_shaping_release() is None
        assert scheduler.process_shaping_releases(now=1e9) == 0

    def test_external_tree_reset_leaves_no_phantom_releases(self):
        """Resetting the tree behind the scheduler's back must not make the
        calendar release stale tokens."""
        scheduler = ProgrammableScheduler(build_fig4_tree())
        for _ in range(5):
            scheduler.enqueue(Packet(flow="C", length=1500, arrival_time=0.0))
        scheduler.tree.reset()
        assert scheduler.next_shaping_release() is None
        assert scheduler.process_shaping_releases(now=1e9) == 0
        assert scheduler.stats.shaping_releases == 0

    def test_drain_timed_unchanged_by_backend(self):
        """The calendar must not change shaped departure behaviour, on any
        backend."""

        def run(backend):
            scheduler = ProgrammableScheduler(
                build_fig4_tree(), pifo_backend=backend
            )
            for i in range(6):
                scheduler.enqueue(Packet(flow="C", length=1500, arrival_time=0.0))
                scheduler.enqueue(Packet(flow="A", length=1500, arrival_time=0.0))
            return [
                (p.flow, round(p.dequeue_time, 9))
                for p in scheduler.drain_timed(until=10.0)
            ]

        assert run(None) == run("calendar")
