"""Scheduling and shaping transactions.

A *scheduling transaction* is a block of code executed for each packet before
it is enqueued into a PIFO; it computes the packet's **rank** (Section 2.1).
A *shaping transaction* computes the **wall-clock time** at which an element
becomes visible to its parent node's scheduler (Section 2.3).

Both are instances of *packet transactions*: atomic, isolated blocks whose
visible state is equivalent to a serial execution across consecutive packets.
In this single-threaded reference model atomicity is automatic, but the
classes still keep all mutable algorithm state in a single ``state`` mapping
so that:

* the Domino-style atom analyser (:mod:`repro.hardware.atoms`) can reason
  about which state variables a transaction reads and writes, and
* tests can snapshot/restore transaction state to verify serialisability.
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..exceptions import TransactionError
from .packet import Packet
from .pifo import Rank


@dataclass(slots=True)
class TransactionContext:
    """Read-only inputs a transaction may use besides the packet itself.

    Attributes
    ----------
    now:
        Current wall-clock time in seconds.  Shaping transactions and the
        FIFO scheduling transaction use it; pure virtual-time algorithms
        (STFQ) ignore it.
    node:
        Name of the tree node executing the transaction.
    element_flow:
        Flow identifier of the element being enqueued.  At a leaf node this
        is the packet's flow; at an interior node it is the child node's
        name (the "flow" from the parent's point of view, as in Figure 3
        where WFQ_Root sees flows ``Left`` and ``Right``).
    element_length:
        Length in bytes attributed to the element.  For a packet this is the
        packet length; for a PIFO reference it is the length of the packet
        whose arrival triggered the enqueue, which is what HPFQ charges to
        the parent's fair scheduler.
    extras:
        Free-form additional inputs (for example per-flow weights).
    """

    now: float = 0.0
    node: str = ""
    element_flow: str = ""
    element_length: int = 0
    extras: Dict[str, Any] = field(default_factory=dict)


class Transaction(abc.ABC):
    """Common behaviour for scheduling and shaping transactions.

    Subclasses keep every mutable algorithm variable inside ``self.state``.
    ``state_variables`` declares the variables the transaction uses, which
    the atom analyser checks against actual accesses.
    """

    #: Names of the state variables this transaction reads or writes.
    state_variables: tuple = ()

    #: How this transaction executes per packet.  Hand-written classes are
    #: plain Python ("python"); lang-backed transactions report "compiled"
    #: (AST lowered to a native closure) or "interpreted" (per-packet AST
    #: walk fallback) — see :mod:`repro.lang.compiler`.
    backend: str = "python"

    def __init__(self) -> None:
        self.state: Dict[str, Any] = {}
        self.executions = 0
        self.reset()

    # -- lifecycle ----------------------------------------------------------
    def reset(self) -> None:
        """Reinitialise all state variables to their starting values."""
        self.state = dict(self.initial_state())

    def initial_state(self) -> Dict[str, Any]:
        """Return the initial value of every state variable.

        Subclasses with state must override this; stateless transactions can
        rely on the default empty mapping.
        """
        return {}

    # -- serialisability helpers --------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Deep-copy the transaction state (for serialisability tests)."""
        return copy.deepcopy(self.state)

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        self.state = copy.deepcopy(snapshot)

    # -- hooks ---------------------------------------------------------------
    def on_dequeue(self, element: Any, ctx: TransactionContext) -> None:
        """Called when an element ranked by this transaction is dequeued.

        Most transactions ignore dequeues, but fair-queueing algorithms such
        as STFQ update their virtual time from the start tag of the packet
        being dequeued (Section 7 discusses why this state matters).
        """

    def describe(self) -> str:
        """One-line human-readable description used in reports."""
        return type(self).__name__


class SchedulingTransaction(Transaction):
    """Computes the rank of an element pushed into a scheduling PIFO."""

    @abc.abstractmethod
    def compute_rank(self, packet: Packet, ctx: TransactionContext) -> Rank:
        """Return the rank for ``packet`` (lower ranks dequeue first)."""

    def __call__(self, packet: Packet, ctx: TransactionContext) -> Rank:
        self.executions += 1
        rank = self.compute_rank(packet, ctx)
        if rank is None:
            raise TransactionError(
                f"{type(self).__name__} returned no rank for {packet!r}"
            )
        return rank


class ShapingTransaction(Transaction):
    """Computes the wall-clock release time of an element (Section 2.3).

    The element (packet or PIFO reference) waits in the node's shaping PIFO,
    ranked by this send time, and is released to the parent's scheduling
    PIFO once the wall clock reaches it.
    """

    @abc.abstractmethod
    def compute_send_time(self, packet: Packet, ctx: TransactionContext) -> float:
        """Return the wall-clock time at which the element may be scheduled."""

    def __call__(self, packet: Packet, ctx: TransactionContext) -> float:
        self.executions += 1
        send_time = self.compute_send_time(packet, ctx)
        if send_time is None:
            raise TransactionError(
                f"{type(self).__name__} returned no send time for {packet!r}"
            )
        if send_time < ctx.now - 1e-12:
            # A shaping transaction may never schedule into the past; clamp
            # to "now" which means immediately eligible.
            send_time = ctx.now
        return send_time


class LambdaSchedulingTransaction(SchedulingTransaction):
    """Adapter turning a plain function into a scheduling transaction.

    The function receives ``(packet, ctx, state)`` and returns the rank.
    Useful for quick experiments and for the examples; library algorithms
    use explicit classes for clarity.
    """

    def __init__(
        self,
        fn: Callable[[Packet, TransactionContext, Dict[str, Any]], Rank],
        initial_state: Optional[Dict[str, Any]] = None,
        name: str = "lambda",
        dequeue_fn: Optional[
            Callable[[Any, TransactionContext, Dict[str, Any]], None]
        ] = None,
    ) -> None:
        self._fn = fn
        self._initial = dict(initial_state or {})
        self._name = name
        self._dequeue_fn = dequeue_fn
        self.state_variables = tuple(self._initial)
        super().__init__()

    def initial_state(self) -> Dict[str, Any]:
        return dict(self._initial)

    def compute_rank(self, packet: Packet, ctx: TransactionContext) -> Rank:
        return self._fn(packet, ctx, self.state)

    def on_dequeue(self, element: Any, ctx: TransactionContext) -> None:
        if self._dequeue_fn is not None:
            self._dequeue_fn(element, ctx, self.state)

    def describe(self) -> str:
        return f"lambda scheduling transaction {self._name!r}"


class LambdaShapingTransaction(ShapingTransaction):
    """Adapter turning a plain function into a shaping transaction."""

    def __init__(
        self,
        fn: Callable[[Packet, TransactionContext, Dict[str, Any]], float],
        initial_state: Optional[Dict[str, Any]] = None,
        name: str = "lambda",
    ) -> None:
        self._fn = fn
        self._initial = dict(initial_state or {})
        self._name = name
        self.state_variables = tuple(self._initial)
        super().__init__()

    def initial_state(self) -> Dict[str, Any]:
        return dict(self._initial)

    def compute_send_time(self, packet: Packet, ctx: TransactionContext) -> float:
        return self._fn(packet, ctx, self.state)

    def describe(self) -> str:
        return f"lambda shaping transaction {self._name!r}"
