"""Section 3.4 — fine-grained priority scheduling (SJF / SRPT / LAS).

Regenerates: mean and tail flow completion times on a heavy-tailed workload,
comparing SRPT and SJF (one-line PIFO transactions) against FIFO.  Paper
claim: programming these algorithms is trivial with a PIFO; their benefit
(as established in the literature the paper cites) is much lower FCT for
short flows.
"""

from __future__ import annotations

from conftest import report

from repro.algorithms import (
    FIFOTransaction,
    LeastAttainedServiceTransaction,
    ShortestJobFirstTransaction,
    SRPTTransaction,
)
from repro.core import ProgrammableScheduler, single_node_tree
from repro.metrics import fct_summary
from repro.sim import OutputPort, PacketSource, Simulator
from repro.traffic import flow_arrivals, web_search_flow_sizes

LINK_RATE = 1e9
DURATION = 0.3
LOAD = 0.7


def run_with(transaction):
    sim = Simulator()
    scheduler = ProgrammableScheduler(single_node_tree(transaction))
    port = OutputPort(sim, scheduler, rate_bps=LINK_RATE)
    arrivals = flow_arrivals(
        "flow", load_bps=LOAD * LINK_RATE, duration=DURATION,
        size_distribution=web_search_flow_sizes(), seed=42,
    )
    PacketSource(sim, port, arrivals)
    sim.run(until=DURATION * 2)
    return port.sink.packets


def summarise(packets):
    overall = fct_summary(packets)
    short = fct_summary(packets, max_size_bytes=100_000)
    return overall, short


def test_sec34_srpt_and_sjf_beat_fifo_on_short_flow_fct(benchmark):
    def run_all():
        return {
            "FIFO": summarise(run_with(FIFOTransaction())),
            "SJF": summarise(run_with(ShortestJobFirstTransaction())),
            "SRPT": summarise(run_with(SRPTTransaction())),
            "LAS": summarise(run_with(LeastAttainedServiceTransaction())),
        }

    results = benchmark(run_all)
    report(
        "Section 3.4: flow completion times, heavy-tailed web-search workload",
        [
            {
                "scheduler": name,
                "flows": overall.count,
                "mean_fct_ms": overall.mean * 1e3,
                "p99_fct_ms": overall.p99 * 1e3,
                "short_flow_mean_fct_ms": short.mean * 1e3,
            }
            for name, (overall, short) in results.items()
        ],
    )
    fifo_overall, fifo_short = results["FIFO"]
    for name in ("SJF", "SRPT"):
        overall, short = results[name]
        assert overall.count == fifo_overall.count
        # Size-aware scheduling improves short-flow and mean FCT vs FIFO.
        assert short.mean <= fifo_short.mean
        assert overall.mean <= fifo_overall.mean * 1.05
    # SRPT is at least as good as SJF on mean FCT (it uses strictly more
    # information).
    assert results["SRPT"][0].mean <= results["SJF"][0].mean * 1.05
