"""Chip area and timing model (Section 5.3, Tables 1 and 2; Section 5.4).

The paper's quantitative evaluation is a synthesis study: the flow scheduler
is synthesised to a 16 nm standard-cell library and the rest of a PIFO block
is priced from published SRAM density figures.  This module reproduces that
arithmetic:

* :class:`FlowSchedulerDesign` — parametric area of the flow scheduler as a
  function of rank width, metadata width, number of logical PIFOs and number
  of flows, calibrated to the paper's published data points (0.224 mm^2 at
  the baseline; the Section 5.3 parameter variations; Table 2's scaling with
  the number of flows), plus the 1 GHz timing rule (meets timing up to 2048
  flows).
* :class:`PIFOBlockDesign` — Table 1's per-block breakdown (flow scheduler +
  rank-store SRAM + pointer/free-list SRAM + head/tail/count registers).
* :class:`MeshDesign` — the 5-block mesh total, the 300-atom rank-computation
  budget and the <4% chip-area overhead claim, plus the Section 5.4 wiring
  count.

Published reference values are kept alongside the model (``PAPER_*``
constants) so the benchmarks can print paper-vs-model tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .atoms import ATOM_BUDGET_PER_CHIP, PAIRS_ATOM_AREA_UM2
from .mesh import PIFOMesh

# --------------------------------------------------------------------------- #
# Published reference numbers (for paper-vs-model comparisons)                #
# --------------------------------------------------------------------------- #

#: Table 2: flow-scheduler area (mm^2) and 1 GHz timing closure vs #flows.
PAPER_TABLE2: Tuple[Tuple[int, float, bool], ...] = (
    (256, 0.053, True),
    (512, 0.107, True),
    (1024, 0.224, True),
    (2048, 0.454, True),
    (4096, 0.914, False),
)

#: Section 5.3 parameter variations starting from the baseline 0.224 mm^2.
PAPER_PARAMETER_VARIATIONS: Dict[str, float] = {
    "baseline": 0.224,
    "rank_32_bits": 0.317,
    "logical_pifos_1024": 0.233,
    "metadata_64_bits": 0.317,
}

#: Table 1 rows (mm^2).
PAPER_TABLE1: Dict[str, float] = {
    "flow_scheduler": 0.224,
    "sram_per_mbit": 0.145,
    "rank_store": 0.445,
    "next_pointers": 0.148,
    "free_list": 0.148,
    "head_tail_count": 0.1476,
    "one_block": 1.11,
    "mesh_5_blocks": 5.55,
    "atoms": 1.8,
    "overhead_percent": 3.7,
}

#: Section 5.4: wiring for a 5-block full mesh.
PAPER_WIRES_PER_SET = 106
PAPER_TOTAL_MESH_WIRES = 2120

#: Chip-area reference (Gibb et al.): a switching chip is 200-400 mm^2; the
#: paper uses the 200 mm^2 lower bound for the overhead claim.
SWITCH_CHIP_AREA_MM2 = 200.0

# --------------------------------------------------------------------------- #
# Calibration constants                                                       #
# --------------------------------------------------------------------------- #

#: SRAM density in the 16 nm library (mm^2 per Mbit), from Table 1.
SRAM_MM2_PER_MBIT = 0.145

#: Flow-scheduler per-entry cost model (um^2 per flow entry), fitted to the
#: Section 5.3 variations: rank bits also pay for the parallel comparators,
#: logical-PIFO-ID bits pay for the equality-check comparators, metadata
#: bits are storage only.
RANK_BIT_COST_UM2 = 5.67
METADATA_BIT_COST_UM2 = 2.84
PIFO_ID_BIT_COST_UM2 = 4.40
ENTRY_OVERHEAD_UM2 = 2.0

#: Timing rule from Table 2: the parallel comparison + priority encode meets
#: 1 GHz up to this many flow entries.
MAX_FLOWS_AT_1GHZ = 2048


def _bits_for_count(count: int) -> int:
    """Number of bits needed to address ``count`` distinct values."""
    if count <= 1:
        return 1
    return (count - 1).bit_length()


# --------------------------------------------------------------------------- #
# Flow scheduler                                                              #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class FlowSchedulerDesign:
    """Parametric flow-scheduler design point (Section 5.3 baseline)."""

    num_flows: int = 1024
    rank_bits: int = 16
    metadata_bits: int = 32
    num_logical_pifos: int = 256

    def __post_init__(self) -> None:
        if self.num_flows <= 0:
            raise ValueError("num_flows must be positive")
        if self.rank_bits <= 0 or self.metadata_bits < 0:
            raise ValueError("field widths must be positive")
        if self.num_logical_pifos <= 0:
            raise ValueError("num_logical_pifos must be positive")

    @property
    def logical_pifo_id_bits(self) -> int:
        return _bits_for_count(self.num_logical_pifos)

    def entry_area_um2(self) -> float:
        """Area of one flow-head entry (storage + comparator share)."""
        return (
            RANK_BIT_COST_UM2 * self.rank_bits
            + METADATA_BIT_COST_UM2 * self.metadata_bits
            + PIFO_ID_BIT_COST_UM2 * self.logical_pifo_id_bits
            + ENTRY_OVERHEAD_UM2
        )

    def area_mm2(self) -> float:
        """Total flow-scheduler area in mm^2."""
        return self.num_flows * self.entry_area_um2() / 1e6

    def meets_timing_at_1ghz(self) -> bool:
        """Table 2's conclusion: timing closes up to 2048 flows."""
        return self.num_flows <= MAX_FLOWS_AT_1GHZ


# --------------------------------------------------------------------------- #
# PIFO block (Table 1)                                                        #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class PIFOBlockDesign:
    """Area breakdown of a single PIFO block (Table 1)."""

    #: The paper prices "64 K" rank-store entries with decimal Mbit
    #: arithmetic (64 000 x 48 bit = 3.07 Mbit -> 0.445 mm^2), so the area
    #: model defaults to 64 000 even though the behavioural model's capacity
    #: is the power-of-two 65 536.
    flow_scheduler: FlowSchedulerDesign = field(default_factory=FlowSchedulerDesign)
    rank_store_entries: int = 64_000
    pointer_bits: int = 16

    def rank_store_bits_per_entry(self) -> int:
        return self.flow_scheduler.rank_bits + self.flow_scheduler.metadata_bits

    def rank_store_area_mm2(self) -> float:
        """Data SRAM: entries x (rank + metadata) bits."""
        mbits = self.rank_store_entries * self.rank_store_bits_per_entry() / 1e6
        return mbits * SRAM_MM2_PER_MBIT

    def next_pointer_area_mm2(self) -> float:
        """Linked-list next pointers for the dynamically allocated FIFOs."""
        mbits = self.rank_store_entries * self.pointer_bits / 1e6
        return mbits * SRAM_MM2_PER_MBIT

    def free_list_area_mm2(self) -> float:
        """Free-list memory for the dynamically allocated rank store."""
        mbits = self.rank_store_entries * self.pointer_bits / 1e6
        return mbits * SRAM_MM2_PER_MBIT

    def head_tail_count_area_mm2(self) -> float:
        """Head, tail and count registers per flow.

        The paper reports 0.1476 mm^2 from synthesis at the baseline (1024
        flows, 16-bit pointers); the model scales that linearly in both.
        """
        baseline = PAPER_TABLE1["head_tail_count"]
        scale = (self.flow_scheduler.num_flows / 1024) * (self.pointer_bits / 16)
        return baseline * scale

    def block_area_mm2(self) -> float:
        return (
            self.flow_scheduler.area_mm2()
            + self.rank_store_area_mm2()
            + self.next_pointer_area_mm2()
            + self.free_list_area_mm2()
            + self.head_tail_count_area_mm2()
        )

    def breakdown(self) -> Dict[str, float]:
        """Table 1-style per-component breakdown (mm^2)."""
        return {
            "flow_scheduler": self.flow_scheduler.area_mm2(),
            "rank_store": self.rank_store_area_mm2(),
            "next_pointers": self.next_pointer_area_mm2(),
            "free_list": self.free_list_area_mm2(),
            "head_tail_count": self.head_tail_count_area_mm2(),
            "one_block": self.block_area_mm2(),
        }


# --------------------------------------------------------------------------- #
# Mesh (Table 1 bottom rows + Section 5.4)                                    #
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class MeshDesign:
    """A full PIFO mesh: N blocks plus the atom pipelines for transactions."""

    block: PIFOBlockDesign = field(default_factory=PIFOBlockDesign)
    num_blocks: int = 5
    num_atoms: int = ATOM_BUDGET_PER_CHIP
    atom_area_um2: float = PAIRS_ATOM_AREA_UM2
    chip_area_mm2: float = SWITCH_CHIP_AREA_MM2

    def blocks_area_mm2(self) -> float:
        return self.num_blocks * self.block.block_area_mm2()

    def atoms_area_mm2(self) -> float:
        return self.num_atoms * self.atom_area_um2 / 1e6

    def total_area_mm2(self) -> float:
        return self.blocks_area_mm2() + self.atoms_area_mm2()

    def overhead_fraction(self) -> float:
        """Scheduler area relative to the whole switching chip."""
        return self.total_area_mm2() / self.chip_area_mm2

    def overhead_percent(self) -> float:
        return 100.0 * self.overhead_fraction()

    # -- Section 5.4 wiring -------------------------------------------------------
    def wire_sets(self) -> int:
        return self.num_blocks * (self.num_blocks - 1)

    def bits_per_wire_set(self) -> int:
        return PIFOMesh.bits_per_wire_set()

    def total_mesh_wires(self) -> int:
        return self.wire_sets() * self.bits_per_wire_set()

    def table1(self) -> Dict[str, float]:
        """Full Table 1 reproduction (mm^2 except the last row, in %)."""
        rows = self.block.breakdown()
        rows["mesh_blocks"] = self.blocks_area_mm2()
        rows["atoms"] = self.atoms_area_mm2()
        rows["total"] = self.total_area_mm2()
        rows["overhead_percent"] = self.overhead_percent()
        return rows


# --------------------------------------------------------------------------- #
# Convenience sweeps used by the benchmarks                                    #
# --------------------------------------------------------------------------- #


def table2_rows(flow_counts: Tuple[int, ...] = (256, 512, 1024, 2048, 4096)) -> List[Dict]:
    """Model rows matching Table 2 (area and timing vs number of flows)."""
    rows = []
    paper = {flows: (area, timing) for flows, area, timing in PAPER_TABLE2}
    for flows in flow_counts:
        design = FlowSchedulerDesign(num_flows=flows)
        paper_area, paper_timing = paper.get(flows, (None, None))
        rows.append(
            {
                "flows": flows,
                "model_area_mm2": design.area_mm2(),
                "model_meets_timing": design.meets_timing_at_1ghz(),
                "paper_area_mm2": paper_area,
                "paper_meets_timing": paper_timing,
            }
        )
    return rows


def parameter_variation_rows() -> List[Dict]:
    """Model rows matching the Section 5.3 parameter variations."""
    variations = {
        "baseline": FlowSchedulerDesign(),
        "rank_32_bits": FlowSchedulerDesign(rank_bits=32),
        "logical_pifos_1024": FlowSchedulerDesign(num_logical_pifos=1024),
        "metadata_64_bits": FlowSchedulerDesign(metadata_bits=64),
    }
    rows = []
    for name, design in variations.items():
        rows.append(
            {
                "variation": name,
                "model_area_mm2": design.area_mm2(),
                "paper_area_mm2": PAPER_PARAMETER_VARIATIONS[name],
                "meets_timing": design.meets_timing_at_1ghz(),
            }
        )
    return rows


def flat_sorted_array_comparisons(buffered_packets: int) -> int:
    """Comparators a naive flat PIFO needs (one per buffered packet).

    Section 5.2 rejects this design because supporting 60 K parallel
    comparators is infeasible; the flow-scheduler decomposition needs only
    one comparator per *flow*.  Used by the rank-store ablation benchmark.
    """
    return buffered_packets
