"""Torn-write durability: kill -9 at any byte offset, resume reconverges.

The property the store promises: truncate the JSONL file at *any* byte
offset (the kill -9 / power-loss model — appends are sequential, so a
crash leaves a prefix of the bytes), then resume the campaign, and the
final store is byte-identical to an uninterrupted serial run modulo the
:data:`~repro.campaign.store.TIMING_FIELDS`.  Plus the corruption
diagnostics contract: a bad interior line is reported with its 1-based
line number and byte offset, and ``verify_records`` audits schema and
fingerprints without running anything.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign import (
    Campaign,
    CampaignRunner,
    ResultStore,
    StoreError,
    strip_timing,
)
import repro.campaign.runner as runner_module


def torn_campaign() -> Campaign:
    return Campaign(
        name="torn_probe",
        title="torn-write probe",
        scenarios=["fig6_chain"],
        pifo_backends=["sorted", "quantized"],
    )


def fake_execute(spec):
    """A deterministic, instant stand-in for the simulation layer.

    The torn-write property is about bytes on disk, not scheduling — a
    fake record per spec keeps the hypothesis loop fast while exercising
    the identical append/truncate/resume machinery.
    """
    record = dict(spec.to_dict())
    record.update({
        "run_id": spec.run_id,
        "fingerprint": spec.fingerprint(),
        "status": "ok",
        "delivered": 1000 + spec.seed % 97,
        "wall_clock_s": 0.0,
        "worker_pid": 0,
    })
    return record


@pytest.fixture()
def fast_runner(monkeypatch):
    monkeypatch.setattr(runner_module, "execute_spec", fake_execute)


def canonical(records):
    return [json.dumps(strip_timing(r), sort_keys=True) for r in records]


class TestTornWriteProperty:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(cut=st.integers(min_value=0, max_value=2000))
    def test_truncation_at_any_offset_resumes_to_serial_store(
            self, tmp_path_factory, fast_runner, cut):
        tmp = tmp_path_factory.mktemp("torn")
        reference = ResultStore(tmp / "reference.jsonl")
        CampaignRunner(torn_campaign(), reference, quick=True).run()
        reference_bytes = reference.path.read_bytes()

        victim = ResultStore(tmp / "victim.jsonl")
        victim.path.write_bytes(reference_bytes[:min(cut,
                                                     len(reference_bytes))])
        # The torn tail (if any) parses as at most a prefix of records;
        # loading never raises on a truncated file.
        victim.load()
        CampaignRunner(torn_campaign(), victim, quick=True,
                       resume=True).run()
        final = {r["fingerprint"]: strip_timing(r)
                 for r in victim.effective_records()}
        expected = {r["fingerprint"]: strip_timing(r)
                    for r in reference.load()}
        assert final == expected
        # And the bytes themselves: every surviving line is a canonical
        # serial line, so modulo timing the stores are identical.
        assert sorted(canonical(victim.effective_records())) \
            == sorted(canonical(reference.load()))

    def test_cut_at_record_boundary_keeps_the_record(self, tmp_path,
                                                     fast_runner):
        # The nastiest offset: truncation lands exactly on a record's
        # closing brace, leaving complete JSON with no newline.  load()
        # counts that record (so resume skips its spec) — the torn-tail
        # repair must finish the line, not throw the record away.
        reference = ResultStore(tmp_path / "reference.jsonl")
        CampaignRunner(torn_campaign(), reference, quick=True).run()
        data = reference.path.read_bytes()
        # Cut at the end of the second-to-last record so exactly one
        # spec stays pending and resume has to append past the repair.
        lines = data.rstrip(b"\n").split(b"\n")
        cut = sum(len(line) + 1 for line in lines[:-2]) + len(lines[-2])

        victim = ResultStore(tmp_path / "victim.jsonl")
        victim.path.write_bytes(data[:cut])
        assert len(victim.load()) == len(reference.load()) - 1
        CampaignRunner(torn_campaign(), victim, quick=True,
                       resume=True).run()
        assert {r["fingerprint"]: strip_timing(r)
                for r in victim.effective_records()} \
            == {r["fingerprint"]: strip_timing(r)
                for r in reference.load()}

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(cut=st.integers(min_value=0, max_value=2000))
    def test_append_after_truncation_never_corrupts(self, tmp_path_factory,
                                                    fast_runner, cut):
        tmp = tmp_path_factory.mktemp("appnd")
        reference = ResultStore(tmp / "reference.jsonl")
        CampaignRunner(torn_campaign(), reference, quick=True).run()
        data = reference.path.read_bytes()

        victim = ResultStore(tmp / "victim.jsonl")
        victim.path.write_bytes(data[:min(cut, len(data))])
        victim.append({"fingerprint": "post-crash", "status": "ok"})
        records = victim.load()          # fully parseable, no torn line
        assert records[-1]["fingerprint"] == "post-crash"
        summary = victim.verify_records()
        torn_issues = [i for i in summary["issues"] if "torn" in i]
        assert not torn_issues


class TestCorruptionDiagnostics:
    def test_interior_corruption_reports_line_and_byte_offset(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.append({"fingerprint": "aa"})
        offset = path.stat().st_size
        with path.open("a") as handle:
            handle.write("not json at all\n")
        store.append({"fingerprint": "bb"})
        with pytest.raises(StoreError) as excinfo:
            store.load()
        message = str(excinfo.value)
        assert "line 2" in message
        assert f"byte offset {offset}" in message
        assert str(path) in message

    def test_binary_garbage_is_reported_not_crashed_on(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.append({"fingerprint": "aa"})
        with path.open("ab") as handle:
            handle.write(b"\xff\xfe\x00garbage\n")
        store.append({"fingerprint": "bb"})
        with pytest.raises(StoreError, match="line 2"):
            store.load()


class TestVerifyRecords:
    def make_store(self, tmp_path, fast_runner=None):
        store = ResultStore(tmp_path / "r.jsonl")
        for spec in torn_campaign().expand(quick=True):
            store.append(fake_execute(spec))
        return store

    def test_clean_store_verifies(self, tmp_path):
        store = self.make_store(tmp_path)
        expected = {s.fingerprint()
                    for s in torn_campaign().expand(quick=True)}
        summary = store.verify_records(expected_fingerprints=expected)
        assert summary["records"] == 4
        assert summary["ok"] == 4
        assert summary["failed"] == 0
        assert summary["issues"] == []
        assert summary["expected"] == 4
        assert summary["missing"] == 0

    def test_missing_runs_reported(self, tmp_path):
        store = self.make_store(tmp_path)
        specs = torn_campaign().expand(quick=True)
        extra = {s.fingerprint() for s in specs} | {"deadbeefdeadbeef"}
        summary = store.verify_records(expected_fingerprints=extra)
        assert summary["missing"] == 1

    def test_missing_required_fields_flagged(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append({"fingerprint": "aa"})   # no run_id/campaign/...
        summary = store.verify_records()
        assert len(summary["issues"]) == 1
        assert "missing fields" in summary["issues"][0]

    def test_fingerprint_mismatch_flagged(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        spec = torn_campaign().expand(quick=True)[0]
        record = fake_execute(spec)
        record["fingerprint"] = "0" * 16      # tampered / stale
        store.append(record)
        summary = store.verify_records()
        assert len(summary["issues"]) == 1
        assert "fingerprint mismatch" in summary["issues"][0]

    def test_failure_records_counted_not_flagged(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        specs = torn_campaign().expand(quick=True)
        store.append(fake_execute(specs[0]))
        failed = fake_execute(specs[1])
        failed["status"] = "failed"
        store.append(failed)
        summary = store.verify_records()
        assert summary["ok"] == 1
        assert summary["failed"] == 1
        assert summary["issues"] == []

    def test_corrupt_interior_line_is_an_issue_not_a_crash(self, tmp_path):
        store = self.make_store(tmp_path)
        with store.path.open("r+") as handle:
            content = handle.read()
            lines = content.splitlines(keepends=True)
            lines[1] = "corrupted!\n"
            handle.seek(0)
            handle.truncate()
            handle.writelines(lines)
        summary = store.verify_records()
        assert summary["records"] == 3
        assert any("corrupt record" in issue for issue in summary["issues"])
