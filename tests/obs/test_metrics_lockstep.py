"""Lockstep equivalence: metrics collection must be pure observability.

Mirrors tests/net/test_telemetry_lockstep.py for the metrics registry: a
run with a registry enabled must produce the identical packet departure
order, departure times, conservation counters and scenario aggregates as
the same run with metrics off.  The registry may only *read* the
simulation — any divergence means an instrument leaked into control flow.
"""

from __future__ import annotations

from repro.algorithms import FIFOTransaction
from repro.core import ProgrammableScheduler, single_node_tree
from repro.core.packet import Packet
from repro.net import Fabric, get_scenario, linear_chain
from repro.obs import metrics
from repro.sim import Simulator


def fifo_factory(switch, port):
    return ProgrammableScheduler(single_node_tree(FIFOTransaction()))


def _run_fabric():
    sim = Simulator()
    fabric = Fabric(sim, linear_chain(3, link_rate_bps=1e7), fifo_factory)
    arrivals = [
        (i * 0.0005, Packet(flow=f"f{i % 3}", length=700, dst="h_dst"))
        for i in range(60)
    ]
    fabric.attach_source("h_src", arrivals)
    fabric.run(drain=True)
    return fabric, sim


class TestFabricLockstep:
    def test_departures_identical_with_metrics_on(self):
        fabric_off, sim_off = _run_fabric()
        with metrics.collecting():
            fabric_on, sim_on = _run_fabric()
        assert (fabric_on.sink("h_dst").departure_order()
                == fabric_off.sink("h_dst").departure_order())
        assert ([p.departure_time for p in fabric_on.sink("h_dst").packets]
                == [p.departure_time for p in fabric_off.sink("h_dst").packets])
        assert fabric_on.conservation_check() == fabric_off.conservation_check()
        assert sim_on.events_processed == sim_off.events_processed

    def test_registry_actually_collected(self):
        with metrics.collecting() as registry:
            fabric, sim = _run_fabric()
            snap = registry.snapshot()
        # The simulator's inline instruments fired...
        assert snap["sim.events"] == sim.events_processed > 0
        assert snap["sim.run_wall_s.count"] >= 1
        assert snap["sim.drain_width.count"] > 0
        # ...and the fabric's lazy callback exposed per-switch state.
        name = fabric.network.name
        assert snap[f"fabric.{name}.delivered"] == fabric.delivered_packets
        assert any(key.endswith(".transmitted") for key in snap)

    def test_scenario_results_identical_with_metrics_on(self):
        scenario = get_scenario("fig6_chain")
        off = scenario.run(quick=True, telemetry=False)
        with metrics.collecting():
            on = scenario.run(quick=True, telemetry=False)
        assert set(on) == set(off)
        for variant in on:
            assert on[variant].conservation == off[variant].conservation
            assert on[variant].flow_stats == off[variant].flow_stats
            assert on[variant].events == off[variant].events
