"""Fairness metrics for evaluating bandwidth allocation.

Used by the WFQ/HPFQ experiments to check that measured per-flow shares
match the weighted max-min allocation the scheduling hierarchy promises.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 means perfectly equal allocation.

    ``J = (sum x)^2 / (n * sum x^2)`` and lies in ``(0, 1]`` for non-negative
    allocations with at least one positive value.
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError("jain_index needs at least one value")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def weighted_jain_index(allocations: Mapping[str, float], weights: Mapping[str, float]) -> float:
    """Jain index of allocations normalised by their weights.

    A weighted-fair allocation gives every flow the same ``allocation /
    weight`` ratio, so the weighted Jain index of a perfect allocation is 1.
    """
    ratios = []
    for flow, allocation in allocations.items():
        weight = weights.get(flow, 1.0)
        if weight <= 0:
            raise ValueError(f"weight of {flow!r} must be positive")
        ratios.append(allocation / weight)
    return jain_index(ratios)


def normalized_shares(allocations: Mapping[str, float]) -> Dict[str, float]:
    """Normalise allocations so they sum to 1 (empty input returns empty)."""
    total = sum(allocations.values())
    if total == 0:
        return {flow: 0.0 for flow in allocations}
    return {flow: value / total for flow, value in allocations.items()}


def expected_weighted_shares(weights: Mapping[str, float]) -> Dict[str, float]:
    """Ideal share of each flow when all flows are continuously backlogged."""
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return {flow: weight / total for flow, weight in weights.items()}


def max_share_error(
    measured: Mapping[str, float], expected: Mapping[str, float]
) -> float:
    """Largest absolute difference between measured and expected shares.

    Both mappings are normalised first, so callers can pass raw byte counts
    for ``measured``.
    """
    measured_norm = normalized_shares(dict(measured))
    expected_norm = normalized_shares(dict(expected))
    flows = set(measured_norm) | set(expected_norm)
    return max(
        abs(measured_norm.get(flow, 0.0) - expected_norm.get(flow, 0.0))
        for flow in flows
    )


def relative_share_error(
    measured: Mapping[str, float], expected: Mapping[str, float]
) -> Dict[str, float]:
    """Per-flow relative error of measured vs expected shares."""
    measured_norm = normalized_shares(dict(measured))
    expected_norm = normalized_shares(dict(expected))
    errors: Dict[str, float] = {}
    for flow, expected_share in expected_norm.items():
        if expected_share == 0:
            continue
        errors[flow] = abs(measured_norm.get(flow, 0.0) - expected_share) / expected_share
    return errors
