"""Hot-path profiling harness: measure and profile the simulation kernel.

The throughput workloads the benchmarks use — a CBR overload pushed end to
end through the canonical fabric topologies — are packaged here so that
``repro perf`` (and any interactive session) can answer two questions
without spelunking in ``benchmarks/``:

* **How fast is the datapath right now?**  ``run_workload`` drives a
  workload to completion and reports packets/second, events/second and the
  packet-pool hit statistics.
* **Where does the time go?**  ``profile_workload`` wraps the same run in
  :mod:`cProfile` and returns the hottest functions, which is exactly the
  loop used to build the slotted-packet / tuple-heap hot path.

Workloads are deterministic (CBR arrivals, fixed topologies) so two
invocations on the same machine measure the same simulation.
"""

from __future__ import annotations

import cProfile
import gc
import io
import pstats
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .algorithms import ArrivalSequenceTransaction, FIFOTransaction
from .core.packet import pool_size
from .core.scheduler import ProgrammableScheduler
from .core.tree import single_node_tree
from .lang.treekernel import kernel_cache_info
from .net import Fabric, leaf_spine, linear_chain
from .sim.link import DEFAULT_BATCH_LIMIT
from .sim.simulator import Simulator
from .traffic.flows import FlowSpec
from .traffic.generators import cbr_arrivals

#: Packet size used by the throughput workloads (bytes).
PACKET_SIZE = 500
#: Link rate of every fabric link in the workloads.
LINK_RATE_BPS = 1e9
#: Offered load as a fraction of the line rate (heavy but loss-free).
LOAD_FRACTION = 0.9


def _fifo_factory(tree_kernel: bool) -> Callable[[str, str], ProgrammableScheduler]:
    """Arrival-sequence FIFO: integer monotone ranks run on every backend."""
    def factory(switch: str, port: str) -> ProgrammableScheduler:
        return ProgrammableScheduler(
            single_node_tree(ArrivalSequenceTransaction()),
            tree_kernel=tree_kernel,
        )
    return factory


def _host_factory(tree_kernel: bool) -> Callable[[str, str], ProgrammableScheduler]:
    """Host NIC FIFO honouring the run's tree-kernel switch."""
    def factory(switch: str, port: str) -> ProgrammableScheduler:
        return ProgrammableScheduler(
            single_node_tree(FIFOTransaction()),
            tree_kernel=tree_kernel,
        )
    return factory


def _build_chain(sim: Simulator, packets: int, pifo_backend, telemetry: bool,
                 tree_kernel: bool = True,
                 batch_limit: Optional[int] = None) -> Fabric:
    """CBR overload across a 3-switch linear chain."""
    fabric = Fabric(sim, linear_chain(3, link_rate_bps=LINK_RATE_BPS),
                    _fifo_factory(tree_kernel), pifo_backend=pifo_backend,
                    keep_packets=False, telemetry=telemetry,
                    host_scheduler_factory=_host_factory(tree_kernel),
                    fused_delivery=None if tree_kernel else False,
                    batch_limit=batch_limit)
    duration = packets * PACKET_SIZE * 8.0 / (LOAD_FRACTION * LINK_RATE_BPS)
    spec = FlowSpec(name="load", rate_bps=LOAD_FRACTION * LINK_RATE_BPS,
                    packet_size=PACKET_SIZE, dst="h_dst")
    # Workloads are pre-materialised (same policy as the campaign
    # workload cache): arrival construction happens here, before the
    # timed section, so the measurement is the datapath, not the traffic
    # generator.
    fabric.attach_source("h_src", list(cbr_arrivals(spec, duration=duration)))
    return fabric


def _build_leaf_spine(sim: Simulator, packets: int, pifo_backend,
                      telemetry: bool, tree_kernel: bool = True,
                      batch_limit: Optional[int] = None) -> Fabric:
    """Four cross-leaf CBR senders over a 4x2 leaf-spine Clos with ECMP."""
    fabric = Fabric(sim, leaf_spine(leaves=4, spines=2, hosts_per_leaf=1,
                                    host_rate_bps=LINK_RATE_BPS),
                    _fifo_factory(tree_kernel), ecmp=True,
                    pifo_backend=pifo_backend,
                    keep_packets=False, telemetry=telemetry,
                    host_scheduler_factory=_host_factory(tree_kernel),
                    fused_delivery=None if tree_kernel else False,
                    batch_limit=batch_limit)
    pairs = [("h0_0", "h2_0"), ("h1_0", "h3_0"),
             ("h2_0", "h0_0"), ("h3_0", "h1_0")]
    per_sender = max(1, packets // len(pairs))
    duration = per_sender * PACKET_SIZE * 8.0 / (LOAD_FRACTION * LINK_RATE_BPS)
    for src, dst in pairs:
        spec = FlowSpec(name=f"{src}->{dst}",
                        rate_bps=LOAD_FRACTION * LINK_RATE_BPS,
                        packet_size=PACKET_SIZE, src=src, dst=dst)
        # Pre-materialised for the same reason as _build_chain.
        fabric.attach_source(src, list(cbr_arrivals(spec, duration=duration)))
    return fabric


#: Workload name -> fabric builder
#: ``(sim, packets, pifo_backend, telemetry, tree_kernel)``.
WORKLOADS: Dict[str, Callable[..., Fabric]] = {
    "chain3": _build_chain,
    "leaf_spine4x2": _build_leaf_spine,
}


@dataclass
class PerfResult:
    """Outcome of one :func:`run_workload` measurement."""

    workload: str
    pifo_backend: Optional[str]
    telemetry: bool
    packets: int
    delivered: int
    elapsed_s: float
    events: int
    pool_recycled: int
    #: Whether the fused tree kernel (and fused fabric delivery) was on.
    tree_kernel: bool = True
    #: Event-queue backend the run used (``heap``/``wheel``).
    event_queue: str = "heap"
    #: Per-callback transmit batch limit of the fabric's ports.
    batch_limit: int = DEFAULT_BATCH_LIMIT
    #: Kernel-cache activity during this run (deltas of
    #: :func:`repro.lang.treekernel.kernel_cache_info`).
    kernel_cache_hits: int = 0
    kernel_compiles: int = 0
    kernel_installs: int = 0
    kernel_fallbacks: int = 0

    @property
    def packets_per_second(self) -> float:
        return self.delivered / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def events_per_second(self) -> float:
        return self.events / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def datapath(self) -> str:
        """One-line description of the datapath variant that was measured."""
        kernels = "fused kernels" if self.tree_kernel else "interpreted"
        return (f"{kernels} · queue={self.event_queue} · "
                f"batch_limit={self.batch_limit} · "
                f"telemetry={'on' if self.telemetry else 'off'}")

    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "pifo_backend": self.pifo_backend,
            "telemetry": self.telemetry,
            "packets": self.packets,
            "delivered": self.delivered,
            "elapsed_s": self.elapsed_s,
            "packets_per_second": self.packets_per_second,
            "events": self.events,
            "events_per_second": self.events_per_second,
            "pool_recycled": self.pool_recycled,
            "tree_kernel": self.tree_kernel,
            "event_queue": self.event_queue,
            "batch_limit": self.batch_limit,
            "kernel_cache_hits": self.kernel_cache_hits,
            "kernel_compiles": self.kernel_compiles,
            "kernel_installs": self.kernel_installs,
            "kernel_fallbacks": self.kernel_fallbacks,
        }


@dataclass
class ProfileResult:
    """Outcome of one :func:`profile_workload` run."""

    perf: PerfResult
    #: ``(function, calls, tottime, cumtime)`` rows, hottest first.
    hotspots: List[tuple] = field(default_factory=list)
    text: str = ""


def run_workload(
    workload: str = "chain3",
    packets: int = 10_000,
    pifo_backend: Optional[str] = "sorted",
    telemetry: bool = False,
    tree_kernel: bool = True,
    event_queue: Optional[str] = None,
    batch_limit: Optional[int] = None,
) -> PerfResult:
    """Drive one throughput workload to completion and time it.

    ``telemetry`` defaults to off — the sweep configuration the hot path is
    tuned for; pass ``True`` to measure the figure-run configuration.
    ``tree_kernel=False`` measures the interpreted reference datapath
    (no fused scheduler kernels, no fused fabric delivery).
    ``event_queue`` selects the simulator's event-queue backend
    (``heap``/``wheel``; ``None`` consults ``REPRO_EVENT_QUEUE``) and
    ``batch_limit`` caps the ports' per-callback transmit bursts.
    """
    try:
        builder = WORKLOADS[workload]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(
            f"unknown perf workload {workload!r}; known workloads: {known}"
        ) from None
    pool_before = pool_size()
    cache_before = kernel_cache_info()
    sim = Simulator(event_queue=event_queue)
    fabric = builder(sim, packets, pifo_backend, telemetry, tree_kernel,
                     batch_limit=batch_limit)
    # The timed section runs with the cyclic collector paused (the campaign
    # workers do the same): the datapath allocates at a rate that makes
    # gen-0 sweeps a double-digit share of wall time, and the slotted
    # packet/event objects are acyclic.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        fabric.run(drain=True)
        elapsed = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
    if fabric.in_flight_packets() != 0:
        raise RuntimeError(
            f"perf workload {workload!r} left packets in flight: "
            f"{fabric.conservation_check()}"
        )
    cache_after = kernel_cache_info()
    return PerfResult(
        workload=workload,
        pifo_backend=pifo_backend,
        telemetry=telemetry,
        packets=packets,
        delivered=fabric.delivered_packets,
        elapsed_s=elapsed,
        events=sim.events_processed,
        pool_recycled=max(0, pool_size() - pool_before),
        tree_kernel=tree_kernel,
        event_queue=sim.event_queue_kind,
        batch_limit=fabric.batch_limit,
        kernel_cache_hits=cache_after["hits"] - cache_before["hits"],
        kernel_compiles=cache_after["misses"] - cache_before["misses"],
        kernel_installs=cache_after["installs"] - cache_before["installs"],
        kernel_fallbacks=cache_after["fallbacks"] - cache_before["fallbacks"],
    )


def profile_workload(
    workload: str = "chain3",
    packets: int = 10_000,
    pifo_backend: Optional[str] = "sorted",
    telemetry: bool = False,
    tree_kernel: bool = True,
    event_queue: Optional[str] = None,
    batch_limit: Optional[int] = None,
    top: int = 20,
) -> ProfileResult:
    """Run a workload under :mod:`cProfile` and return the hottest functions.

    The reported throughput is measured with the profiler attached and is
    therefore 2-3x below :func:`run_workload` numbers — use it for relative
    cost, not absolute rate.
    """
    try:
        builder = WORKLOADS[workload]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(
            f"unknown perf workload {workload!r}; known workloads: {known}"
        ) from None
    pool_before = pool_size()
    cache_before = kernel_cache_info()
    sim = Simulator(event_queue=event_queue)
    fabric = builder(sim, packets, pifo_backend, telemetry, tree_kernel,
                     batch_limit=batch_limit)
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    fabric.run(drain=True)
    profiler.disable()
    elapsed = time.perf_counter() - started
    # Same accounting as run_workload: the kernel-cache deltas identify
    # *which* datapath was actually profiled (installs > 0 means the fused
    # kernels ran; fallbacks > 0 means something refused to fuse), so the
    # hotspot listing is never silently attributed to the wrong backend.
    cache_after = kernel_cache_info()
    perf = PerfResult(
        workload=workload,
        pifo_backend=pifo_backend,
        telemetry=telemetry,
        packets=packets,
        delivered=fabric.delivered_packets,
        elapsed_s=elapsed,
        events=sim.events_processed,
        pool_recycled=max(0, pool_size() - pool_before),
        tree_kernel=tree_kernel,
        event_queue=sim.event_queue_kind,
        batch_limit=fabric.batch_limit,
        kernel_cache_hits=cache_after["hits"] - cache_before["hits"],
        kernel_compiles=cache_after["misses"] - cache_before["misses"],
        kernel_installs=cache_after["installs"] - cache_before["installs"],
        kernel_fallbacks=cache_after["fallbacks"] - cache_before["fallbacks"],
    )
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream).sort_stats("tottime")
    stats.print_stats(top)
    hotspots = []
    for func, (cc, nc, tottime, cumtime, _callers) in sorted(
        stats.stats.items(), key=lambda item: item[1][2], reverse=True
    )[:top]:
        filename, line, name = func
        label = f"{filename.rsplit('/', 1)[-1]}:{line}({name})"
        hotspots.append((label, nc, tottime, cumtime))
    return ProfileResult(perf=perf, hotspots=hotspots, text=stream.getvalue())
