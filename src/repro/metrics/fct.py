"""Flow completion time (FCT) metrics.

The fine-grained priority experiments (SJF, SRPT) are judged on flow
completion times, the metric that motivated those algorithms in the
datacenter transport literature the paper cites (pFabric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..core.packet import Packet
from .latency import percentile


@dataclass
class FlowCompletion:
    """Completion record of one flow."""

    flow: str
    size_bytes: int
    start_time: float
    finish_time: float

    @property
    def completion_time(self) -> float:
        return self.finish_time - self.start_time


def flow_completions(packets: Iterable[Packet]) -> List[FlowCompletion]:
    """Group departed packets by flow and compute each flow's FCT.

    A flow's start is its earliest packet arrival; its finish is its latest
    packet departure.  Flows with packets still in flight (no departure
    stamp) are excluded.
    """
    first_arrival: Dict[str, float] = {}
    last_departure: Dict[str, float] = {}
    sizes: Dict[str, int] = {}
    incomplete: set = set()
    for packet in packets:
        flow = packet.flow
        sizes[flow] = sizes.get(flow, 0) + packet.length
        arrival = packet.arrival_time
        if flow not in first_arrival or arrival < first_arrival[flow]:
            first_arrival[flow] = arrival
        if packet.departure_time is None:
            incomplete.add(flow)
            continue
        if flow not in last_departure or packet.departure_time > last_departure[flow]:
            last_departure[flow] = packet.departure_time
    completions = []
    for flow, finish in last_departure.items():
        if flow in incomplete:
            continue
        completions.append(
            FlowCompletion(
                flow=flow,
                size_bytes=sizes[flow],
                start_time=first_arrival[flow],
                finish_time=finish,
            )
        )
    return completions


@dataclass
class FCTSummary:
    """Mean/percentile summary of flow completion times."""

    count: int
    mean: float
    p50: float
    p99: float

    @classmethod
    def from_completions(cls, completions: List[FlowCompletion]) -> "FCTSummary":
        if not completions:
            raise ValueError("no completed flows to summarise")
        values = [c.completion_time for c in completions]
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            p50=percentile(values, 0.50),
            p99=percentile(values, 0.99),
        )


def flow_completions_from_sink(sink) -> List[FlowCompletion]:
    """Flow completions from a sink's running per-flow aggregates.

    Works with sinks in streaming mode (``keep_packets=False``), so FCT can
    be computed over million-packet fabric runs without retaining packets.
    Only flows whose packets carried a ``flow_size`` tag (the FCT workloads
    always tag it) and whose delivered bytes reach that size count as
    complete; partially-delivered flows (drops, still in flight at the end
    of the run) are excluded, matching :func:`flow_completions`.

    A flow's start is its earliest *injection* time (source-host NIC) and
    its finish the arrival of its last packet at the destination host, so
    fabric FCTs are end-to-end rather than last-hop-only.
    """
    completions = []
    for flow in sorted(sink.aggregates):
        aggregate = sink.aggregates[flow]
        if aggregate.expected_bytes is None:
            continue
        if aggregate.bytes < aggregate.expected_bytes:
            continue
        if aggregate.first_arrival is None or aggregate.last_departure is None:
            continue
        completions.append(
            FlowCompletion(
                flow=flow,
                size_bytes=aggregate.bytes,
                start_time=aggregate.first_arrival,
                finish_time=aggregate.last_departure,
            )
        )
    return completions


def fct_summary(
    packets: Iterable[Packet],
    max_size_bytes: Optional[int] = None,
    min_size_bytes: Optional[int] = None,
) -> FCTSummary:
    """FCT summary, optionally restricted to a flow-size band.

    The standard presentation separates "short" flows (where SRPT shines)
    from "long" flows (which SRPT may penalise); size filters support that.
    """
    completions = flow_completions(packets)
    if max_size_bytes is not None:
        completions = [c for c in completions if c.size_bytes <= max_size_bytes]
    if min_size_bytes is not None:
        completions = [c for c in completions if c.size_bytes >= min_size_bytes]
    return FCTSummary.from_completions(completions)


def normalized_fct(completion: FlowCompletion, line_rate_bps: float) -> float:
    """FCT divided by the flow's ideal transfer time at line rate."""
    ideal = completion.size_bytes * 8.0 / line_rate_bps
    if ideal <= 0:
        raise ValueError("flow size must be positive")
    return completion.completion_time / ideal
