"""Crash isolation, retry, timeouts and quarantine in the campaign runner.

The hardening contract: a raised exception, a timed-out run or a dead
worker process becomes a structured failure record in the store — the
sweep completes, order is preserved, and ``--resume`` re-runs exactly the
failed set.  Faults are injected through ``REPRO_CAMPAIGN_FAULT`` (see
:mod:`repro.campaign.runner`), matched by substring against run ids.
"""

from __future__ import annotations

import signal
import threading

import pytest

from repro.campaign import (
    Campaign,
    CampaignRunner,
    ResultStore,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    STATUS_WORKER_LOST,
    WorkerPolicy,
    execute_spec_guarded,
    record_is_ok,
)
from repro.campaign.runner import FAULT_ENV

sigalrm_available = pytest.mark.skipif(
    not hasattr(signal, "SIGALRM")
    or threading.current_thread() is not threading.main_thread(),
    reason="per-run timeouts need SIGALRM on the main thread",
)


def probe_campaign(name="resilience_probe") -> Campaign:
    """Four quick fig6 runs; run ids like fig6_chain/FIFO/quantized/..."""
    return Campaign(
        name=name,
        title="resilience probe",
        scenarios=["fig6_chain"],
        pifo_backends=["sorted", "quantized"],
    )


def run_ids(records):
    return [r["run_id"] for r in records]


class TestInjectedExceptions:
    def test_raise_becomes_structured_failure_record(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "FIFO/quantized:raise")
        store = ResultStore(tmp_path / "r.jsonl")
        report = CampaignRunner(probe_campaign(), store, quick=True).run()
        assert report.executed == 4
        assert report.failed == 1
        assert report.aborted is None
        records = store.load()
        failed = [r for r in records if not record_is_ok(r)]
        assert len(failed) == 1
        record = failed[0]
        assert record["status"] == STATUS_FAILED
        assert record["error_type"] == "RuntimeError"
        assert "injected fault" in record["error"]
        assert len(record["traceback_digest"]) == 16
        assert record["attempts"] == 1
        # The failure record still carries the full config columns.
        assert record["scenario"] == "fig6_chain"
        assert record["fingerprint"]

    def test_pool_survives_a_raising_run_in_order(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "FIFO/quantized:raise")
        serial = ResultStore(tmp_path / "serial.jsonl")
        CampaignRunner(probe_campaign(), serial, quick=True).run()
        pooled = ResultStore(tmp_path / "pool.jsonl")
        report = CampaignRunner(probe_campaign(), pooled, workers=2,
                                quick=True).run()
        assert report.failed == 1
        assert not report.degraded
        assert run_ids(pooled.load()) == run_ids(serial.load())

    def test_flaky_run_succeeds_on_retry(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "FIFO/quantized:flaky:2")
        store = ResultStore(tmp_path / "r.jsonl")
        report = CampaignRunner(probe_campaign(), store, quick=True,
                                max_attempts=2).run()
        assert report.failed == 0
        by_id = {r["run_id"]: r for r in store.load()}
        flaky = next(r for rid, r in by_id.items() if "FIFO/quantized" in rid)
        assert flaky["status"] == STATUS_OK
        assert flaky["attempts"] == 2
        # Untouched runs succeeded first try.
        assert all(r["attempts"] == 1 for rid, r in by_id.items()
                   if "FIFO/quantized" not in rid)

    def test_exhausted_retries_record_attempt_count(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "FIFO/quantized:raise")
        store = ResultStore(tmp_path / "r.jsonl")
        CampaignRunner(probe_campaign(), store, quick=True,
                       max_attempts=3).run()
        failed = [r for r in store.load() if not record_is_ok(r)]
        assert failed[0]["attempts"] == 3


class TestTimeouts:
    @sigalrm_available
    def test_hung_run_times_out_without_retry(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "FIFO/quantized:hang:30")
        store = ResultStore(tmp_path / "r.jsonl")
        report = CampaignRunner(probe_campaign(), store, quick=True,
                                timeout_s=0.5, max_attempts=3).run()
        assert report.failed == 1
        record = next(r for r in store.load() if not record_is_ok(r))
        assert record["status"] == STATUS_TIMEOUT
        assert record["attempts"] == 1       # timeouts never retry
        assert record["wall_clock_s"] < 5.0

    @sigalrm_available
    def test_alarm_restores_previous_handler(self):
        seen = []
        previous = signal.signal(signal.SIGALRM, lambda s, f: seen.append(s))
        try:
            spec = probe_campaign().expand(quick=True)[0]
            record = execute_spec_guarded(
                spec, WorkerPolicy(timeout_s=30.0))
            assert record["status"] == STATUS_OK
            assert signal.getsignal(signal.SIGALRM).__name__ == "<lambda>"
        finally:
            signal.signal(signal.SIGALRM, previous)


class TestDeadWorkers:
    def test_dead_worker_degrades_to_isolated_and_completes(self, tmp_path,
                                                            monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "FIFO/quantized:exit:42")
        store = ResultStore(tmp_path / "r.jsonl")
        report = CampaignRunner(probe_campaign(), store, workers=2,
                                quick=True, timeout_s=5.0).run()
        assert report.degraded
        assert report.executed == 4
        assert report.failed == 1
        records = store.load()
        expected = [s.run_id for s in probe_campaign().expand(quick=True)]
        assert run_ids(records) == expected
        lost = next(r for r in records if not record_is_ok(r))
        assert lost["status"] == STATUS_WORKER_LOST
        assert "exit code 42" in lost["error"]


class TestFailureBudget:
    def test_max_failures_aborts_with_resumable_store(self, tmp_path,
                                                      monkeypatch):
        # Every run id contains the scenario name, so every run fails.
        monkeypatch.setenv(FAULT_ENV, "fig6_chain:raise")
        store = ResultStore(tmp_path / "r.jsonl")
        report = CampaignRunner(probe_campaign(), store, quick=True,
                                max_failures=1).run()
        assert report.aborted is not None
        assert "max_failures=1" in report.aborted
        assert report.executed == 2          # aborted on the second failure
        # The store keeps what was committed and resume re-runs everything
        # (the two failures plus the two never-attempted runs).
        monkeypatch.delenv(FAULT_ENV)
        resumed = CampaignRunner(probe_campaign(), store, quick=True,
                                 resume=True)
        assert len(resumed.pending_specs()) == 4
        final = resumed.run()
        assert final.failed == 0
        assert len(store.completed_fingerprints()) == 4

    def test_max_failures_aborts_pool_mode_too(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "fig6_chain:raise")
        store = ResultStore(tmp_path / "r.jsonl")
        report = CampaignRunner(probe_campaign(), store, workers=2,
                                quick=True, max_failures=0).run()
        assert report.aborted is not None
        assert 1 <= report.executed < 4

    def test_max_attempts_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_attempts"):
            CampaignRunner(probe_campaign(),
                           ResultStore(tmp_path / "r.jsonl"), max_attempts=0)


class TestResumeAfterFailures:
    def test_resume_reruns_exactly_the_failed_set(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "FIFO:raise")   # both FIFO runs fail
        store = ResultStore(tmp_path / "r.jsonl")
        CampaignRunner(probe_campaign(), store, quick=True).run()
        failed_ids = [r["run_id"] for r in store.load()
                      if not record_is_ok(r)]
        assert len(failed_ids) == 2

        monkeypatch.delenv(FAULT_ENV)
        resumed = CampaignRunner(probe_campaign(), store, quick=True,
                                 resume=True)
        assert [s.run_id for s in resumed.pending_specs()] == failed_ids
        report = resumed.run()
        assert report.executed == 2
        assert report.failed == 0
        # The re-run records supersede the failures per fingerprint.
        latest = store.latest_by_fingerprint()
        assert all(record_is_ok(r) for r in latest.values())
        assert len(latest) == 4

    def test_interrupt_leaves_flushed_resumable_store(self, tmp_path,
                                                      monkeypatch):
        # Simulated Ctrl-C: the second run raises KeyboardInterrupt at the
        # execute layer.  The runner must re-raise with everything already
        # committed still on disk, and resume must finish the rest.
        import repro.campaign.runner as runner_module

        real = runner_module.execute_spec
        hits = []

        def interrupting(spec):
            hits.append(spec.run_id)
            if len(hits) == 2:
                raise KeyboardInterrupt
            return real(spec)

        monkeypatch.setattr(runner_module, "execute_spec", interrupting)
        store = ResultStore(tmp_path / "r.jsonl")
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(probe_campaign(), store, quick=True).run()
        survivors = store.load()
        assert len(survivors) == 1
        assert record_is_ok(survivors[0])

        monkeypatch.setattr(runner_module, "execute_spec", real)
        report = CampaignRunner(probe_campaign(), store, quick=True,
                                resume=True).run()
        assert report.skipped == 1
        assert report.executed == 3
        assert len(store.completed_fingerprints()) == 4
