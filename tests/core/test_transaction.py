"""Tests for scheduling/shaping transaction base classes."""

from __future__ import annotations

import pytest

from repro.core import (
    LambdaSchedulingTransaction,
    LambdaShapingTransaction,
    Packet,
    TransactionContext,
)
from repro.exceptions import TransactionError


class TestLambdaSchedulingTransaction:
    def test_computes_rank(self):
        txn = LambdaSchedulingTransaction(lambda p, ctx, state: p.length)
        rank = txn(Packet(flow="A", length=700), TransactionContext())
        assert rank == 700

    def test_counts_executions(self):
        txn = LambdaSchedulingTransaction(lambda p, ctx, state: 0)
        for _ in range(3):
            txn(Packet(flow="A", length=1), TransactionContext())
        assert txn.executions == 3

    def test_state_initialisation_and_reset(self):
        txn = LambdaSchedulingTransaction(
            lambda p, ctx, state: state.__setitem__("count", state["count"] + 1)
            or state["count"],
            initial_state={"count": 0},
        )
        ctx = TransactionContext()
        assert txn(Packet(flow="A", length=1), ctx) == 1
        assert txn(Packet(flow="A", length=1), ctx) == 2
        txn.reset()
        assert txn(Packet(flow="A", length=1), ctx) == 1

    def test_none_rank_raises(self):
        txn = LambdaSchedulingTransaction(lambda p, ctx, state: None)
        with pytest.raises(TransactionError):
            txn(Packet(flow="A", length=1), TransactionContext())

    def test_snapshot_restore(self):
        txn = LambdaSchedulingTransaction(
            lambda p, ctx, state: 0, initial_state={"virtual_time": 5.0}
        )
        snapshot = txn.snapshot()
        txn.state["virtual_time"] = 99.0
        txn.restore(snapshot)
        assert txn.state["virtual_time"] == 5.0

    def test_dequeue_hook(self):
        seen = []
        txn = LambdaSchedulingTransaction(
            lambda p, ctx, state: 0,
            dequeue_fn=lambda element, ctx, state: seen.append(ctx.extras.get("rank")),
        )
        txn.on_dequeue("element", TransactionContext(extras={"rank": 3}))
        assert seen == [3]


class TestLambdaShapingTransaction:
    def test_computes_send_time(self):
        txn = LambdaShapingTransaction(lambda p, ctx, state: ctx.now + 0.5)
        send = txn(Packet(flow="A", length=1), TransactionContext(now=1.0))
        assert send == pytest.approx(1.5)

    def test_past_send_time_clamped_to_now(self):
        txn = LambdaShapingTransaction(lambda p, ctx, state: ctx.now - 10.0)
        send = txn(Packet(flow="A", length=1), TransactionContext(now=4.0))
        assert send == pytest.approx(4.0)

    def test_none_send_time_raises(self):
        txn = LambdaShapingTransaction(lambda p, ctx, state: None)
        with pytest.raises(TransactionError):
            txn(Packet(flow="A", length=1), TransactionContext())


class TestTransactionContext:
    def test_defaults(self):
        ctx = TransactionContext()
        assert ctx.now == 0.0
        assert ctx.extras == {}

    def test_extras_independent_between_instances(self):
        a = TransactionContext()
        b = TransactionContext()
        a.extras["x"] = 1
        assert "x" not in b.extras
