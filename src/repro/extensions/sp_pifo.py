"""SP-PIFO: approximating a PIFO with strict-priority FIFO queues.

SP-PIFO (NSDI 2020) is the most widely deployed descendant of this paper's
PIFO: instead of a true push-in first-out queue it uses *N* strict-priority
FIFO queues and, per queue, a dynamically adapted *queue bound*.  An arriving
element is scanned bottom-up (lowest priority first) and admitted into the
first queue whose bound is ≤ its rank; dequeues always serve the highest
priority non-empty queue.

The adaptation rules are the published ones:

* **push-up**: when an element is admitted to queue *i*, that queue's bound
  is set to the element's rank (bounds track recently admitted ranks);
* **push-down**: when an element's rank is smaller than the bound of the
  highest-priority queue (an unavoidable inversion), every queue's bound is
  decreased by the "cost" of the inversion (bound − rank), making room for
  small ranks in the future.

The point of carrying this extension inside the reproduction is the ablation
in ``benchmarks/test_ablation_sp_pifo.py``: it quantifies, on identical rank
sequences, how many *inversions* (pairs dequeued out of rank order) the
approximation suffers as a function of the number of queues — zero for the
exact PIFO this paper builds, decreasing with queue count for SP-PIFO.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Iterable, List, Optional, Sequence, Tuple

from ..core.pifo import PIFO
from ..exceptions import PIFOEmptyError


@dataclass
class SPPIFOStats:
    """Counters maintained by an SP-PIFO queue."""

    pushes: int = 0
    pops: int = 0
    push_ups: int = 0
    push_downs: int = 0
    #: Elements admitted into the highest-priority queue because their rank
    #: undercut every bound (each such admission is a potential inversion).
    bound_misses: int = 0


class SPPIFOQueue:
    """An SP-PIFO: *N* strict-priority FIFOs approximating one PIFO.

    The interface mirrors :class:`repro.core.pifo.PIFO` (``push(element,
    rank)`` / ``pop()`` / ``peek()`` / ``__len__``) so the two can be swapped
    in experiments.

    Parameters
    ----------
    num_queues:
        Number of strict-priority FIFO queues.  One queue degenerates to a
        plain FIFO; more queues approximate the PIFO better.
    initial_bounds:
        Optional starting queue bounds (ascending).  Defaults to all-zero,
        letting the adaptation discover the rank distribution.
    """

    def __init__(
        self,
        num_queues: int = 8,
        initial_bounds: Optional[Sequence[float]] = None,
        name: str = "sp-pifo",
    ) -> None:
        if num_queues <= 0:
            raise ValueError("num_queues must be positive")
        if initial_bounds is not None:
            if len(initial_bounds) != num_queues:
                raise ValueError("initial_bounds must have one entry per queue")
            if list(initial_bounds) != sorted(initial_bounds):
                raise ValueError("initial_bounds must be non-decreasing")
            self._bounds = [float(b) for b in initial_bounds]
        else:
            self._bounds = [0.0] * num_queues
        self.num_queues = num_queues
        self.name = name
        # Queue 0 is the highest priority (served first, holds lowest ranks).
        self._queues: List[Deque[Tuple[float, Any]]] = [deque() for _ in range(num_queues)]
        self.stats = SPPIFOStats()

    # -- core operations ----------------------------------------------------
    def push(self, element: Any, rank: float) -> None:
        """Admit ``element`` using the SP-PIFO scan and adaptation rules."""
        rank = float(rank)
        self.stats.pushes += 1
        # Scan from the lowest-priority queue towards the highest; admit into
        # the first queue whose bound the rank meets.
        for index in range(self.num_queues - 1, -1, -1):
            if rank >= self._bounds[index]:
                self._queues[index].append((rank, element))
                # push-up: the bound tracks the last admitted rank.
                self._bounds[index] = rank
                self.stats.push_ups += 1
                return
        # The rank undercuts every bound: admit into the highest-priority
        # queue and push every bound down by the inversion cost.
        cost = self._bounds[0] - rank
        self._queues[0].append((rank, element))
        for index in range(self.num_queues):
            self._bounds[index] = max(0.0, self._bounds[index] - cost)
        self.stats.push_downs += 1
        self.stats.bound_misses += 1

    def pop(self) -> Any:
        """Dequeue from the highest-priority non-empty queue."""
        rank_element = self.pop_with_rank()
        return rank_element[1]

    def pop_with_rank(self) -> Tuple[float, Any]:
        """Like :meth:`pop` but also return the element's rank."""
        for queue in self._queues:
            if queue:
                self.stats.pops += 1
                return queue.popleft()
        raise PIFOEmptyError(f"pop from empty SP-PIFO {self.name!r}")

    def peek(self) -> Any:
        for queue in self._queues:
            if queue:
                return queue[0][1]
        raise PIFOEmptyError(f"peek on empty SP-PIFO {self.name!r}")

    def peek_rank(self) -> float:
        for queue in self._queues:
            if queue:
                return queue[0][0]
        raise PIFOEmptyError(f"peek on empty SP-PIFO {self.name!r}")

    # -- introspection ---------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues)

    def __bool__(self) -> bool:
        return any(self._queues)

    @property
    def is_empty(self) -> bool:
        return not any(self._queues)

    def bounds(self) -> List[float]:
        """Current queue bounds, highest-priority queue first."""
        return list(self._bounds)

    def occupancy(self) -> List[int]:
        """Per-queue element counts, highest-priority queue first."""
        return [len(queue) for queue in self._queues]

    def clear(self) -> None:
        for queue in self._queues:
            queue.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SPPIFOQueue(name={self.name!r}, queues={self.num_queues}, "
            f"len={len(self)})"
        )


# ------------------------------------------------------------------------- #
# Inversion accounting                                                       #
# ------------------------------------------------------------------------- #
def count_inversions(ranks: Sequence[float]) -> int:
    """Number of out-of-order pairs in a dequeue sequence.

    A pair (i, j) with i < j is an inversion when ``ranks[i] > ranks[j]`` —
    a lower-rank element left *after* a higher-rank one.  An exact PIFO
    yields zero inversions for any sequence it fully buffers.  Counted with
    a merge-sort pass, O(n log n).
    """
    sequence = list(ranks)
    if len(sequence) < 2:
        return 0
    _, inversions = _sort_and_count(sequence)
    return inversions


def _sort_and_count(sequence: List[float]) -> Tuple[List[float], int]:
    if len(sequence) <= 1:
        return sequence, 0
    middle = len(sequence) // 2
    left, left_count = _sort_and_count(sequence[:middle])
    right, right_count = _sort_and_count(sequence[middle:])
    merged: List[float] = []
    inversions = left_count + right_count
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
            inversions += len(left) - i
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged, inversions


@dataclass
class InversionReport:
    """Comparison of an SP-PIFO dequeue order against the exact PIFO."""

    num_queues: int
    elements: int
    inversions: int
    exact_inversions: int
    #: Fraction of adjacent dequeues that are out of rank order.
    unpifoness: float
    #: Mean absolute rank displacement versus the exact dequeue order.
    mean_rank_error: float

    @property
    def inversion_rate(self) -> float:
        """Inversions normalised by the worst case n*(n-1)/2."""
        worst = self.elements * (self.elements - 1) / 2
        return self.inversions / worst if worst else 0.0


def compare_with_exact_pifo(
    arrivals: Iterable[Tuple[Any, float]],
    num_queues: int = 8,
    drain_every: Optional[int] = None,
) -> InversionReport:
    """Feed identical (element, rank) arrivals to an exact PIFO and an
    SP-PIFO and compare the dequeue orders.

    ``drain_every`` interleaves dequeues with enqueues (one dequeue after
    every ``drain_every`` enqueues), which is the regime where SP-PIFO's
    adaptation actually matters; the default enqueues everything first and
    then drains, the worst case for the approximation.
    """
    arrivals = list(arrivals)
    exact: PIFO = PIFO(name="exact")
    approx = SPPIFOQueue(num_queues=num_queues)

    exact_order: List[float] = []
    approx_order: List[float] = []

    for index, (element, rank) in enumerate(arrivals, start=1):
        exact.push(element, rank)
        approx.push(element, rank)
        if drain_every and index % drain_every == 0:
            if not exact.is_empty:
                entry = exact.pop_entry()
                exact_order.append(entry.rank)
            if not approx.is_empty:
                approx_order.append(approx.pop_with_rank()[0])

    while not exact.is_empty:
        exact_order.append(exact.pop_entry().rank)
    while not approx.is_empty:
        approx_order.append(approx.pop_with_rank()[0])

    adjacent_out_of_order = sum(
        1 for a, b in zip(approx_order, approx_order[1:]) if a > b
    )
    mean_error = (
        sum(abs(a - b) for a, b in zip(approx_order, exact_order)) / len(exact_order)
        if exact_order
        else 0.0
    )
    return InversionReport(
        num_queues=num_queues,
        elements=len(arrivals),
        inversions=count_inversions(approx_order),
        exact_inversions=count_inversions(exact_order),
        unpifoness=(
            adjacent_out_of_order / (len(approx_order) - 1)
            if len(approx_order) > 1
            else 0.0
        ),
        mean_rank_error=mean_error,
    )
