"""Command-line interface: ``python -m repro``.

Subcommands
-----------
``list``
    List every reproduced experiment (id, paper reference, description).
``run EXPERIMENT [--quick] [--json] [--out FILE]``
    Run one experiment and print its paper-vs-measured table.
``report [--quick] [EXPERIMENT ...]``
    Run several experiments (all by default) and print the combined report.
``programs``
    List the transactions available in the transaction language.
``scenarios``
    List the registered network-fabric scenarios (topology, variants,
    traffic matrix size); run one via ``run`` with its experiment id.
``show PROGRAM``
    Print a transaction's source, its state analysis and the Domino-style
    atom pipeline it compiles to.
``perf [--workload W] [--packets N] [--pifo-backend B] [--telemetry]
[--event-queue {heap,wheel}] [--batch-limit N] [--profile] [--json]
[--out FILE]``
    Measure (or cProfile) the simulation hot path on a canonical fabric
    workload; prints which datapath variant (kernel fusion, event-queue
    backend, batch limit, telemetry) produced the numbers; see
    :mod:`repro.perf`.
``trace SCENARIO [--variant V] [--quick] [--out spans.jsonl]
[--chrome FILE]``
    Run one scenario variant with the packet-trace collector attached
    and export per-hop spans (JSONL, optionally a chrome://tracing
    document); see :mod:`repro.obs.trace`.
``campaign run|list|report|verify|serve|work|status``
    Execute, list and summarise parameter-sweep campaigns
    (:mod:`repro.campaign`): ``campaign run`` drives a campaign's run
    table through the warm-worker engine and appends one JSONL record per
    run to a result store; ``campaign report`` streams a store into
    summary tables grouped by any factor; ``campaign serve`` initialises
    a shared lease-queue directory (and merges its segments into a
    canonical store once drained) while any number of ``campaign work``
    executors — separate processes or hosts — drain its shards;
    ``campaign status`` reads the live progress sidecar a runner or
    executor publishes (``--watch`` polls until the campaign ends).

Tables print to stdout.  The commands that produce machine-readable
results (``run --json``, ``campaign report --json``) accept ``--out FILE``
to write the JSON to a file instead; ``campaign run`` writes its result
store to ``--store`` (default ``campaign_<name>.jsonl``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from . import __version__
from .hardware.atoms import AtomPipelineAnalyzer
from .lang.analysis import analyze_program, spec_from_program
from .lang.programs import (
    DEFAULT_FACTORIES,
    PROGRAM_SOURCES,
    PROGRAM_STATE,
    SHAPING_PROGRAMS,
)
from .reporting import (
    generate_report,
    list_experiments,
    render_kv,
    render_table,
    run_experiment,
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Programmable Packet Scheduling at Line Rate' "
            "(SIGCOMM 2016): run the paper's experiments and inspect "
            "scheduling transactions."
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list reproduced experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see 'list')")
    run_parser.add_argument("--quick", action="store_true",
                            help="shorter simulation durations")
    run_parser.add_argument("--json", action="store_true",
                            help="print the result as JSON instead of a table")
    run_parser.add_argument("--out", metavar="FILE", default=None,
                            help="write the --json result to FILE instead of "
                                 "stdout (implies --json)")

    report_parser = subparsers.add_parser(
        "report", help="run several experiments and print the combined report"
    )
    report_parser.add_argument("experiments", nargs="*",
                               help="experiment ids (default: all)")
    report_parser.add_argument("--quick", action="store_true",
                               help="shorter simulation durations")

    subparsers.add_parser("programs",
                          help="list transaction-language programs")

    subparsers.add_parser("scenarios",
                          help="list network-fabric scenarios")

    show_parser = subparsers.add_parser(
        "show", help="show a program's source, analysis and atom pipeline"
    )
    show_parser.add_argument("program", help="program name (see 'programs')")
    show_parser.add_argument("--tree-kernel", action="store_true",
                             dest="tree_kernel",
                             help="also print the fused whole-tree kernel "
                                  "generated for a single-node tree running "
                                  "this program")
    show_parser.add_argument("--pifo-backend", default="sorted",
                             dest="pifo_backend", metavar="BACKEND",
                             help="PIFO backend to specialise the "
                                  "--tree-kernel source for")

    perf_parser = subparsers.add_parser(
        "perf", help="measure or profile the simulation hot path"
    )
    perf_parser.add_argument("--workload", default="chain3",
                             help="perf workload (chain3, leaf_spine4x2)")
    perf_parser.add_argument("--packets", type=int, default=10_000,
                             metavar="N", help="packets to push end to end")
    perf_parser.add_argument("--pifo-backend", default="sorted",
                             dest="pifo_backend", metavar="BACKEND",
                             help="PIFO backend under test (default sorted)")
    perf_parser.add_argument("--telemetry", action="store_true",
                             help="measure with per-hop telemetry enabled "
                                  "(the figure-run configuration)")
    perf_parser.add_argument("--no-tree-kernel", action="store_false",
                             dest="tree_kernel",
                             help="measure the interpreted reference datapath "
                                  "(fused kernels and fused delivery off)")
    perf_parser.add_argument("--event-queue", default=None,
                             dest="event_queue", choices=["heap", "wheel"],
                             help="event-queue backend (default: heap, or "
                                  "REPRO_EVENT_QUEUE when set)")
    perf_parser.add_argument("--batch-limit", type=int, default=None,
                             dest="batch_limit", metavar="N",
                             help="max back-to-back packets per transmit "
                                  "callback (1 = single-step; default 32)")
    perf_parser.add_argument("--profile", action="store_true",
                             help="run under cProfile and print the hottest "
                                  "functions")
    perf_parser.add_argument("--top", type=int, default=15, metavar="N",
                             help="hotspots to print with --profile")
    perf_parser.add_argument("--json", action="store_true",
                             help="print the measurement as JSON")
    perf_parser.add_argument("--out", metavar="FILE", default=None,
                             help="write the --json result to FILE "
                                  "(implies --json)")

    trace_parser = subparsers.add_parser(
        "trace", help="export per-hop packet spans for one scenario variant"
    )
    trace_parser.add_argument("scenario", help="scenario name "
                                              "(see 'scenarios')")
    trace_parser.add_argument("--variant", default=None, metavar="V",
                              help="scheduler variant to trace "
                                   "(default: the scenario's first)")
    trace_parser.add_argument("--quick", action="store_true",
                              help="shorter simulation duration")
    trace_parser.add_argument("--out", metavar="FILE", default="spans.jsonl",
                              help="span JSONL output path "
                                   "(default spans.jsonl)")
    trace_parser.add_argument("--chrome", metavar="FILE", default=None,
                              help="also write a chrome://tracing / "
                                   "Perfetto JSON document to FILE")
    trace_parser.add_argument("--json", action="store_true",
                              help="print the trace summary as JSON")

    campaign_parser = subparsers.add_parser(
        "campaign", help="run and summarise parameter-sweep campaigns"
    )
    campaign_sub = campaign_parser.add_subparsers(dest="campaign_command")

    campaign_sub.add_parser("list", help="list registered campaigns")

    crun = campaign_sub.add_parser("run", help="execute a campaign's run table")
    crun.add_argument("campaign", help="campaign name (see 'campaign list')")
    crun.add_argument("--quick", action="store_true",
                      help="shorter simulation durations")
    crun.add_argument("--workers", type=int, default=1, metavar="N",
                      help="worker processes (default 1; results are "
                           "identical for any worker count)")
    crun.add_argument("--store", metavar="FILE", default=None,
                      help="result store path (default campaign_<name>.jsonl)")
    crun.add_argument("--resume", action="store_true",
                      help="skip runs whose latest store record completed; "
                           "re-runs failed/timed-out/lost runs")
    crun.add_argument("--timeout", type=float, default=None, metavar="S",
                      help="per-run wall-clock budget in seconds; an "
                           "overrunning run is recorded as a timeout "
                           "failure (default: unbounded)")
    crun.add_argument("--max-attempts", type=int, default=1, metavar="N",
                      help="attempts per run before recording a failure "
                           "(default 1; retries cover transient exceptions)")
    crun.add_argument("--max-failures", type=int, default=None, metavar="N",
                      help="abort the campaign after more than N failed "
                           "runs (default: never abort; the store stays "
                           "resumable either way)")
    crun.add_argument("--json", action="store_true",
                      help="print the run summary as JSON instead of a table")
    crun.add_argument("--out", metavar="FILE", default=None,
                      help="write the --json summary to FILE instead of "
                           "stdout (implies --json)")

    cverify = campaign_sub.add_parser(
        "verify", help="check a result store's records without running"
    )
    cverify.add_argument("campaign", nargs="?", default=None,
                         help="campaign name (checks store coverage against "
                              "its run table and sets the default store path)")
    cverify.add_argument("--store", metavar="FILE", default=None,
                         help="result store to verify (default "
                              "campaign_<name>.jsonl)")
    cverify.add_argument("--quick", action="store_true",
                         help="expand the campaign's quick run table for "
                              "the coverage check")
    cverify.add_argument("--json", action="store_true",
                         help="print the verification summary as JSON")
    cverify.add_argument("--out", metavar="FILE", default=None,
                         help="write the --json summary to FILE instead of "
                              "stdout (implies --json)")

    creport = campaign_sub.add_parser(
        "report", help="summarise a campaign's result store"
    )
    creport.add_argument("campaign", nargs="?", default=None,
                         help="campaign name (used for the default store path)")
    creport.add_argument("--store", metavar="FILE", default=None,
                         help="result store to read (default "
                              "campaign_<name>.jsonl)")
    creport.add_argument("--group-by", metavar="FACTORS",
                         default="scenario,variant",
                         help="comma-separated factor columns "
                              "(default scenario,variant)")
    creport.add_argument("--queue", metavar="DIR", default=None,
                         help="summarise a lease-queue directory's merged "
                              "segments instead of a store file")
    creport.add_argument("--json", action="store_true",
                         help="print summary rows as JSON instead of a table")
    creport.add_argument("--out", metavar="FILE", default=None,
                         help="write the --json rows to FILE instead of "
                              "stdout (implies --json)")

    cserve = campaign_sub.add_parser(
        "serve",
        help="initialise a shared lease-queue directory; merge when drained",
    )
    cserve.add_argument("campaign", help="campaign name (see 'campaign list')")
    cserve.add_argument("--queue", metavar="DIR", required=True,
                        help="queue directory shared with the executors "
                             "(a shared filesystem path for multi-host runs)")
    cserve.add_argument("--quick", action="store_true",
                        help="serve the campaign's quick run table")
    cserve.add_argument("--shard-size", type=int, default=None, metavar="N",
                        help="runs per leased shard (default 4)")
    cserve.add_argument("--lease-ttl", type=float, default=None, metavar="S",
                        help="seconds without heartbeat before a lease is "
                             "presumed dead and stolen (default 60)")
    cserve.add_argument("--max-attempts", type=int, default=None, metavar="N",
                        help="lease generations allowed to die on one run "
                             "before it is quarantined (default 3)")
    cserve.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-run wall-clock budget applied by every "
                             "executor (default: unbounded)")
    cserve.add_argument("--store", metavar="FILE", default=None,
                        help="canonical store the drained queue merges into "
                             "(default campaign_<name>.jsonl)")
    cserve.add_argument("--wait", action="store_true",
                        help="poll until the queue drains, then merge")
    cserve.add_argument("--poll", type=float, default=2.0, metavar="S",
                        help="seconds between --wait polls (default 2)")
    cserve.add_argument("--json", action="store_true",
                        help="print the queue status / merge summary as JSON")
    cserve.add_argument("--out", metavar="FILE", default=None,
                        help="write the --json summary to FILE instead of "
                             "stdout (implies --json)")

    cwork = campaign_sub.add_parser(
        "work", help="drain shards from a lease-queue directory"
    )
    cwork.add_argument("--queue", metavar="DIR", required=True,
                       help="queue directory created by 'campaign serve'")
    cwork.add_argument("--executor", metavar="NAME", default=None,
                       help="executor name for leases and the store segment "
                            "(default <hostname>-<pid>)")
    cwork.add_argument("--max-shards", type=int, default=None, metavar="N",
                       help="stop after draining N shards (default: until "
                            "the queue is empty)")
    cwork.add_argument("--block", action="store_true",
                       help="keep polling for stealable leases until the "
                            "queue fully drains")
    cwork.add_argument("--poll", type=float, default=0.5, metavar="S",
                       help="seconds between --block polls (default 0.5)")
    cwork.add_argument("--json", action="store_true",
                       help="print the work report as JSON")
    cwork.add_argument("--out", metavar="FILE", default=None,
                       help="write the --json report to FILE instead of "
                            "stdout (implies --json)")

    cstatus = campaign_sub.add_parser(
        "status", help="read a campaign's live progress sidecar"
    )
    cstatus.add_argument("target",
                         help="result store path (reads <store>.progress) "
                              "or lease-queue directory (folds together "
                              "every executor's progress file)")
    cstatus.add_argument("--watch", action="store_true",
                         help="poll and reprint until the campaign leaves "
                              "the 'running' state")
    cstatus.add_argument("--interval", type=float, default=2.0, metavar="S",
                         help="seconds between --watch polls (default 2)")
    cstatus.add_argument("--json", action="store_true",
                         help="print the status as JSON (one document per "
                              "--watch poll)")

    return parser


# --------------------------------------------------------------------------- #
# Subcommand implementations                                                   #
# --------------------------------------------------------------------------- #
def _cmd_list() -> int:
    rows = [
        {
            "id": spec.experiment_id,
            "paper": spec.paper_reference,
            "description": spec.description,
        }
        for spec in list_experiments()
    ]
    print(render_table(rows, title="Reproduced experiments"))
    return 0


def _emit_json(payload, out: Optional[str]) -> None:
    """Print JSON to stdout or write it to ``--out FILE``."""
    text = json.dumps(payload, indent=2)
    if out is None:
        print(text)
    else:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {out}")


def _cmd_run(experiment: str, quick: bool, as_json: bool,
             out: Optional[str] = None) -> int:
    try:
        result = run_experiment(experiment, quick=quick)
    except KeyError as exc:
        print(str(exc.args[0]), file=sys.stderr)
        return 2
    if as_json or out is not None:
        _emit_json(result.to_dict(), out)
        return 0
    print(render_table(result.rows, title=result.title))
    if result.notes:
        print(f"\nNotes: {result.notes}")
    return 0


def _cmd_report(experiments: Sequence[str], quick: bool) -> int:
    ids = list(experiments) or None
    try:
        print(generate_report(ids, quick=quick))
    except KeyError as exc:
        print(str(exc.args[0]), file=sys.stderr)
        return 2
    return 0


def _cmd_programs() -> int:
    rows = []
    for name in sorted(PROGRAM_SOURCES):
        analysis = analyze_program(PROGRAM_SOURCES[name], state=PROGRAM_STATE[name])
        rows.append(
            {
                "program": name,
                "kind": "shaping" if name in SHAPING_PROGRAMS else "scheduling",
                "state_variables": len(PROGRAM_STATE[name]),
                "stateless_ops": analysis.stateless_ops,
            }
        )
    print(render_table(rows, title="Transaction-language programs"))
    return 0


def _cmd_scenarios() -> int:
    from .net import list_scenarios

    rows = []
    for scenario in list_scenarios():
        network = scenario.topology()
        rows.append(
            {
                "scenario": scenario.name,
                "paper": scenario.paper_reference,
                "topology": (f"{len(network.switches())} switches / "
                             f"{len(network.hosts())} hosts"),
                "variants": ", ".join(scenario.variants),
                "demands": len(scenario.demands),
            }
        )
    print(render_table(rows, title="Network-fabric scenarios"))
    print("\nRun one with: repro run SCENARIO [--quick] [--json]")
    return 0


# --------------------------------------------------------------------------- #
# Campaign subcommands                                                          #
# --------------------------------------------------------------------------- #
def _default_store_path(campaign_name: str) -> str:
    return f"campaign_{campaign_name}.jsonl"


def _cmd_campaign_list() -> int:
    from .campaign import list_campaigns

    rows = [
        {
            "campaign": campaign.name,
            "scenarios": ", ".join(campaign.scenarios),
            "runs": campaign.size(),
            "title": campaign.title,
        }
        for campaign in list_campaigns()
    ]
    print(render_table(rows, title="Registered campaigns"))
    print("\nRun one with: repro campaign run CAMPAIGN [--quick] [--workers N]")
    return 0


def _cmd_campaign_run(name: str, quick: bool, workers: int,
                      store_path: Optional[str], resume: bool,
                      as_json: bool, out: Optional[str],
                      timeout_s: Optional[float] = None,
                      max_attempts: int = 1,
                      max_failures: Optional[int] = None) -> int:
    from .campaign import (CampaignRunner, ResultStore, StoreError,
                           get_campaign, record_is_ok)

    try:
        campaign = get_campaign(name)
    except KeyError as exc:
        print(str(exc.args[0]), file=sys.stderr)
        return 2
    store = ResultStore(store_path or _default_store_path(name))
    try:
        runner = CampaignRunner(campaign, store, workers=workers, quick=quick,
                                resume=resume, timeout_s=timeout_s,
                                max_attempts=max_attempts,
                                max_failures=max_failures)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    def progress(record: Dict) -> None:
        if record_is_ok(record):
            print(f"  [{record['run_id']}] delivered={record['delivered']} "
                  f"dropped={record['dropped']} "
                  f"wall={record['wall_clock_s']:.2f}s")
        else:
            print(f"  [{record['run_id']}] {record['status'].upper()}: "
                  f"{record.get('error_type', '?')}: "
                  f"{record.get('error', '')} "
                  f"(attempt {record.get('attempts', 1)})")

    machine_readable = as_json or out is not None
    if not machine_readable:
        print(f"campaign {campaign.name}: {campaign.size()} runs "
              f"({workers} worker{'s' if workers != 1 else ''}"
              f"{', resume' if resume else ''}) -> {store.path}")
    try:
        report = runner.run(progress=None if machine_readable else progress)
    except StoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # The runner terminated its pool and flushed every committed
        # record before re-raising — tell the user how to pick it back up.
        print(f"\ninterrupted; store {store.path} is flushed and "
              f"resumable — rerun with --resume to finish",
              file=sys.stderr)
        return 130
    summary = {
        "campaign": report.campaign,
        "total_runs": report.total_runs,
        "executed": report.executed,
        "skipped": report.skipped,
        "failed": report.failed,
        "workers": report.workers,
        "wall_clock_s": report.wall_clock_s,
        "store": report.store_path,
    }
    if report.aborted:
        summary["aborted"] = report.aborted
    if report.degraded:
        summary["degraded"] = True
    if machine_readable:
        # Kernel-cache telemetry (hits/misses/installs summed across the
        # engine's workers) rides along in the machine-readable summary
        # only — it nests, which the flat key/value table can't render.
        if runner.kernel_cache_totals is not None:
            summary["kernel_cache"] = runner.kernel_cache_totals
        _emit_json(summary, out)
        return 0
    print(render_kv(summary, title=f"Campaign {report.campaign} finished"))
    if report.failed:
        print(f"\n{report.failed} run(s) failed; re-run with --resume to "
              f"retry exactly the failed set")
    return 0 if not report.aborted else 3


def _cmd_campaign_verify(name: Optional[str], store_path: Optional[str],
                         quick: bool, as_json: bool,
                         out: Optional[str]) -> int:
    """Check every store record's schema and fingerprint without running."""
    from .campaign import ResultStore

    expected = None
    if name is not None:
        from .campaign import get_campaign

        try:
            campaign = get_campaign(name)
        except KeyError as exc:
            print(str(exc.args[0]), file=sys.stderr)
            return 2
        expected = {spec.fingerprint()
                    for spec in campaign.expand(quick=quick)}
    if store_path is None:
        if name is None:
            print("campaign verify needs a campaign name or --store FILE",
                  file=sys.stderr)
            return 2
        store_path = _default_store_path(name)
    store = ResultStore(store_path)
    if not store.exists():
        print(f"no result store at {store.path} "
              f"(run 'repro campaign run' first)", file=sys.stderr)
        return 2
    summary = store.verify_records(expected_fingerprints=expected)
    issues = summary["issues"]
    if as_json or out is not None:
        _emit_json(summary, out)
        return 1 if issues else 0
    status = {
        "store": summary["path"],
        "records": summary["records"],
        "ok": summary["ok"],
        "failed": summary["failed"],
        "issues": len(issues),
    }
    if expected is not None:
        status["expected runs"] = summary["expected"]
        status["missing runs"] = summary["missing"]
    print(render_kv(status, title="Store verification"))
    for issue in issues:
        print(f"  ISSUE: {issue}")
    if issues:
        print(f"\n{len(issues)} issue(s) found", file=sys.stderr)
        return 1
    print("\nall records verified")
    return 0


def _cmd_campaign_report(name: Optional[str], store_path: Optional[str],
                         group_by: str, as_json: bool,
                         out: Optional[str],
                         queue_dir: Optional[str] = None) -> int:
    from .campaign import LeaseQueue, QueueError, ResultStore, StoreError
    from .reporting.campaign import summarize_records

    if queue_dir is not None:
        queue = LeaseQueue(queue_dir)
        records = queue.iter_merged_records()
        source = queue_dir
    else:
        if store_path is None:
            if name is None:
                print("campaign report needs a campaign name, --store FILE "
                      "or --queue DIR", file=sys.stderr)
                return 2
            store_path = _default_store_path(name)
        store = ResultStore(store_path)
        if not store.exists():
            print(f"no result store at {store.path} "
                  f"(run 'repro campaign run' first)", file=sys.stderr)
            return 2
        # Deduplicated streaming view: re-running a campaign into the same
        # store must not double-count runs (last record wins per
        # fingerprint), and the store is never loaded wholesale.
        records = store.iter_effective_records()
        source = str(store.path)
    if name is not None:
        records = (r for r in records if r.get("campaign") == name)
    factors = tuple(part.strip() for part in group_by.split(",") if part.strip())
    try:
        rows = summarize_records(records, group_by=factors)
    except (ValueError, StoreError, QueueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if as_json or out is not None:
        _emit_json(rows, out)
        return 0
    total_runs = sum(row["runs"] for row in rows)
    title = (f"Campaign summary ({source}, "
             f"{total_runs} runs by {', '.join(factors)})")
    print(render_table(rows, title=title))
    return 0


def _default_executor_name() -> str:
    import socket

    host = socket.gethostname().split(".")[0] or "executor"
    safe = "".join(ch if ch.isalnum() or ch in "-_" else "-" for ch in host)
    import os

    return f"{safe}-{os.getpid()}"


def _cmd_campaign_serve(name: str, queue_dir: str, quick: bool,
                        shard_size: Optional[int],
                        lease_ttl_s: Optional[float],
                        max_attempts: Optional[int],
                        timeout_s: Optional[float],
                        store_path: Optional[str], wait: bool, poll_s: float,
                        as_json: bool, out: Optional[str]) -> int:
    """Initialise (idempotently) a lease-queue; merge once it drains."""
    import time as _time

    from .campaign import (LeaseQueue, QueueError, ResultStore, WorkerPolicy,
                           get_campaign)
    from .campaign import queue as queue_module

    try:
        campaign = get_campaign(name)
    except KeyError as exc:
        print(str(exc.args[0]), file=sys.stderr)
        return 2
    policy = WorkerPolicy(timeout_s=timeout_s)
    try:
        queue = LeaseQueue.initialize(
            queue_dir,
            campaign.expand(quick=quick),
            campaign=name,
            shard_size=shard_size or queue_module.DEFAULT_SHARD_SIZE,
            lease_ttl_s=lease_ttl_s or queue_module.DEFAULT_LEASE_TTL_S,
            max_attempts=max_attempts or queue_module.DEFAULT_MAX_ATTEMPTS,
            policy=policy,
        )
    except QueueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    machine_readable = as_json or out is not None
    if wait:
        while not queue.drained():
            if not machine_readable:
                status = queue.status()
                print(f"  waiting: {status['done']}/{status['shards']} "
                      f"shards done, {status['leased']} leased "
                      f"({status['expired']} expired), "
                      f"{status['open']} open")
            _time.sleep(poll_s)
    summary = queue.status()
    if queue.drained():
        store = ResultStore(store_path or _default_store_path(name))
        summary["merged"] = queue.merge(store)
        summary["store"] = str(store.path)
    if machine_readable:
        _emit_json(summary, out)
        return 0
    executors = summary.pop("executors")
    print(render_kv(summary, title=f"Lease queue {queue_dir}"))
    if executors:
        print(f"  executors: {', '.join(executors)}")
    if "store" in summary:
        print(f"\nqueue drained; merged {summary['merged']} record(s) "
              f"into {summary['store']}")
    else:
        print(f"\nstart executors with: repro campaign work "
              f"--queue {queue_dir}")
    return 0


def _cmd_campaign_work(queue_dir: str, executor: Optional[str],
                       max_shards: Optional[int], block: bool, poll_s: float,
                       as_json: bool, out: Optional[str]) -> int:
    """Drain shards from a lease queue as one executor."""
    from .campaign import LeaseQueue, QueueError

    queue = LeaseQueue(queue_dir)
    executor = executor or _default_executor_name()
    try:
        report = queue.work(executor, max_shards=max_shards, block=block,
                            poll_s=poll_s)
    except QueueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(f"\ninterrupted; executor {executor}'s lease will expire and "
              f"be re-leased", file=sys.stderr)
        return 130
    summary = report.to_dict()
    summary["drained"] = queue.drained()
    if as_json or out is not None:
        _emit_json(summary, out)
        return 0
    print(render_kv(summary, title=f"Executor {executor} finished"))
    return 0


def _format_status_line(progress: Dict) -> str:
    """One-line human rendering of a progress snapshot (--watch mode)."""
    eta = progress.get("eta_s") or 0.0
    return (f"{progress.get('campaign', '?')}: "
            f"{progress.get('done', 0)}/{progress.get('total', '?')} done "
            f"({progress.get('ok', 0)} ok, {progress.get('failed', 0)} failed"
            f", {progress.get('quarantined', 0)} quarantined), "
            f"{progress.get('leases_in_flight', 0)} in flight, "
            f"{progress.get('runs_per_s', 0.0):.2f} runs/s, "
            f"eta {eta:.0f}s [{progress.get('state', '?')}]")


def _collect_campaign_status(target: str) -> Optional[Dict]:
    """One status snapshot for a store path or lease-queue directory.

    A queue directory (identified by its ``manifest.json``) folds the
    shard-level queue status together with every executor's
    ``progress_<name>.json``; a store path reads its ``<store>.progress``
    sidecar and cross-checks against the store's effective records.
    Returns ``None`` when the target has no readable status at all.
    """
    import glob
    import os

    from .obs.progress import progress_path_for, read_progress

    if os.path.isdir(target) and os.path.exists(
            os.path.join(target, "manifest.json")):
        from .campaign import LeaseQueue

        queue = LeaseQueue(target)
        status = queue.status()
        executors = []
        for path in sorted(glob.glob(os.path.join(target,
                                                  "progress_*.json"))):
            snap = read_progress(path)
            if snap is not None:
                executors.append(snap)
        drained = queue.drained()
        payload = {
            "mode": "queue",
            "source": target,
            "campaign": status["campaign"],
            "state": "done" if drained else "running",
            "total": status["runs"],
            "done": sum(e.get("done", 0) for e in executors),
            "ok": sum(e.get("ok", 0) for e in executors),
            "failed": sum(e.get("failed", 0) for e in executors),
            "quarantined": sum(e.get("quarantined", 0) for e in executors),
            "leases_in_flight": sum(e.get("leases_in_flight", 0)
                                    for e in executors
                                    if e.get("state") == "running"),
            "runs_per_s": round(sum(e.get("runs_per_s", 0.0)
                                    for e in executors
                                    if e.get("state") == "running"), 4),
            "shards_done": status["done"],
            "shards": status["shards"],
            "shards_leased": status["leased"],
            "shards_expired": status["expired"],
            "executors": executors,
        }
        return payload

    progress = read_progress(progress_path_for(target))
    from .campaign import ResultStore, record_is_ok

    store = ResultStore(target)
    counts = None
    if store.exists():
        ok = failed = 0
        for record in store.iter_effective_records():
            if record_is_ok(record):
                ok += 1
            else:
                failed += 1
        counts = {"store_records": ok + failed, "store_ok": ok,
                  "store_failed": failed}
    if progress is None and counts is None:
        return None
    payload = {"mode": "store", "source": target}
    if progress is not None:
        payload.update(progress)
    else:
        payload["state"] = "no-progress-file"
    if counts is not None:
        payload.update(counts)
    return payload


def _cmd_campaign_status(target: str, watch: bool, interval_s: float,
                         as_json: bool) -> int:
    """Read (and optionally poll) a campaign's live progress."""
    import time as _time

    while True:
        payload = _collect_campaign_status(target)
        if payload is None:
            print(f"no progress sidecar or result store at {target} "
                  f"(is the campaign running with this store/queue?)",
                  file=sys.stderr)
            return 2
        if as_json:
            print(json.dumps(payload, sort_keys=True))
        elif watch:
            print(_format_status_line(payload))
        else:
            executors = payload.pop("executors", None)
            print(render_kv(payload, title=f"Campaign status ({target})"))
            for snap in executors or ():
                print(f"  {snap.get('executor', '?')}: "
                      f"{_format_status_line(snap)}")
        if not watch or payload.get("state") != "running":
            return 0
        try:
            _time.sleep(interval_s)
        except KeyboardInterrupt:
            return 130


def _cmd_perf(workload: str, packets: int, pifo_backend: str,
              telemetry: bool, tree_kernel: bool, event_queue: Optional[str],
              batch_limit: Optional[int], profile: bool, top: int,
              as_json: bool, out: Optional[str]) -> int:
    from .perf import profile_workload, run_workload

    try:
        if profile:
            result = profile_workload(workload, packets=packets,
                                      pifo_backend=pifo_backend,
                                      telemetry=telemetry,
                                      tree_kernel=tree_kernel,
                                      event_queue=event_queue,
                                      batch_limit=batch_limit, top=top)
            perf = result.perf
        else:
            perf = run_workload(workload, packets=packets,
                                pifo_backend=pifo_backend,
                                telemetry=telemetry,
                                tree_kernel=tree_kernel,
                                event_queue=event_queue,
                                batch_limit=batch_limit)
            result = None
    except (KeyError, ValueError) as exc:
        print(str(exc.args[0]), file=sys.stderr)
        return 2
    if as_json or out is not None:
        payload = perf.to_dict()
        if result is not None:
            payload["hotspots"] = [
                {"function": fn, "calls": calls,
                 "tottime_s": tottime, "cumtime_s": cumtime}
                for fn, calls, tottime, cumtime in result.hotspots
            ]
        _emit_json(payload, out)
        return 0
    print(render_kv(
        {
            "workload": perf.workload,
            "pifo backend": perf.pifo_backend,
            "datapath": perf.datapath,
            "delivered packets": perf.delivered,
            "elapsed (s)": f"{perf.elapsed_s:.3f}",
            "packets/second": f"{perf.packets_per_second:,.0f}",
            "events/second": f"{perf.events_per_second:,.0f}",
            "kernel cache hits": perf.kernel_cache_hits,
            "kernel compiles": perf.kernel_compiles,
            "kernel installs": perf.kernel_installs,
        },
        title=f"Hot-path throughput ({perf.workload})",
    ))
    if result is not None:
        print()
        rows = [
            {
                "function": fn,
                "calls": calls,
                "tottime_s": f"{tottime:.3f}",
                "cumtime_s": f"{cumtime:.3f}",
            }
            for fn, calls, tottime, cumtime in result.hotspots
        ]
        print(render_table(rows, title=f"Top {len(rows)} hotspots (cProfile)"))
        print()
        print("(profiled throughput is 2-3x below unprofiled; compare "
              "tottime shares, not absolute rates)")
    return 0


def _cmd_trace(scenario_name: str, variant: Optional[str], quick: bool,
               out: str, chrome_out: Optional[str], as_json: bool) -> int:
    """Run one scenario variant with the trace collector attached."""
    from .net import get_scenario
    from .obs.trace import TraceCollector, spans_to_chrome, write_spans

    try:
        scenario = get_scenario(scenario_name)
    except KeyError as exc:
        print(str(exc.args[0]), file=sys.stderr)
        return 2
    if variant is None:
        variant = next(iter(scenario.variants))
    collector = TraceCollector()
    try:
        # Tracing wraps the interpreted per-port seams, so the fused
        # kernels are forced off for this run (results are identical).
        results = scenario.run(quick=quick, variant=variant, telemetry=True,
                               tree_kernel=False, trace_hook=collector.attach)
    except KeyError as exc:
        print(str(exc.args[0]), file=sys.stderr)
        return 2
    count = write_spans(collector.spans, out)
    summary = {
        "scenario": scenario_name,
        "variant": variant,
        "spans": count,
        "nodes": len({span["node"] for span in collector.spans}),
        "delivered": results[variant].conservation.get("delivered", 0),
        "out": out,
    }
    if chrome_out is not None:
        doc = spans_to_chrome(collector.spans)
        with open(chrome_out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
            handle.write("\n")
        summary["chrome"] = chrome_out
    if as_json:
        _emit_json(summary, None)
        return 0
    print(render_kv(summary, title=f"Packet trace ({scenario_name})"))
    if chrome_out is not None:
        print(f"\nopen {chrome_out} in chrome://tracing or "
              f"https://ui.perfetto.dev")
    return 0


def _cmd_show(program: str, tree_kernel: bool = False,
              pifo_backend: str = "sorted") -> int:
    if program not in PROGRAM_SOURCES:
        known = ", ".join(sorted(PROGRAM_SOURCES))
        print(f"unknown program {program!r}; known programs: {known}",
              file=sys.stderr)
        return 2
    source = PROGRAM_SOURCES[program]
    state = PROGRAM_STATE[program]
    kind = "shaping" if program in SHAPING_PROGRAMS else "scheduling"
    analysis = analyze_program(source, state=state)
    spec = spec_from_program(program, source, state=state, kind=kind)
    pipeline = AtomPipelineAnalyzer().analyze(spec)

    print(f"# {program} ({kind} transaction)")
    print(source.strip())
    print()
    print(render_kv(
        {
            "feasible at line rate": pipeline.feasible,
            "atoms": pipeline.total_atoms,
            "pipeline depth": pipeline.pipeline_depth,
            "atom area (mm^2)": pipeline.area_mm2,
        },
        title="Atom pipeline (Section 4.1)",
    ))
    print()
    print("Analysis")
    print("========")
    print(analysis.summary())
    transaction = DEFAULT_FACTORIES[program]()
    generated = getattr(transaction, "generated_source", lambda: None)()
    print()
    print(f"Execution backend: {transaction.backend}")
    if generated is not None:
        print()
        print("Generated Python (repro.lang.compiler)")
        print("======================================")
        print(generated.rstrip())
    if tree_kernel:
        from .core.scheduler import ProgrammableScheduler
        from .core.tree import single_node_tree

        scheduler = ProgrammableScheduler(
            single_node_tree(DEFAULT_FACTORIES[program]()),
            pifo_backend=pifo_backend,
        )
        print()
        print("Fused tree kernel (repro.lang.treekernel)")
        print("=========================================")
        kernel = scheduler.tree_kernel
        if kernel is None:
            print(f"not fused: {scheduler.kernel_fallback_reason}")
        else:
            print(f"# cached as {kernel.filename} "
                  f"(backend={pifo_backend})")
            print(kernel.source.rstrip())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command is None:
        parser.print_help()
        return 1
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.quick, args.json, args.out)
    if args.command == "report":
        return _cmd_report(args.experiments, args.quick)
    if args.command == "programs":
        return _cmd_programs()
    if args.command == "scenarios":
        return _cmd_scenarios()
    if args.command == "show":
        return _cmd_show(args.program, args.tree_kernel, args.pifo_backend)
    if args.command == "perf":
        return _cmd_perf(args.workload, args.packets, args.pifo_backend,
                         args.telemetry, args.tree_kernel, args.event_queue,
                         args.batch_limit, args.profile, args.top,
                         args.json, args.out)
    if args.command == "trace":
        return _cmd_trace(args.scenario, args.variant, args.quick,
                          args.out, args.chrome, args.json)
    if args.command == "campaign":
        if args.campaign_command is None:
            print("usage: repro campaign "
                  "{run,list,report,verify,serve,work,status} ...",
                  file=sys.stderr)
            return 2
        if args.campaign_command == "list":
            return _cmd_campaign_list()
        if args.campaign_command == "run":
            return _cmd_campaign_run(args.campaign, args.quick, args.workers,
                                     args.store, args.resume, args.json,
                                     args.out, args.timeout,
                                     args.max_attempts, args.max_failures)
        if args.campaign_command == "report":
            return _cmd_campaign_report(args.campaign, args.store,
                                        args.group_by, args.json, args.out,
                                        args.queue)
        if args.campaign_command == "verify":
            return _cmd_campaign_verify(args.campaign, args.store,
                                        args.quick, args.json, args.out)
        if args.campaign_command == "serve":
            return _cmd_campaign_serve(args.campaign, args.queue, args.quick,
                                       args.shard_size, args.lease_ttl,
                                       args.max_attempts, args.timeout,
                                       args.store, args.wait, args.poll,
                                       args.json, args.out)
        if args.campaign_command == "work":
            return _cmd_campaign_work(args.queue, args.executor,
                                      args.max_shards, args.block, args.poll,
                                      args.json, args.out)
        if args.campaign_command == "status":
            return _cmd_campaign_status(args.target, args.watch,
                                        args.interval, args.json)
    parser.error(f"unhandled command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
