"""Classic (non-PIFO) schedulers used as baselines and ground truth.

These implement the same ``enqueue``/``dequeue``/``__len__`` interface as
:class:`~repro.core.scheduler.ProgrammableScheduler`, so any experiment can
swap a PIFO-programmed algorithm for its fixed-function counterpart.
"""

from .drr import DeficitRoundRobin
from .fifo_queue import FIFOQueue
from .gps import GPSFluidSimulator, GPSResult
from .hierarchical_drr import HierarchicalDRR
from .priority_queue import StrictPriorityQueue
from .sfq import StochasticFairnessQueueing
from .token_bucket_shaper import OutputTokenBucketShaper

__all__ = [
    "FIFOQueue",
    "StrictPriorityQueue",
    "DeficitRoundRobin",
    "StochasticFairnessQueueing",
    "GPSFluidSimulator",
    "GPSResult",
    "HierarchicalDRR",
    "OutputTokenBucketShaper",
]
