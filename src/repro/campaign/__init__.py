"""Campaign engine: parallel parameter sweeps over the scenario registry.

The paper's thesis — one PIFO substrate expresses many scheduling
algorithms — is demonstrated at scale by sweeping algorithms x topologies
x backends x loads, not by running one scenario at a time.  This package
is that execution layer:

* :mod:`~repro.campaign.spec` — :class:`Campaign` factor declarations
  expanding into a deterministic run table of pickle-safe
  :class:`RunSpec` rows, each with a seed derived from
  ``(base_seed, workload_id)`` so scheduler/backend factors compare on
  identical workloads while replicates stay independent;
* :mod:`~repro.campaign.runner` — :class:`CampaignRunner` shards the run
  table across a ``multiprocessing`` pool (``workers=1`` is bit-identical
  to serial execution, modulo wall-clock fields);
* :mod:`~repro.campaign.store` — append-only JSONL :class:`ResultStore`
  with per-run config fingerprints, making interrupted campaigns
  resumable (``--resume`` re-runs exactly the missing and failed sets);
* :mod:`~repro.campaign.builtin` — the campaign registry and the built-in
  ``paper_sweep`` / ``fault_sweep`` campaigns.

Execution is crash-isolated: exceptions, per-run timeouts and dead worker
processes become structured failure records in the store (see
:func:`~repro.campaign.runner.execute_spec_guarded`) instead of killing
the sweep, bounded retry with backoff covers transient failures, and the
runner degrades from pool to per-spec subprocesses when the pool itself
breaks.

Aggregation of store records into grouped summary tables lives in
:mod:`repro.reporting.campaign`; the CLI front end is
``repro campaign run|list|report|verify``.
"""

from .builtin import (
    CAMPAIGNS,
    FAULT_SWEEP,
    PAPER_SWEEP,
    get_campaign,
    list_campaigns,
    register_campaign,
)
from .runner import (
    CampaignReport,
    CampaignRunner,
    WorkerPolicy,
    execute_spec,
    execute_spec_guarded,
    failure_record,
)
from .spec import FACTOR_KEYS, Campaign, RunSpec
from .store import (
    FAILURE_STATUSES,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    STATUS_WORKER_LOST,
    TIMING_FIELDS,
    ResultStore,
    StoreError,
    record_is_ok,
    strip_timing,
)

__all__ = [
    "Campaign",
    "RunSpec",
    "FACTOR_KEYS",
    "CampaignRunner",
    "CampaignReport",
    "WorkerPolicy",
    "execute_spec",
    "execute_spec_guarded",
    "failure_record",
    "ResultStore",
    "StoreError",
    "TIMING_FIELDS",
    "STATUS_OK",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
    "STATUS_WORKER_LOST",
    "FAILURE_STATUSES",
    "record_is_ok",
    "strip_timing",
    "CAMPAIGNS",
    "PAPER_SWEEP",
    "FAULT_SWEEP",
    "register_campaign",
    "get_campaign",
    "list_campaigns",
]
