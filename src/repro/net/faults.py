"""Declarative fault injection: failing links and switches in the fabric.

A :class:`FaultPlan` is a schedule of topology faults — link down/up,
switch failure/recovery — plus optional probabilistic per-link packet
loss.  The plan is pure data; attaching it to a
:class:`~repro.net.fabric.Fabric` (the ``fault_plan=`` constructor
argument) creates a :class:`FaultInjector` that executes the events as
ordinary simulator events and keeps the fabric's accounting honest while
the topology changes under it.

Semantics
---------
* **Link down** (both directions): the packet currently being serialised
  onto the link is blackholed when its transmission completes — the bits
  went onto a dead wire — and so is anything still propagating on the
  wire.  The egress port then *halts*: packets already queued behind the
  dead link stay buffered (they count as ``in_flight``) and burst out
  when the link recovers, which is exactly the queue-buildup-and-drain
  behaviour a flapping link produces in a real fabric.
* **Switch down**: every link touching the switch behaves as down; the
  switch's buffered packets stay in place (``in_flight``) until recovery.
* **Routing reconvergence**: each topology change synchronously rebuilds
  every forwarding table over the surviving subgraph (the fabric analogue
  of an instant IGP/ECMP reconvergence).  Destinations that became
  unreachable simply have no route: traffic for them is blackholed at the
  first hop that cannot forward it — counted, never silently lost.
* **Probabilistic loss**: each :class:`LinkLoss` drops packets crossing
  the link with probability ``rate`` inside ``[start, end]``.  Draws come
  from a per-directed-link :class:`random.Random` seeded with
  :func:`~repro.core.seeds.derive_seed` from the plan seed, so loss
  patterns are reproducible and — because per-link crossing order is
  identical on the fused and interpreted datapaths — lockstep-identical
  across both.

Every blackholed packet increments the fabric's ``lost_to_faults``
counter, keeping the conservation identity exact at all times::

    injected == delivered + dropped + lost_to_faults + in_flight
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.seeds import derive_seed
from ..exceptions import FaultError

__all__ = [
    "LinkDown",
    "LinkUp",
    "SwitchDown",
    "SwitchUp",
    "LinkLoss",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "flapping_link",
]


# --------------------------------------------------------------------------- #
# Fault events                                                                 #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LinkDown:
    """Take the (undirected) link ``src``–``dst`` down at ``time``."""

    time: float
    src: str
    dst: str


@dataclass(frozen=True)
class LinkUp:
    """Restore the link ``src``–``dst`` at ``time``."""

    time: float
    src: str
    dst: str


@dataclass(frozen=True)
class SwitchDown:
    """Fail switch ``node`` (all its links go dark) at ``time``."""

    time: float
    node: str


@dataclass(frozen=True)
class SwitchUp:
    """Recover switch ``node`` at ``time``."""

    time: float
    node: str


FaultEvent = Union[LinkDown, LinkUp, SwitchDown, SwitchUp]


@dataclass(frozen=True)
class LinkLoss:
    """Drop packets crossing ``src``–``dst`` with probability ``rate``.

    Applies to both directions of the link, each with an independent
    derived RNG stream.  ``start``/``end`` bound the lossy window
    (``end=None`` means until the end of the run).
    """

    src: str
    dst: str
    rate: float
    start: float = 0.0
    end: Optional[float] = None


def flapping_link(src: str, dst: str, first_down: float, downtime: float,
                  period: float, cycles: int) -> Tuple[FaultEvent, ...]:
    """Down/up event cycles for one link — the classic flapping hop.

    Cycle ``i`` takes the link down at ``first_down + i * period`` and
    brings it back ``downtime`` later.
    """
    if downtime <= 0 or period <= downtime:
        raise FaultError(
            f"flapping_link needs 0 < downtime < period "
            f"(got downtime={downtime}, period={period})"
        )
    events: List[FaultEvent] = []
    for cycle in range(cycles):
        down_at = first_down + cycle * period
        events.append(LinkDown(down_at, src, dst))
        events.append(LinkUp(down_at + downtime, src, dst))
    return tuple(events)


# --------------------------------------------------------------------------- #
# The plan                                                                     #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultPlan:
    """A declarative schedule of faults, validated against a topology.

    ``events`` are applied at their simulated times; ``losses`` are active
    for the whole run (inside their windows).  ``seed`` roots the derived
    per-link loss RNG streams, so two runs of the same plan see identical
    loss patterns.
    """

    events: Tuple[FaultEvent, ...] = ()
    losses: Tuple[LinkLoss, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Accept plain lists in the constructor; store canonical tuples.
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(self, "losses", tuple(self.losses))

    def validate(self, network) -> None:
        """Check every event/loss names real topology elements.

        Raises :class:`~repro.exceptions.FaultError` on an unknown link or
        switch, a switch event naming a host, a negative time, or a loss
        rate outside ``[0, 1]``.
        """
        for event in self.events:
            if event.time < 0:
                raise FaultError(f"fault event time must be >= 0: {event}")
            if isinstance(event, (LinkDown, LinkUp)):
                self._check_link(network, event.src, event.dst)
            else:
                node = self._check_node(network, event.node)
                if node.kind != "switch":
                    raise FaultError(
                        f"switch fault events must name switches; "
                        f"{event.node!r} is a {node.kind}"
                    )
        for loss in self.losses:
            self._check_link(network, loss.src, loss.dst)
            if not 0.0 <= loss.rate <= 1.0:
                raise FaultError(
                    f"loss rate must be in [0, 1], got {loss.rate} "
                    f"for {loss.src!r}-{loss.dst!r}"
                )
            if loss.end is not None and loss.end < loss.start:
                raise FaultError(
                    f"loss window ends before it starts: {loss}"
                )

    @staticmethod
    def _check_node(network, name: str):
        try:
            return network.node(name)
        except Exception as exc:  # TopologyError on unknown names
            raise FaultError(f"fault plan names unknown node {name!r}") \
                from exc

    @classmethod
    def _check_link(cls, network, src: str, dst: str) -> None:
        cls._check_node(network, src)
        cls._check_node(network, dst)
        if dst not in network.links.get(src, {}) \
                and src not in network.links.get(dst, {}):
            raise FaultError(f"no link {src!r}-{dst!r} in the topology")

    def empty(self) -> bool:
        return not self.events and not self.losses


# --------------------------------------------------------------------------- #
# The injector                                                                 #
# --------------------------------------------------------------------------- #
class FaultInjector:
    """Executes a :class:`FaultPlan` against one live fabric.

    Created by :class:`~repro.net.fabric.Fabric` when a plan is attached;
    holds the current down-set, the per-link loss RNGs and the
    ``lost_to_faults`` ledger.  All mutation happens through simulator
    events scheduled by :meth:`schedule`.
    """

    def __init__(self, fabric, plan: FaultPlan) -> None:
        plan.validate(fabric.network)
        self.fabric = fabric
        self.plan = plan
        #: Directed (src, dst) pairs currently administratively down.
        self.down_links: set = set()
        #: Switch nodes currently failed.
        self.down_switches: set = set()
        #: Blackholed packets by cause: link_down / switch_down / loss /
        #: no_route.
        self.lost_by_cause: Dict[str, int] = {}
        #: Number of routing reconvergences triggered by fault events.
        self.topology_changes = 0
        # Per-directed-link loss windows and their derived RNG streams.
        self._loss_specs: Dict[Tuple[str, str], List[LinkLoss]] = {}
        for loss in plan.losses:
            for pair in ((loss.src, loss.dst), (loss.dst, loss.src)):
                self._loss_specs.setdefault(pair, []).append(loss)
        self._loss_rngs: Dict[Tuple[str, str], random.Random] = {
            pair: random.Random(derive_seed(plan.seed,
                                            f"loss/{pair[0]}->{pair[1]}"))
            for pair in self._loss_specs
        }
        self._install_port_guards()

    # -- wiring ------------------------------------------------------------
    def schedule(self) -> None:
        """Register every plan event with the fabric's simulator."""
        for event in self.plan.events:
            self.fabric.sim.schedule_at(
                event.time,
                lambda e=event: self.apply(e),
                name=f"fault:{type(event).__name__}",
            )

    def _install_port_guards(self) -> None:
        """Wrap every egress port's transmit-completion callback.

        The guard checks the port's ``faulted`` flag at completion time:
        a live port runs the generic path unchanged; a dead one blackholes
        the in-flight packet (it was serialised onto a dead wire), keeps
        the upstream buffer accounting exact via the departure callback,
        and halts the transmit loop until recovery kicks it.
        """
        fabric = self.fabric
        for node, switch in fabric.node_switches.items():
            for neighbor in fabric.network.links[node]:
                port = switch.ports[fabric.port_to(neighbor)]
                self._guard_port(port, node, neighbor)

    def _guard_port(self, port, node: str, neighbor: str) -> None:
        inner = port._tx_complete
        injector = self
        sim = self.fabric.sim

        def guarded() -> None:
            if not port.faulted:
                inner()
                return
            packet = port._tx_packet
            port._tx_packet = None
            packet.departure_time = sim.now
            port.busy = False
            # The packet *did* leave this port — transmit counters and the
            # upstream buffer release stay exact — it just never arrives.
            port.transmitted_packets += 1
            port.transmitted_bytes += packet.length
            on_departure = port.on_departure
            if on_departure is not None:
                on_departure(packet)
            injector.record_loss(packet, injector._down_cause(node, neighbor))
            # No self-reschedule: the port halts until a recovery event
            # flips ``faulted`` back and calls ``_try_transmit``.

        port._tx_complete = guarded

    # -- state queries -----------------------------------------------------
    def link_usable(self, src: str, dst: str) -> bool:
        """Whether the directed link ``src -> dst`` currently carries bits."""
        if src in self.down_switches or dst in self.down_switches:
            return False
        return (src, dst) not in self.down_links

    def _down_cause(self, src: str, dst: str) -> str:
        if src in self.down_switches or dst in self.down_switches:
            return "switch_down"
        return "link_down"

    def loss_roll(self, src: str, dst: str, now: float) -> bool:
        """One loss draw for a packet crossing ``src -> dst`` at ``now``."""
        specs = self._loss_specs.get((src, dst))
        if not specs:
            return False
        rng = self._loss_rngs[(src, dst)]
        for spec in specs:
            if now < spec.start:
                continue
            if spec.end is not None and now > spec.end:
                continue
            if rng.random() < spec.rate:
                return True
        return False

    @property
    def lost_to_faults(self) -> int:
        return sum(self.lost_by_cause.values())

    def record_loss(self, packet, cause: str) -> None:
        """Account one blackholed packet under ``cause``."""
        self.lost_by_cause[cause] = self.lost_by_cause.get(cause, 0) + 1
        self.fabric.lost_to_faults += 1

    # -- event application -------------------------------------------------
    def apply(self, event: FaultEvent) -> None:
        """Apply one fault event; reconverges routing if anything changed."""
        if isinstance(event, LinkDown):
            changed = self._set_link(event.src, event.dst, down=True)
        elif isinstance(event, LinkUp):
            changed = self._set_link(event.src, event.dst, down=False)
        elif isinstance(event, SwitchDown):
            changed = event.node not in self.down_switches
            self.down_switches.add(event.node)
        elif isinstance(event, SwitchUp):
            changed = event.node in self.down_switches
            self.down_switches.discard(event.node)
        else:  # pragma: no cover - plan validation forbids this
            raise FaultError(f"unknown fault event {event!r}")
        if changed:
            self.topology_changes += 1
            self._reconverge()

    def _set_link(self, src: str, dst: str, down: bool) -> bool:
        pairs = {(src, dst), (dst, src)}
        if down:
            added = pairs - self.down_links
            self.down_links |= pairs
            return bool(added)
        removed = pairs & self.down_links
        self.down_links -= pairs
        return bool(removed)

    def _reconverge(self) -> None:
        """Routing + port liveness after a topology change.

        Rebuilds every forwarding table over the surviving subgraph, then
        syncs each port's ``faulted`` flag — kicking revived ports so their
        queued backlog starts draining again.
        """
        fabric = self.fabric
        fabric.reinstall_routes(link_filter=self.link_usable)
        for node, switch in fabric.node_switches.items():
            for neighbor in fabric.network.links[node]:
                port = switch.ports[fabric.port_to(neighbor)]
                alive = self.link_usable(node, neighbor)
                was_faulted = port.faulted
                port.faulted = not alive
                if was_faulted and alive and not port.busy:
                    port._try_transmit()
