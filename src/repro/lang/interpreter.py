"""Interpreter for the transaction language.

A program executes once per packet, exactly like a scheduling or shaping
transaction: it reads packet fields (``p.x``), the wall clock (``now``),
named parameters (rates, burst sizes, frame lengths), and the transaction's
persistent *state variables*; it writes packet fields — in particular
``p.rank`` and ``p.send_time`` — and state variables.

Name resolution mirrors how the paper's figures read:

1. ``p`` is the packet; ``now`` is the wall clock.
2. A bare name that was declared as a state variable reads/writes that state.
3. A bare name present in the parameter mapping is a constant for the run
   (``r``, ``B``, ``T``, ``min_rate``, ``BURST_SIZE`` ...).  Assigning to a
   parameter is an error — parameters are configuration, not state.
4. Any other assigned name is a local, scoped to the current execution
   (``f`` in Figure 1).

``f.weight`` style attribute reads on a local holding a flow identifier are
resolved through the environment's ``flow_attrs`` accessors, mirroring how a
real switch would look up per-flow configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, MutableMapping, Optional, Tuple

from ..core.packet import Packet
from ..core.transaction import TransactionContext
from .ast import (
    Assign,
    Attribute,
    BinOp,
    Boolean,
    BoolOp,
    Call,
    Compare,
    Expression,
    If,
    Membership,
    Name,
    Number,
    Program,
    Statement,
    Subscript,
    UnaryOp,
    format_node,
)
from .errors import RuntimeLangError

#: Packet attributes a program may read directly (everything else is looked
#: up in the packet's free-form ``fields`` mapping).  ``size`` is accepted as
#: an alias for ``length`` because Figure 8 uses ``p.size``.
_PACKET_BUILTIN_FIELDS = {
    "length": lambda packet, ctx: ctx.element_length or packet.length,
    "size": lambda packet, ctx: ctx.element_length or packet.length,
    "flow": lambda packet, ctx: ctx.element_flow or packet.flow,
    "arrival_time": lambda packet, ctx: packet.arrival_time,
    "class": lambda packet, ctx: packet.packet_class,
    "priority": lambda packet, ctx: packet.priority,
}


@dataclass
class ProgramEnvironment:
    """Everything a program execution may read besides the packet.

    Attributes
    ----------
    state:
        The transaction's persistent state variables.  The mapping is
        mutated in place by assignments to declared state names.
    params:
        Read-only named constants (rates, burst sizes, frame lengths).
    flow_attrs:
        Accessors for ``<local>.<attr>`` reads where the local holds a flow
        identifier — for example ``{"weight": lambda flow: weights[flow]}``
        makes Figure 1's ``f.weight`` work.
    functions:
        Extra builtin functions callable from programs, merged over the
        defaults (``min``, ``max``, ``abs``, ``floor``, ``ceil``,
        ``flow(p)``).
    """

    state: MutableMapping[str, Any] = field(default_factory=dict)
    params: Mapping[str, Any] = field(default_factory=dict)
    flow_attrs: Mapping[str, Callable[[Any], Any]] = field(default_factory=dict)
    functions: Mapping[str, Callable[..., Any]] = field(default_factory=dict)


@dataclass
class ExecutionResult:
    """Outcome of running a program on one packet.

    Attributes
    ----------
    rank:
        Value assigned to ``p.rank`` (``None`` if the program never set it).
    send_time:
        Value assigned to ``p.send_time``.
    packet_writes:
        Every packet field the program wrote, including ``rank`` and
        ``send_time``.
    locals:
        Final values of the execution-scoped locals (useful in tests).
    """

    rank: Optional[float]
    send_time: Optional[float]
    packet_writes: Dict[str, Any]
    locals: Dict[str, Any]


class Interpreter:
    """Executes a parsed :class:`~repro.lang.ast.Program` one packet at a time.

    The interpreter itself is stateless; all persistence lives in the
    :class:`ProgramEnvironment` supplied per call, which is what lets the
    bridge layer snapshot/restore state for serialisability tests.
    """

    def __init__(self, program: Program) -> None:
        self.program = program

    # -- public API -----------------------------------------------------------
    def execute(
        self,
        packet: Packet,
        ctx: TransactionContext,
        env: ProgramEnvironment,
    ) -> ExecutionResult:
        """Run the program against ``packet`` and return what it produced."""
        frame = _Frame(packet=packet, ctx=ctx, env=env)
        for statement in self.program.statements:
            self._exec_statement(statement, frame)
        return ExecutionResult(
            rank=frame.packet_writes.get("rank"),
            send_time=frame.packet_writes.get("send_time"),
            packet_writes=dict(frame.packet_writes),
            locals=dict(frame.locals),
        )

    # -- statements -------------------------------------------------------------
    def _exec_statement(self, statement: Statement, frame: "_Frame") -> None:
        if isinstance(statement, Assign):
            value = self._eval(statement.value, frame)
            self._assign(statement, value, frame)
            return
        if isinstance(statement, If):
            if _truthy(self._eval(statement.condition, frame)):
                for inner in statement.body:
                    self._exec_statement(inner, frame)
            else:
                for inner in statement.orelse:
                    self._exec_statement(inner, frame)
            return
        raise RuntimeLangError(  # pragma: no cover - parser prevents this
            f"unsupported statement {statement!r}", line=statement.line
        )

    def _assign(self, statement: Assign, value: Any, frame: "_Frame") -> None:
        target = statement.target
        if isinstance(target, Attribute):
            if target.obj != "p":
                raise RuntimeLangError(
                    f"can only assign to packet fields (p.*), not "
                    f"{format_node(target)!r}",
                    line=target.line,
                )
            frame.packet_writes[target.attribute] = value
            return
        if isinstance(target, Subscript):
            table = self._state_table(target.obj, frame, line=target.line)
            key = self._eval(target.index, frame)
            table[key] = value
            return
        # Plain name: state variable wins, parameters are read-only,
        # anything else becomes a local.
        name = target.identifier
        if name in frame.env.state:
            frame.env.state[name] = value
            return
        if name in frame.env.params:
            raise RuntimeLangError(
                f"{name!r} is a parameter and cannot be assigned",
                line=target.line,
            )
        frame.locals[name] = value

    def _state_table(self, name: str, frame: "_Frame", line: int) -> MutableMapping:
        if name not in frame.env.state:
            raise RuntimeLangError(
                f"{name!r} is not a declared state variable (per-flow tables "
                "must be declared in the program's initial state)",
                line=line,
            )
        table = frame.env.state[name]
        if not isinstance(table, MutableMapping) and not isinstance(table, dict):
            raise RuntimeLangError(
                f"state variable {name!r} is not a table and cannot be "
                "subscripted",
                line=line,
            )
        return table

    # -- expressions --------------------------------------------------------------
    def _eval(self, expr: Expression, frame: "_Frame") -> Any:
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, Boolean):
            return expr.value
        if isinstance(expr, Name):
            return self._read_name(expr, frame)
        if isinstance(expr, Attribute):
            return self._read_attribute(expr, frame)
        if isinstance(expr, Subscript):
            table = self._state_table(expr.obj, frame, line=expr.line)
            key = self._eval(expr.index, frame)
            if key not in table:
                raise RuntimeLangError(
                    f"key {key!r} not present in table {expr.obj!r} (guard the "
                    "read with an 'in' check, as Figure 1 does)",
                    line=expr.line,
                )
            return table[key]
        if isinstance(expr, Call):
            return self._call(expr, frame)
        if isinstance(expr, UnaryOp):
            operand = self._eval(expr.operand, frame)
            if expr.operator == "-":
                return -operand
            return not _truthy(operand)
        if isinstance(expr, BinOp):
            return self._binop(expr, frame)
        if isinstance(expr, Compare):
            return self._compare(expr, frame)
        if isinstance(expr, BoolOp):
            if expr.operator == "and":
                result: Any = True
                for operand in expr.operands:
                    result = self._eval(operand, frame)
                    if not _truthy(result):
                        return result
                return result
            for operand in expr.operands:
                result = self._eval(operand, frame)
                if _truthy(result):
                    return result
            return result
        if isinstance(expr, Membership):
            table = self._state_table(expr.table, frame, line=expr.line)
            present = self._eval(expr.item, frame) in table
            return (not present) if expr.negated else present
        raise RuntimeLangError(  # pragma: no cover - parser prevents this
            f"unsupported expression {expr!r}", line=getattr(expr, "line", 0)
        )

    def _read_name(self, expr: Name, frame: "_Frame") -> Any:
        name = expr.identifier
        if name == "now":
            return frame.ctx.now
        if name == "p":
            return frame.packet
        if name in frame.locals:
            return frame.locals[name]
        if name in frame.env.state:
            return frame.env.state[name]
        if name in frame.env.params:
            return frame.env.params[name]
        raise RuntimeLangError(
            f"undefined name {name!r} (not a local, state variable, parameter "
            "or builtin)",
            line=expr.line,
        )

    def _read_attribute(self, expr: Attribute, frame: "_Frame") -> Any:
        if expr.obj == "p":
            return self._read_packet_field(expr, frame)
        # ``f.weight``: the object is a local (or parameter) holding a flow
        # identifier, and the attribute is resolved through flow_attrs.
        accessor = frame.env.flow_attrs.get(expr.attribute)
        if accessor is None:
            raise RuntimeLangError(
                f"no flow attribute accessor registered for "
                f"{format_node(expr)!r} (pass flow_attrs={{'{expr.attribute}': ...}})",
                line=expr.line,
            )
        owner = self._read_name(Name(identifier=expr.obj, line=expr.line), frame)
        return accessor(owner)

    def _read_packet_field(self, expr: Attribute, frame: "_Frame") -> Any:
        name = expr.attribute
        # Reads observe earlier writes in the same execution (Figure 1 reads
        # back p.start after assigning it).
        if name in frame.packet_writes:
            return frame.packet_writes[name]
        if name in _PACKET_BUILTIN_FIELDS:
            return _PACKET_BUILTIN_FIELDS[name](frame.packet, frame.ctx)
        if name in frame.packet.fields:
            return frame.packet.fields[name]
        raise RuntimeLangError(
            f"packet has no field {name!r} (set it in Packet.fields or via an "
            "earlier assignment in the program)",
            line=expr.line,
        )

    def _call(self, expr: Call, frame: "_Frame") -> Any:
        args = [self._eval(arg, frame) for arg in expr.args]
        function = frame.env.functions.get(expr.function)
        if function is None:
            function = _BUILTIN_FUNCTIONS.get(expr.function)
        if expr.function == "flow":
            # ``flow(p)`` — the flow the element being ranked belongs to.
            return frame.ctx.element_flow or frame.packet.flow
        if function is None:
            raise RuntimeLangError(
                f"unknown function {expr.function!r}", line=expr.line
            )
        try:
            return function(*args)
        except (TypeError, ValueError) as exc:
            raise RuntimeLangError(
                f"call to {expr.function!r} failed: {exc}", line=expr.line
            ) from exc

    def _binop(self, expr: BinOp, frame: "_Frame") -> Any:
        left = self._eval(expr.left, frame)
        right = self._eval(expr.right, frame)
        try:
            if expr.operator == "+":
                return left + right
            if expr.operator == "-":
                return left - right
            if expr.operator == "*":
                return left * right
            if expr.operator == "/":
                return left / right
            if expr.operator == "%":
                return left % right
        except ZeroDivisionError:
            raise RuntimeLangError(
                f"division by zero in {format_node(expr)!r}", line=expr.line
            ) from None
        except TypeError as exc:
            raise RuntimeLangError(
                f"bad operands for {expr.operator!r} in {format_node(expr)!r}: {exc}",
                line=expr.line,
            ) from exc
        raise RuntimeLangError(  # pragma: no cover - parser prevents this
            f"unknown operator {expr.operator!r}", line=expr.line
        )

    def _compare(self, expr: Compare, frame: "_Frame") -> bool:
        left = self._eval(expr.left, frame)
        right = self._eval(expr.right, frame)
        try:
            if expr.operator == "<":
                return left < right
            if expr.operator == "<=":
                return left <= right
            if expr.operator == ">":
                return left > right
            if expr.operator == ">=":
                return left >= right
            if expr.operator == "==":
                return left == right
            if expr.operator == "!=":
                return left != right
        except TypeError as exc:
            raise RuntimeLangError(
                f"bad operands for {expr.operator!r} in {format_node(expr)!r}: {exc}",
                line=expr.line,
            ) from exc
        raise RuntimeLangError(  # pragma: no cover - parser prevents this
            f"unknown comparison {expr.operator!r}", line=expr.line
        )


@dataclass
class _Frame:
    """Per-execution mutable scratch space."""

    packet: Packet
    ctx: TransactionContext
    env: ProgramEnvironment
    locals: Dict[str, Any] = field(default_factory=dict)
    packet_writes: Dict[str, Any] = field(default_factory=dict)


def _truthy(value: Any) -> bool:
    return bool(value)


def _floor(value: float) -> float:
    import math

    return math.floor(value)


def _ceil(value: float) -> float:
    import math

    return math.ceil(value)


#: Builtin functions every program can call.
_BUILTIN_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "min": min,
    "max": max,
    "abs": abs,
    "floor": _floor,
    "ceil": _ceil,
}
