"""The rank store: a bank of FIFOs in SRAM (Section 5.2).

Elements beyond each flow's head live in the rank store, one FIFO per
(logical PIFO, flow) pair, dynamically allocated from a shared pool of 64 K
entries via a free list — exactly the structure whose area Table 1 prices
out (data SRAM + next pointers + free list + head/tail/count registers).

The model enforces the shared capacity and exposes the per-component entry
counts the area model needs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional, Tuple

from ..exceptions import HardwareModelError

#: Baseline rank-store capacity (Section 5.3): 64 K elements, sized for the
#: worst case of one cell (60 K packets) per element plus slack.
DEFAULT_RANK_STORE_CAPACITY = 64 * 1024

FlowKey = Tuple[int, str]  # (logical PIFO ID, flow ID)


@dataclass
class RankStoreStats:
    appends: int = 0
    pops: int = 0
    peak_occupancy: int = 0


class RankStore:
    """Bank of dynamically sized FIFOs sharing one entry pool."""

    def __init__(self, capacity_entries: int = DEFAULT_RANK_STORE_CAPACITY) -> None:
        if capacity_entries <= 0:
            raise ValueError("capacity_entries must be positive")
        self.capacity_entries = capacity_entries
        self._fifos: Dict[FlowKey, Deque[Tuple[float, Any]]] = {}
        self._occupancy = 0
        self.stats = RankStoreStats()

    # -- capacity -----------------------------------------------------------------
    def __len__(self) -> int:
        return self._occupancy

    @property
    def free_entries(self) -> int:
        return self.capacity_entries - self._occupancy

    @property
    def is_full(self) -> bool:
        return self._occupancy >= self.capacity_entries

    # -- FIFO operations --------------------------------------------------------------
    def append(self, logical_pifo: int, flow: str, rank: float, metadata: Any = None) -> None:
        """Append an element to the (logical PIFO, flow) FIFO."""
        if self.is_full:
            raise HardwareModelError(
                f"rank store full ({self.capacity_entries} entries)"
            )
        self._fifos.setdefault((logical_pifo, flow), deque()).append((rank, metadata))
        self._occupancy += 1
        self.stats.appends += 1
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, self._occupancy)

    def pop_head(self, logical_pifo: int, flow: str) -> Optional[Tuple[float, Any]]:
        """Remove and return the head of a flow's FIFO (None when empty)."""
        fifo = self._fifos.get((logical_pifo, flow))
        if not fifo:
            return None
        self._occupancy -= 1
        self.stats.pops += 1
        entry = fifo.popleft()
        if not fifo:
            del self._fifos[(logical_pifo, flow)]
        return entry

    def flow_depth(self, logical_pifo: int, flow: str) -> int:
        """Number of stored elements for one flow (excluding its head in the
        flow scheduler)."""
        fifo = self._fifos.get((logical_pifo, flow))
        return len(fifo) if fifo else 0

    def active_flows(self) -> int:
        """Number of (logical PIFO, flow) FIFOs currently non-empty."""
        return len(self._fifos)

    def clear(self) -> None:
        self._fifos.clear()
        self._occupancy = 0
