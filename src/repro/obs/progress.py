"""Live campaign status: sidecar progress files and their readers.

A progress file is a small JSON document written next to the result
store (``<store>.progress``) or inside a lease-queue directory
(``progress_<executor>.json``).  Writers publish with the write-to-temp
then ``os.replace`` idiom, so readers never observe a half-written
document; if an interrupted writer does leave garbage (or the file does
not exist yet), :func:`read_progress` returns ``None`` instead of
raising — status polling must never kill a campaign.

The run rate is an exponential moving average over completed runs
(``EMA_ALPHA`` weights the newest inter-completion interval), which
tracks warm-up (first runs pay kernel compiles) far better than a
global mean; the ETA is simply ``remaining / rate``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Optional

__all__ = ["ProgressWriter", "read_progress", "progress_path_for"]

#: EMA weight for the newest per-run rate sample.
EMA_ALPHA = 0.3

#: Minimum seconds between sidecar rewrites (finish always flushes).
MIN_WRITE_INTERVAL_S = 0.2


def progress_path_for(store_path: str) -> str:
    """Sidecar path for a result store: ``<store>.progress``."""
    return f"{store_path}.progress"


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def read_progress(path: str) -> Optional[Dict[str, Any]]:
    """Parse a progress file; ``None`` on missing/torn/invalid content."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


class ProgressWriter:
    """Throttled heartbeat writer for one campaign execution.

    Call :meth:`record_run` after every committed record,
    :meth:`heartbeat` from engine/queue idle loops (keeps ``updated_at``
    and ``leases_in_flight`` fresh while long runs are in flight), and
    :meth:`finish` exactly once at the end.
    """

    def __init__(self, path: str, campaign: str, total: int,
                 workers: int = 1, executor: Optional[str] = None,
                 time_fn=time.time) -> None:
        self.path = path
        self.campaign = campaign
        self.total = total
        self.workers = workers
        self.executor = executor
        self._time = time_fn
        self.done = 0
        self.ok = 0
        self.failed = 0
        self.quarantined = 0
        self.leases_in_flight = 0
        self._rate_ema = 0.0  # runs per second
        self._started = time_fn()
        self._last_done_at = self._started
        self._last_write = 0.0
        self.state = "running"
        self.write(force=True)

    # -- updates --------------------------------------------------------------
    def record_run(self, ok: bool, quarantined: bool = False) -> None:
        now = self._time()
        self.done += 1
        if quarantined:
            self.quarantined += 1
        elif ok:
            self.ok += 1
        else:
            self.failed += 1
        interval = now - self._last_done_at
        self._last_done_at = now
        if interval > 0:
            sample = 1.0 / interval
            self._rate_ema = (sample if self._rate_ema == 0.0 else
                              EMA_ALPHA * sample
                              + (1.0 - EMA_ALPHA) * self._rate_ema)
        self.write()

    def heartbeat(self, leases_in_flight: Optional[int] = None) -> None:
        if leases_in_flight is not None:
            self.leases_in_flight = leases_in_flight
        self.write()

    def finish(self, state: str = "done") -> None:
        self.state = state
        self.leases_in_flight = 0
        self.write(force=True)

    # -- serialisation --------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        now = self._time()
        remaining = max(0, self.total - self.done)
        eta_s = (remaining / self._rate_ema
                 if self._rate_ema > 0 and remaining else 0.0)
        payload = {
            "campaign": self.campaign,
            "state": self.state,
            "total": self.total,
            "done": self.done,
            "ok": self.ok,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "leases_in_flight": self.leases_in_flight,
            "workers": self.workers,
            "runs_per_s": round(self._rate_ema, 4),
            "eta_s": round(eta_s, 2),
            "started_at": self._started,
            "updated_at": now,
        }
        if self.executor is not None:
            payload["executor"] = self.executor
        return payload

    def write(self, force: bool = False) -> None:
        now = self._time()
        if not force and now - self._last_write < MIN_WRITE_INTERVAL_S:
            return
        self._last_write = now
        try:
            _atomic_write_json(self.path, self.snapshot())
        except OSError:
            pass  # progress is best-effort; never fail the campaign
