"""Hierarchical Deficit Round Robin baseline.

A two-level fair scheduler built the way fixed-function switches do it:
DRR across classes, and DRR across flows inside each class.  It provides the
non-PIFO reference point for the HPFQ experiment (Figure 3): over long
windows its bandwidth split matches the weighted hierarchy, so the
PIFO-programmed HPFQ shares can be validated against it.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..core.packet import Packet
from .drr import DeficitRoundRobin


class HierarchicalDRR:
    """DRR over classes; DRR over flows within each class.

    Parameters
    ----------
    class_weights:
        Weight of each class at the top level.
    class_flows:
        Mapping from class name to ``{flow: weight}`` inside that class.
        Flows not listed anywhere fall into ``default_class``.
    quantum_bytes:
        Base quantum used at both levels.
    """

    def __init__(
        self,
        class_weights: Mapping[str, float],
        class_flows: Mapping[str, Mapping[str, float]],
        quantum_bytes: int = 1500,
        default_class: Optional[str] = None,
    ) -> None:
        self.class_weights = dict(class_weights)
        self.class_of_flow: Dict[str, str] = {}
        self.default_class = default_class
        self._class_schedulers: Dict[str, DeficitRoundRobin] = {}
        for class_name, flows in class_flows.items():
            self._class_schedulers[class_name] = DeficitRoundRobin(
                weights=dict(flows), quantum_bytes=quantum_bytes
            )
            for flow in flows:
                self.class_of_flow[flow] = class_name
        # The top level is itself a DRR whose "flows" are class names; we
        # reuse the flat DRR by feeding it one proxy packet per buffered
        # packet would be wasteful, so instead we keep its bookkeeping here.
        self._top = DeficitRoundRobin(
            weights=dict(class_weights), quantum_bytes=quantum_bytes
        )
        self._count = 0
        self.drops = 0

    def _class_for(self, packet: Packet) -> Optional[str]:
        if packet.flow in self.class_of_flow:
            return self.class_of_flow[packet.flow]
        return self.default_class

    # -- scheduler interface -------------------------------------------------------
    def enqueue(self, packet: Packet, now: float = 0.0) -> bool:
        class_name = self._class_for(packet)
        if class_name is None or class_name not in self._class_schedulers:
            self.drops += 1
            return False
        accepted = self._class_schedulers[class_name].enqueue(packet, now)
        if not accepted:
            self.drops += 1
            return False
        # Mirror the packet with a fixed-size token in the top-level DRR so
        # the top level arbitrates *transmission opportunities* between
        # classes weighted by class weight.
        token = Packet(flow=class_name, length=packet.length)
        self._top.enqueue(token, now)
        self._count += 1
        return True

    def dequeue(self, now: float = 0.0) -> Optional[Packet]:
        token = self._top.dequeue(now)
        if token is None:
            return None
        packet = self._class_schedulers[token.flow].dequeue(now)
        if packet is None:  # pragma: no cover - defensive, counts are mirrored
            return None
        self._count -= 1
        packet.dequeue_time = now
        return packet

    def __len__(self) -> int:
        return self._count

    @property
    def is_empty(self) -> bool:
        return self._count == 0
