"""Domino-style front-end analysis of transaction programs (Section 4.1).

The Domino compiler's job is to decide whether a packet transaction can run
at line rate: every state variable must be read, modified and written back
within a single atom, so the compiler classifies each state variable's
update pattern and picks the smallest atom that can express it.  This module
reproduces that front end for programs written in :mod:`repro.lang`:

* :func:`analyze_program` walks the AST and computes, for every state
  variable, the set of reads and writes, whether writes are conditional,
  whether the update reads the variable itself (read-modify-write) and which
  *other* state variables it depends on (directly or through locals and
  packet temporaries).
* :func:`spec_from_program` converts that analysis into a
  :class:`repro.hardware.atoms.TransactionSpec`, which the existing
  :class:`repro.hardware.atoms.AtomPipelineAnalyzer` maps onto the atom
  vocabulary and the chip's atom budget.

The classifier is deliberately **conservative**: when in doubt it picks a
more capable (larger) atom than a hand optimisation might, which can only
overstate the area cost — it never declares an infeasible program feasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..hardware.atoms import StateUpdate, TransactionSpec
from .ast import (
    Assign,
    Attribute,
    BinOp,
    Boolean,
    BoolOp,
    Call,
    Compare,
    Expression,
    If,
    Membership,
    Name,
    Number,
    Program,
    Statement,
    Subscript,
    UnaryOp,
)
from .errors import RuntimeLangError
from .parser import parse

#: Names that are never state variables regardless of declarations.
_RESERVED_NAMES = {"p", "now"}


@dataclass
class StateVariableInfo:
    """What the analysis learnt about one state variable."""

    name: str
    #: Is the variable read anywhere in the program (directly or via ``in``)?
    read: bool = False
    #: Number of assignments targeting the variable.
    writes: int = 0
    #: At least one write happens under a conditional.
    conditional_write: bool = False
    #: At least one write's value reads the variable itself (read-modify-write).
    self_referential: bool = False
    #: The variable appears in the condition guarding one of its own writes.
    guards_own_write: bool = False
    #: Other state variables the write values depend on.
    depends_on: Set[str] = field(default_factory=set)
    #: Deepest conditional nesting level containing a write (0 = top level).
    max_write_depth: int = 0
    #: Every write is of the shape ``x = x + <expr without state>``.
    purely_additive: bool = True
    #: Packet fields read while computing the writes.
    packet_reads: Set[str] = field(default_factory=set)

    def required_capability(self) -> int:
        """Map the observed update pattern onto the atom capability scale.

        The scale matches :data:`repro.hardware.atoms.ATOM_TEMPLATES`:
        0 stateless, 1 read/write, 2 add-to-state, 3 predicated RAW,
        4 if/else RAW, 5 RAW with subtraction predicate, 6 nested
        conditional, 7 paired-state update.
        """
        if self.writes == 0:
            return 1
        others = self.depends_on - {self.name}
        if self.self_referential and others:
            return 7
        if self.max_write_depth >= 2:
            return 6
        conditional = self.conditional_write or self.guards_own_write
        if conditional and (self.self_referential or self.guards_own_write or others):
            return 4
        if conditional:
            return 3
        if self.self_referential and self.purely_additive:
            return 2
        if self.self_referential or others:
            return 4
        return 1


@dataclass
class ProgramAnalysis:
    """Full analysis result for one program."""

    state_variables: Dict[str, StateVariableInfo]
    #: Locals assigned by the program (execution-scoped temporaries).
    locals_written: Set[str]
    #: Packet fields written (including ``rank`` / ``send_time``).
    packet_fields_written: Set[str]
    #: Packet fields read.
    packet_fields_read: Set[str]
    #: Parameters referenced (names resolved neither as state nor locals).
    params_read: Set[str]
    #: Number of assignments that do not target state (locals + packet
    #: fields); a proxy for the stateless ALU work of the transaction.
    stateless_ops: int
    #: Does the program assign ``p.rank``?
    sets_rank: bool
    #: Does the program assign ``p.send_time``?
    sets_send_time: bool

    def summary(self) -> str:
        """Human-readable multi-line summary used by the CLI report."""
        lines = [
            f"stateless operations : {self.stateless_ops}",
            f"sets p.rank          : {self.sets_rank}",
            f"sets p.send_time     : {self.sets_send_time}",
            f"parameters           : {', '.join(sorted(self.params_read)) or '-'}",
            f"packet fields read   : {', '.join(sorted(self.packet_fields_read)) or '-'}",
        ]
        for name in sorted(self.state_variables):
            info = self.state_variables[name]
            kind = "read-only" if info.writes == 0 else (
                "read-modify-write" if info.self_referential else "write"
            )
            lines.append(
                f"state {name!r}: {kind}, capability {info.required_capability()}"
            )
        return "\n".join(lines)


class _Analyzer:
    """Single-pass abstract interpretation computing data/control deps."""

    def __init__(self, program: Program, state_names: FrozenSet[str]) -> None:
        self.program = program
        self.state_names = state_names
        self.info: Dict[str, StateVariableInfo] = {
            name: StateVariableInfo(name=name) for name in sorted(state_names)
        }
        # Taint maps: which state variables a local / packet temporary
        # currently depends on.
        self.local_taint: Dict[str, Set[str]] = {}
        self.packet_taint: Dict[str, Set[str]] = {}
        self.locals_written: Set[str] = set()
        self.packet_fields_written: Set[str] = set()
        self.packet_fields_read: Set[str] = set()
        self.params_read: Set[str] = set()
        self.stateless_ops = 0

    # -- driving --------------------------------------------------------------
    def run(self) -> ProgramAnalysis:
        for statement in self.program.statements:
            self._visit_statement(statement, control_deps=set(), depth=0)
        return ProgramAnalysis(
            state_variables=self.info,
            locals_written=self.locals_written,
            packet_fields_written=self.packet_fields_written,
            packet_fields_read=self.packet_fields_read,
            params_read=self.params_read,
            stateless_ops=self.stateless_ops,
            sets_rank="rank" in self.packet_fields_written,
            sets_send_time="send_time" in self.packet_fields_written,
        )

    # -- statements -------------------------------------------------------------
    def _visit_statement(
        self, statement: Statement, control_deps: Set[str], depth: int
    ) -> None:
        if isinstance(statement, Assign):
            self._visit_assign(statement, control_deps, depth)
            return
        if isinstance(statement, If):
            condition_deps, condition_reads = self._expression_deps(statement.condition)
            inner_control = control_deps | condition_deps
            for branch in (statement.body, statement.orelse):
                for inner in branch:
                    self._visit_statement(inner, inner_control, depth + 1)
            return

    def _visit_assign(
        self, statement: Assign, control_deps: Set[str], depth: int
    ) -> None:
        value_deps, value_packet_reads = self._expression_deps(statement.value)
        target = statement.target

        if isinstance(target, Name) and target.identifier in self.state_names:
            self._record_state_write(
                target.identifier, statement, value_deps, value_packet_reads,
                control_deps, depth,
            )
            return
        if isinstance(target, Subscript) and target.obj in self.state_names:
            index_deps, index_reads = self._expression_deps(target.index)
            self._record_state_write(
                target.obj, statement, value_deps | index_deps,
                value_packet_reads | index_reads, control_deps, depth,
            )
            return

        # Stateless work: local or packet-field assignment.
        self.stateless_ops += 1
        if isinstance(target, Attribute):
            self.packet_fields_written.add(target.attribute)
            self.packet_taint[target.attribute] = set(value_deps | control_deps)
            return
        if isinstance(target, Name):
            self.locals_written.add(target.identifier)
            self.local_taint[target.identifier] = set(value_deps | control_deps)
            return
        if isinstance(target, Subscript):
            raise RuntimeLangError(
                f"{target.obj!r} is subscripted but was not declared as a "
                "state variable",
                line=target.line,
            )

    def _record_state_write(
        self,
        name: str,
        statement: Assign,
        value_deps: Set[str],
        packet_reads: Set[str],
        control_deps: Set[str],
        depth: int,
    ) -> None:
        info = self.info[name]
        info.writes += 1
        info.max_write_depth = max(info.max_write_depth, depth)
        info.packet_reads |= packet_reads
        if depth > 0:
            info.conditional_write = True
        if name in value_deps:
            info.self_referential = True
        if name in control_deps:
            info.guards_own_write = True
        info.depends_on |= (value_deps | control_deps) - {name}
        if not self._is_self_addition(name, statement.value):
            info.purely_additive = False

    def _is_self_addition(self, name: str, value: Expression) -> bool:
        """Is ``value`` of the shape ``name + <expr not reading other state>``?"""
        if not isinstance(value, BinOp) or value.operator not in ("+", "-"):
            return False
        left_is_self = isinstance(value.left, Name) and value.left.identifier == name
        right_is_self = isinstance(value.right, Name) and value.right.identifier == name
        if not (left_is_self or right_is_self):
            return False
        other = value.right if left_is_self else value.left
        other_deps, _ = self._expression_deps(other)
        return not other_deps

    # -- expressions --------------------------------------------------------------
    def _expression_deps(self, expr: Expression) -> Tuple[Set[str], Set[str]]:
        """Return (state variables the expression depends on, packet fields read).

        Dependencies propagate through locals and packet temporaries assigned
        earlier in the program, which is how Figure 1's ``p.start``
        temporary carries ``virtual_time``/``last_finish`` into the
        ``last_finish[f]`` update.
        """
        deps: Set[str] = set()
        packet_reads: Set[str] = set()
        self._collect(expr, deps, packet_reads)
        return deps, packet_reads

    def _collect(self, expr: Expression, deps: Set[str], packet_reads: Set[str]) -> None:
        if isinstance(expr, (Number, Boolean)):
            return
        if isinstance(expr, Name):
            name = expr.identifier
            if name in _RESERVED_NAMES:
                return
            if name in self.state_names:
                self.info[name].read = True
                deps.add(name)
            elif name in self.local_taint:
                deps.update(self.local_taint[name])
            else:
                self.params_read.add(name)
            return
        if isinstance(expr, Attribute):
            if expr.obj == "p":
                self.packet_fields_read.add(expr.attribute)
                packet_reads.add(f"p.{expr.attribute}")
                deps.update(self.packet_taint.get(expr.attribute, set()))
            else:
                # flow-attribute read (f.weight): depends on whatever the
                # local depends on.
                deps.update(self.local_taint.get(expr.obj, set()))
            return
        if isinstance(expr, Subscript):
            if expr.obj in self.state_names:
                self.info[expr.obj].read = True
                deps.add(expr.obj)
            self._collect(expr.index, deps, packet_reads)
            return
        if isinstance(expr, Membership):
            if expr.table in self.state_names:
                self.info[expr.table].read = True
                deps.add(expr.table)
            self._collect(expr.item, deps, packet_reads)
            return
        for child in expr.children():
            if isinstance(child, Expression):
                self._collect(child, deps, packet_reads)


def analyze_program(
    program: Program | str,
    state: Optional[Mapping[str, object]] = None,
) -> ProgramAnalysis:
    """Analyse ``program`` given its declared state variables.

    ``program`` may be AST or source text.  ``state`` only needs the *names*
    (its values are ignored); names not declared as state are treated as
    locals or parameters, matching the interpreter's resolution rules.
    """
    if isinstance(program, str):
        program = parse(program)
    state_names = frozenset(state or ())
    return _Analyzer(program, state_names).run()


def spec_from_program(
    name: str,
    program: Program | str,
    state: Optional[Mapping[str, object]] = None,
    kind: str = "scheduling",
    notes: str = "",
) -> TransactionSpec:
    """Build a hardware :class:`TransactionSpec` from a program.

    The spec can then be fed to
    :class:`repro.hardware.atoms.AtomPipelineAnalyzer` to obtain the atom
    pipeline, its depth and its chip area — the same feasibility question
    Domino answers for the paper.
    """
    analysis = analyze_program(program, state=state)
    updates = []
    for var_name in sorted(analysis.state_variables):
        info = analysis.state_variables[var_name]
        if info.writes == 0 and not info.read:
            continue
        updates.append(
            StateUpdate(
                variable=var_name,
                required_capability=info.required_capability(),
                reads=tuple(sorted(info.packet_reads)),
            )
        )
    return TransactionSpec(
        name=name,
        kind=kind,
        state_updates=tuple(updates),
        stateless_ops=max(1, analysis.stateless_ops),
        notes=notes or "derived by repro.lang.analysis",
    )
