"""Run transaction-language programs as scheduling/shaping transactions.

This is the glue between :mod:`repro.lang` and :mod:`repro.core`: a compiled
program becomes a :class:`~repro.core.transaction.SchedulingTransaction` or
:class:`~repro.core.transaction.ShapingTransaction` and can be attached to a
:class:`~repro.core.tree.TreeNode` exactly like the hand-written algorithm
classes in :mod:`repro.algorithms`.

Two details deserve a note:

* **Dequeue programs.**  Some algorithms update state when a packet leaves
  the PIFO, not only when it enters — STFQ advances its virtual time to the
  start tag of the dequeued packet.  The bridge therefore accepts an
  optional ``dequeue_source``; that program runs with the extra names
  ``dequeued_rank`` (the PIFO rank of the element being dequeued) available
  as parameters.
* **Atom feasibility.**  ``require_line_rate=True`` runs the Domino-style
  analysis at construction time and refuses programs that do not fit the
  atom vocabulary — the same contract the paper's compiler enforces.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from ..core.packet import Packet
from ..core.pifo import Rank
from ..core.transaction import (
    SchedulingTransaction,
    ShapingTransaction,
    TransactionContext,
)
from ..exceptions import TransactionError
from ..hardware.atoms import AtomPipelineAnalyzer, PipelineReport, TransactionSpec
from .analysis import ProgramAnalysis, analyze_program, spec_from_program
from .ast import Program
from .errors import RuntimeLangError
from .interpreter import ExecutionResult, Interpreter, ProgramEnvironment
from .parser import parse


class _CompiledProgramMixin:
    """Shared plumbing for compiled scheduling and shaping transactions."""

    kind = "scheduling"

    def __init__(
        self,
        source: str | Program,
        state: Optional[Mapping[str, Any]] = None,
        params: Optional[Mapping[str, Any]] = None,
        flow_attrs: Optional[Mapping[str, Callable[[Any], Any]]] = None,
        functions: Optional[Mapping[str, Callable[..., Any]]] = None,
        dequeue_source: Optional[str | Program] = None,
        name: str = "compiled",
        require_line_rate: bool = False,
    ) -> None:
        self.program = parse(source) if isinstance(source, str) else source
        self.dequeue_program = (
            parse(dequeue_source)
            if isinstance(dequeue_source, str)
            else dequeue_source
        )
        self._interpreter = Interpreter(self.program)
        self._dequeue_interpreter = (
            Interpreter(self.dequeue_program) if self.dequeue_program else None
        )
        self._initial_state = dict(state or {})
        self.params = dict(params or {})
        self.flow_attrs = dict(flow_attrs or {})
        self.functions = dict(functions or {})
        self.program_name = name
        self.state_variables = tuple(sorted(self._initial_state))
        self.analysis: ProgramAnalysis = analyze_program(
            self.program, state=self._initial_state
        )
        self.last_result: Optional[ExecutionResult] = None
        if require_line_rate:
            report = self.pipeline_report()
            if not report.feasible:
                raise TransactionError(
                    f"program {name!r} cannot run at line rate: {report.reason}"
                )
        super().__init__()

    # -- Transaction API -------------------------------------------------------
    def initial_state(self) -> Dict[str, Any]:
        # Mutable initial values (per-flow tables) must not be shared between
        # resets, so containers are copied.
        initial: Dict[str, Any] = {}
        for key, value in self._initial_state.items():
            initial[key] = dict(value) if isinstance(value, dict) else value
        return initial

    def describe(self) -> str:
        return f"{type(self).__name__}({self.program_name!r})"

    # -- execution ---------------------------------------------------------------
    def _run(self, packet: Packet, ctx: TransactionContext) -> ExecutionResult:
        env = ProgramEnvironment(
            state=self.state,
            params=self.params,
            flow_attrs=self.flow_attrs,
            functions=self.functions,
        )
        result = self._interpreter.execute(packet, ctx, env)
        # Packet-field writes other than the rank/send-time outputs persist on
        # the packet, exactly as the paper's programs write back to ``p.x``
        # (LSTF relies on this to carry the decremented slack to the next hop).
        for field_name, value in result.packet_writes.items():
            if field_name not in ("rank", "send_time"):
                packet.set(field_name, value)
        self.last_result = result
        return result

    def on_dequeue(self, element: Any, ctx: TransactionContext) -> None:
        if self._dequeue_interpreter is None:
            return
        params = dict(self.params)
        rank = ctx.extras.get("rank")
        params["dequeued_rank"] = 0.0 if rank is None else rank
        env = ProgramEnvironment(
            state=self.state,
            params=params,
            flow_attrs=self.flow_attrs,
            functions=self.functions,
        )
        packet = element if isinstance(element, Packet) else _pseudo_packet(ctx)
        self._dequeue_interpreter.execute(packet, ctx, env)

    # -- hardware feasibility ------------------------------------------------------
    def transaction_spec(self) -> TransactionSpec:
        """The Domino-style IR of this program (for the atom analyser)."""
        return spec_from_program(
            self.program_name,
            self.program,
            state=self._initial_state,
            kind=self.kind,
        )

    def pipeline_report(
        self, analyzer: Optional[AtomPipelineAnalyzer] = None
    ) -> PipelineReport:
        """Map the program onto an atom pipeline and report feasibility."""
        analyzer = analyzer or AtomPipelineAnalyzer()
        return analyzer.analyze(self.transaction_spec())


class CompiledSchedulingTransaction(_CompiledProgramMixin, SchedulingTransaction):
    """A scheduling transaction defined by program text.

    The program must assign ``p.rank``; its value becomes the PIFO rank.
    """

    kind = "scheduling"

    def compute_rank(self, packet: Packet, ctx: TransactionContext) -> Rank:
        result = self._run(packet, ctx)
        if result.rank is None:
            raise RuntimeLangError(
                f"scheduling program {self.program_name!r} finished without "
                "assigning p.rank"
            )
        return result.rank


class CompiledShapingTransaction(_CompiledProgramMixin, ShapingTransaction):
    """A shaping transaction defined by program text.

    The program must assign ``p.send_time`` (or ``p.rank``, which Figure 4c
    sets to the send time); its value becomes the wall-clock release time.
    """

    kind = "shaping"

    def compute_send_time(self, packet: Packet, ctx: TransactionContext) -> float:
        result = self._run(packet, ctx)
        send_time = result.send_time if result.send_time is not None else result.rank
        if send_time is None:
            raise RuntimeLangError(
                f"shaping program {self.program_name!r} finished without "
                "assigning p.send_time or p.rank"
            )
        return send_time


def compile_scheduling_program(
    source: str | Program,
    state: Optional[Mapping[str, Any]] = None,
    params: Optional[Mapping[str, Any]] = None,
    flow_attrs: Optional[Mapping[str, Callable[[Any], Any]]] = None,
    functions: Optional[Mapping[str, Callable[..., Any]]] = None,
    dequeue_source: Optional[str | Program] = None,
    name: str = "compiled-scheduling",
    require_line_rate: bool = False,
) -> CompiledSchedulingTransaction:
    """Compile program text into a ready-to-use scheduling transaction."""
    return CompiledSchedulingTransaction(
        source,
        state=state,
        params=params,
        flow_attrs=flow_attrs,
        functions=functions,
        dequeue_source=dequeue_source,
        name=name,
        require_line_rate=require_line_rate,
    )


def compile_shaping_program(
    source: str | Program,
    state: Optional[Mapping[str, Any]] = None,
    params: Optional[Mapping[str, Any]] = None,
    flow_attrs: Optional[Mapping[str, Callable[[Any], Any]]] = None,
    functions: Optional[Mapping[str, Callable[..., Any]]] = None,
    name: str = "compiled-shaping",
    require_line_rate: bool = False,
) -> CompiledShapingTransaction:
    """Compile program text into a ready-to-use shaping transaction."""
    return CompiledShapingTransaction(
        source,
        state=state,
        params=params,
        flow_attrs=flow_attrs,
        functions=functions,
        name=name,
        require_line_rate=require_line_rate,
    )


def _pseudo_packet(ctx: TransactionContext) -> Packet:
    """Placeholder packet for dequeue programs run on PIFO references."""
    return Packet(
        flow=ctx.element_flow or "reference",
        length=max(1, ctx.element_length),
        arrival_time=ctx.now,
    )
