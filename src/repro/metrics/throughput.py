"""Throughput measurement over time windows.

The shaping experiments need more than an average rate: the Figure 4 claim
is that the Right class never exceeds 10 Mbit/s *regardless of offered
load*, which we check by binning departures into fixed windows and looking
at the maximum per-window rate.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.packet import Packet


@dataclass
class RateSample:
    """Throughput of one flow (or flow group) in one time window."""

    window_start: float
    window_end: float
    bits: float

    @property
    def rate_bps(self) -> float:
        duration = self.window_end - self.window_start
        return self.bits / duration if duration > 0 else 0.0


def windowed_rates(
    packets: Iterable[Packet],
    window_s: float,
    flows: Optional[Sequence[str]] = None,
    start: float = 0.0,
    end: Optional[float] = None,
) -> List[RateSample]:
    """Aggregate departures of selected flows into fixed windows.

    Packets without a departure time are ignored.  ``flows=None`` selects all
    flows (useful for class-level rates where the class is a set of flows).
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    selected = set(flows) if flows is not None else None
    bits_per_window: Dict[int, float] = defaultdict(float)
    last_departure = start
    for packet in packets:
        if packet.departure_time is None:
            continue
        if selected is not None and packet.flow not in selected:
            continue
        if packet.departure_time < start:
            continue
        if end is not None and packet.departure_time > end:
            continue
        index = int((packet.departure_time - start) // window_s)
        bits_per_window[index] += packet.length_bits
        last_departure = max(last_departure, packet.departure_time)
    horizon = end if end is not None else last_departure
    window_count = max(int((horizon - start) // window_s) + 1, 1)
    return [
        RateSample(
            window_start=start + i * window_s,
            window_end=start + (i + 1) * window_s,
            bits=bits_per_window.get(i, 0.0),
        )
        for i in range(window_count)
    ]


def max_windowed_rate_bps(
    packets: Iterable[Packet],
    window_s: float,
    flows: Optional[Sequence[str]] = None,
    skip_first_windows: int = 0,
) -> float:
    """Maximum per-window rate, optionally skipping initial burst windows.

    Token buckets legitimately allow one burst at start-up; the Figure 4
    experiment skips the first window so it measures the sustained rate.
    """
    samples = windowed_rates(packets, window_s, flows=flows)
    usable = samples[skip_first_windows:] if skip_first_windows else samples
    if not usable:
        return 0.0
    return max(sample.rate_bps for sample in usable)


def mean_rate_bps(
    packets: Iterable[Packet],
    duration_s: float,
    flows: Optional[Sequence[str]] = None,
) -> float:
    """Average delivered rate over an interval of length ``duration_s``."""
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    selected = set(flows) if flows is not None else None
    bits = sum(
        packet.length_bits
        for packet in packets
        if packet.departure_time is not None
        and (selected is None or packet.flow in selected)
    )
    return bits / duration_s


def bytes_by_flow(packets: Iterable[Packet]) -> Dict[str, int]:
    """Delivered bytes per flow (only packets with a departure time)."""
    totals: Dict[str, int] = defaultdict(int)
    for packet in packets:
        if packet.departure_time is not None:
            totals[packet.flow] += packet.length
    return dict(totals)
