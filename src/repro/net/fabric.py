"""The fabric: a :class:`~repro.net.topology.Network` brought to life.

``Fabric`` instantiates one :class:`~repro.switch.SharedMemorySwitch` per
switch node — with one egress port per outgoing link, each port running the
experiment's scheduler at the link's rate — and a lightweight egress switch
per host (FIFO, effectively unbuffered admission) modelling the NIC.  Egress
ports are chained to the next hop's ingress through the
:class:`~repro.sim.link.OutputPort` delivery hook, so *any* scheduler or
PIFO backend that works on a single port works unmodified on any topology.

As a packet leaves each hop the fabric appends a ``(node, arrival,
queueing, departure)`` record to ``packet.hops`` and accumulates the hop's
queueing delay into the packet's ``prev_wait_time`` field (the in-band
telemetry Section 3.1 assumes), which is exactly what the LSTF transaction
consumes downstream.  End-to-end delay is measured from injection at the
source NIC to arrival at the destination host, propagation included.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Dict, Iterable, Optional, Tuple
from zlib import crc32

from ..algorithms.fifo import FIFOTransaction
from ..algorithms.lstf import PREV_WAIT_FIELD, stamp_wait_time
from ..core.backend import BackendSpec
from ..core.packet import EMPTY_FIELDS, Packet
from ..core.scheduler import ProgrammableScheduler
from ..core.tree import single_node_tree
from ..exceptions import RoutingError
from ..obs import metrics as obs_metrics
from ..sim.link import DEFAULT_BATCH_LIMIT
from ..sim.simulator import Simulator
from ..sim.sink import PacketSink
from ..sim.source import PacketSource
from ..switch.buffer import SharedBuffer
from ..switch.switch import PortSpec, SharedMemorySwitch
from ..switch.thresholds import AdmissionPolicy
from .faults import FaultInjector, FaultPlan
from .routing import LinkFilter, build_forwarding_tables
from .topology import Network

#: Scheduler factory signature: ``(switch_name, port_name) -> scheduler``.
SchedulerFactory = Callable[[str, str], object]


def _default_host_scheduler(switch: str, port: str) -> ProgrammableScheduler:
    """Host NICs transmit in arrival order."""
    return ProgrammableScheduler(single_node_tree(FIFOTransaction()))


class HostInjector:
    """Entry point for traffic at a host; quacks like a port for sources."""

    def __init__(self, fabric: "Fabric", host: str) -> None:
        self.fabric = fabric
        self.host = host

    def receive(self, packet: Packet) -> bool:
        return self.fabric.inject(self.host, packet)


class Fabric:
    """Simulation instance of a network: switches, links, host endpoints.

    Parameters
    ----------
    sim:
        Driving simulator.
    network:
        Topology to instantiate (validated on construction).
    scheduler_factory:
        ``(switch_name, port_name) -> scheduler`` producing a fresh scheduler
        for every switch egress port.
    ecmp:
        Keep all equal-cost next hops and spread flows across them by a
        stable flow hash; ``False`` pins each destination to one path.
    pifo_backend:
        Optional PIFO backend spec applied to every switch scheduler.
    buffer_factory / admission_factory:
        Per-node shared buffer / admission policy constructors (called with
        the node name); switches default to the paper's 12 MB shared buffer
        with always-admit, host NICs to an effectively unbounded buffer
        (end-host memory is not the resource under study).
    keep_packets:
        Whether host sinks retain every delivered packet (default) or run in
        streaming-aggregate mode for large workloads.
    telemetry:
        Record per-hop traces (``packet.hops``) and per-port switch-stat
        breakdowns (default).  Sweeps disable this to strip the per-packet
        per-hop bookkeeping from the forwarding path; aggregate counters,
        per-flow sink aggregates and the in-band ``prev_wait_time`` stamp
        consumed by LSTF are always maintained, so scheduling decisions —
        and therefore results — are identical either way.  With telemetry
        off and streaming sinks, delivered packets are recycled into the
        packet pool.
    host_scheduler_factory:
        Scheduler for host egress (NIC) ports; FIFO by default.
    fused_delivery:
        Replace each eligible egress port's transmit-completion callback
        with a fused per-hop closure inlining delivery, next-hop ingress
        and buffer release into straight-line code (see
        :meth:`_fuse_hot_path`).  ``None`` (default) fuses automatically
        whenever it is observationally safe — telemetry off, zero-latency
        link, threshold-free admission on both ends; ``False`` disables
        fusion (the reference interpreted path); ``True`` requests it
        (still subject to the same per-port safety conditions).
    batch_limit:
        Max back-to-back packets a saturated port transmits per completion
        event (the batched-transmit fast-forward loop; see
        :mod:`repro.sim.link`).  ``1`` forces strict single-stepping;
        ``None`` keeps the ports' default.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        scheduler_factory: SchedulerFactory,
        ecmp: bool = False,
        pifo_backend: BackendSpec = None,
        buffer_factory: Optional[Callable[[str], SharedBuffer]] = None,
        admission_factory: Optional[Callable[[str], AdmissionPolicy]] = None,
        keep_packets: bool = True,
        telemetry: bool = True,
        host_scheduler_factory: SchedulerFactory = _default_host_scheduler,
        fused_delivery: Optional[bool] = None,
        fault_plan: Optional[FaultPlan] = None,
        batch_limit: Optional[int] = None,
    ) -> None:
        network.validate()
        self.sim = sim
        self.network = network
        self.ecmp = ecmp
        self.telemetry = telemetry
        self.injected_packets = 0
        self.delivered_packets = 0
        #: Packets blackholed by fault injection (dead links/switches,
        #: probabilistic loss, routes lost to a partition).
        self.lost_to_faults = 0
        self._fault_plan = (fault_plan if fault_plan is not None
                            and not fault_plan.empty() else None)
        self._fault_injector: Optional[FaultInjector] = None
        #: One SharedMemorySwitch per node (hosts get a FIFO NIC switch).
        self.node_switches: Dict[str, SharedMemorySwitch] = {}
        #: Terminal sink per host for traffic addressed to it.
        self.host_sinks: Dict[str, PacketSink] = {
            host: PacketSink(name=f"{host}.sink", keep_packets=keep_packets,
                             recycle_packets=not keep_packets and not telemetry)
            for host in network.hosts()
        }
        self._sources: list = []

        for name in sorted(network.nodes):
            is_host = network.is_host(name)
            specs = [
                PortSpec(
                    name=self.port_to(neighbor),
                    rate_bps=link.rate_bps,
                    propagation_delay=link.propagation_delay,
                    delivery=self._make_delivery(name, neighbor),
                )
                for neighbor, link in sorted(network.links[name].items())
            ]
            factory = host_scheduler_factory if is_host else scheduler_factory
            if buffer_factory is not None:
                buffer = buffer_factory(name)
            elif is_host:
                buffer = SharedBuffer(capacity_bytes=1 << 30)
            else:
                buffer = None
            self.node_switches[name] = SharedMemorySwitch(
                sim=sim,
                scheduler_factory=lambda port, node=name, f=factory: f(node, port),
                port_specs=specs,
                buffer=buffer,
                admission=admission_factory(name) if admission_factory else None,
                pifo_backend=None if is_host else pifo_backend,
                telemetry=telemetry,
                name=name,
            )

        if batch_limit is not None:
            if batch_limit < 1:
                raise ValueError("batch_limit must be >= 1")
            for node_switch in self.node_switches.values():
                for node_port in node_switch.ports.values():
                    node_port.batch_limit = batch_limit
        self.batch_limit = (batch_limit if batch_limit is not None
                            else DEFAULT_BATCH_LIMIT)

        self._install_routes()
        #: Number of egress ports running the fused hot-path closure.
        self.fused_ports = 0
        #: host -> one-slot box read by that host's fused NIC egress for
        #: arrival prefetch.  ``attach_source`` fills the slot with
        #: ``(source, fused_receive)`` when the host has exactly one source
        #: (and clears it back to ``None`` if a second one is attached).
        self._arrival_pull_boxes: Dict[str, list] = {}
        self._host_source_count: Dict[str, int] = {}
        #: Per-port fused next-hop target caches (flow -> resolved egress);
        #: cleared whenever routing changes (see :meth:`reinstall_routes`).
        self._fused_target_caches: list = []
        if self._fault_plan is not None:
            # Faults mutate routing and port liveness at runtime — the
            # per-port fused closures bake both in at construction, so the
            # fabric stays on the interpreted delivery path.  Scheduler
            # tree kernels are unaffected (they fuse *inside* the port).
            self._fault_injector = FaultInjector(self, self._fault_plan)
            self._fault_injector.schedule()
        elif fused_delivery is not False:
            self._fuse_hot_path()

        # Lazy metrics: when a registry is enabled, register a callback
        # that exports the fabric's counters at snapshot() time.  The
        # forwarding path itself is never touched — collection cost is
        # paid only by whoever asks for a snapshot.
        registry = obs_metrics.active()
        if registry is not None:
            registry.register_callback(f"fabric.{network.name}",
                                       self.metrics_snapshot)

    # -- construction helpers ----------------------------------------------
    @staticmethod
    def port_to(neighbor: str) -> str:
        """Egress port name used for the link toward ``neighbor``."""
        return f"to_{neighbor}"

    def _install_routes(self) -> None:
        tables = build_forwarding_tables(self.network, ecmp=self.ecmp)
        for node, routes in tables.items():
            switch = self.node_switches[node]
            for dst, hops in routes.items():
                if hops:
                    switch.install_route(dst, [self.port_to(h) for h in hops])

    def reinstall_routes(self, link_filter: Optional[LinkFilter] = None) -> None:
        """Recompute every forwarding table over the surviving subgraph.

        Called by the fault layer after each topology change — the fabric
        analogue of an instant routing-protocol reconvergence.  Tables are
        built in *partial* mode: destinations that became unreachable have
        no route, so traffic toward them is blackholed (and counted) at the
        first hop that cannot forward it.
        """
        tables = build_forwarding_tables(self.network, ecmp=self.ecmp,
                                         partial=True, link_filter=link_filter)
        for node, switch in self.node_switches.items():
            switch.routes.clear()
            for dst, hops in tables[node].items():
                if hops:
                    switch.install_route(dst, [self.port_to(h) for h in hops])
        # Fused ports memoise resolved next-hop targets per flow; a routing
        # change invalidates them all.
        for cache in self._fused_target_caches:
            cache.clear()

    def _make_delivery(self, node: str, neighbor: str) -> Callable[[Packet], None]:
        if self._fault_plan is not None:
            return self._make_faulted_delivery(node, neighbor)
        to_host = self.network.is_host(neighbor)
        telemetry = self.telemetry

        def deliver(packet: Packet) -> None:
            # ``prev_wait_time`` is in-band data the paper's LSTF transaction
            # consumes downstream — it is stamped regardless of the telemetry
            # flag so scheduling semantics never depend on observability.
            enq = packet.enqueue_time
            deq = packet.dequeue_time
            wait = deq - enq if (enq is not None and deq is not None) else 0.0
            if telemetry:
                packet.record_hop(node, packet.arrival_time, wait,
                                  packet.departure_time)
            stamp_wait_time(packet, wait)
            if to_host:
                if packet.dst != neighbor:
                    # Routing never transits an end host; landing here with
                    # a different destination means a corrupted route.
                    raise RoutingError(
                        f"packet for {packet.dst!r} delivered to host "
                        f"{neighbor!r}; hosts do not forward transit traffic"
                    )
                self._arrive(neighbor, packet)
            else:
                self.node_switches[neighbor].forward(packet)

        return deliver

    def _make_faulted_delivery(self, node: str,
                               neighbor: str) -> Callable[[Packet], None]:
        """Delivery hook for fabrics running under a fault plan.

        Identical to the plain closure plus three fault checks at the
        moment the packet lands at the far end of the wire: the link may
        have died while the packet was propagating (blackhole), a
        probabilistic-loss draw may eat it, and the next hop may have no
        route left after a reconvergence (blackhole, counted as
        ``no_route``).  The injector is resolved per call because it is
        constructed after the ports.
        """
        to_host = self.network.is_host(neighbor)
        telemetry = self.telemetry

        def deliver(packet: Packet) -> None:
            injector = self._fault_injector
            if injector is not None:
                if not injector.link_usable(node, neighbor):
                    injector.record_loss(
                        packet, injector._down_cause(node, neighbor))
                    return
                if injector.loss_roll(node, neighbor, self.sim.now):
                    injector.record_loss(packet, "loss")
                    return
            enq = packet.enqueue_time
            deq = packet.dequeue_time
            wait = deq - enq if (enq is not None and deq is not None) else 0.0
            if telemetry:
                packet.record_hop(node, packet.arrival_time, wait,
                                  packet.departure_time)
            stamp_wait_time(packet, wait)
            if to_host:
                if packet.dst != neighbor:
                    raise RoutingError(
                        f"packet for {packet.dst!r} delivered to host "
                        f"{neighbor!r}; hosts do not forward transit traffic"
                    )
                self._arrive(neighbor, packet)
            else:
                try:
                    self.node_switches[neighbor].forward(packet)
                except RoutingError:
                    if injector is None:
                        raise
                    # Reconvergence removed every route to this destination
                    # — the packet hits a routeless hop and is blackholed.
                    injector.record_loss(packet, "no_route")

        return deliver

    # -- hot-path fusion ---------------------------------------------------
    def _fuse_hot_path(self) -> None:
        """Install fused transmit-completion closures on eligible ports.

        The interpreted per-hop path is a chain of six calls per departed
        packet — ``OutputPort._on_tx_complete`` → delivery closure →
        ``SharedMemorySwitch.forward`` → ``select_port`` → ``receive`` →
        ``OutputPort.receive`` — each re-deriving state the fabric fixed at
        construction time.  This pass hoists that state into one closure
        per port (the same specialization the tree kernels apply inside the
        scheduler) so a hop becomes straight-line code with exactly two
        dynamic calls: the scheduler's fused ``enqueue`` and ``dequeue``.

        Fusion is observationally exact, so it is only installed when every
        path the closure compresses is the one the interpreted code would
        take: telemetry off (no per-hop trace records, occupancy-only
        buffer accounting on both switches), threshold-free admission, and
        a zero-latency link (no wire FIFO between completion and ingress).
        Ports that fail the check keep the generic method.
        """
        network = self.network
        for name, switch in self.node_switches.items():
            if not switch._untracked_buffer:
                continue
            for neighbor in network.links[name]:
                port = switch.ports.get(self.port_to(neighbor))
                if port is None or port.delivery is None:
                    continue
                if port.propagation_delay != 0.0:
                    continue
                to_host = network.is_host(neighbor)
                if not to_host:
                    if not self.node_switches[neighbor]._untracked_buffer:
                        continue
                port._tx_complete = self._fuse_port(port, switch, name,
                                                    neighbor, to_host)
                self.fused_ports += 1

    def _fuse_port(self, port, switch, node: str, neighbor: str,
                   to_host: bool):
        """Build the fused transmit-completion closure for one egress port.

        Inlines, in order and with identical observable effects:
        ``_on_tx_complete`` bookkeeping, the fabric delivery closure
        (wait-time stamp; hop records are off by construction), the
        next-hop switch's route lookup + occupancy-only ingress (or the
        host arrival), the departure callback, and the next dequeue with
        its completion pushed straight onto the event queue.
        Rare/error paths (missing route, ``dst`` ``None``) fall back to the
        interpreted methods so diagnostics stay identical.

        Two datapath-v3 optimisations live here.  **Per-flow target
        memoisation**: route lookup + ECMP hash + port dict walk resolve to
        the same next-hop egress for every packet of a flow, so the
        resolved ``(dst, out_port, out_scheduler)`` is cached per flow
        (guarded by ``dst``, invalidated by :meth:`reinstall_routes`).
        **Batched transmit**: while the port stays saturated and nothing
        else in the simulation can run before the next completion, the
        closure fast-forwards the clock and transmits up to
        ``batch_limit`` back-to-back packets in one event (same protocol
        as ``OutputPort._on_tx_complete``; ties never fast-forward).
        """
        fabric = self
        sim = self.sim
        queue = sim._queue
        #: Raw heap for the default backend; None routes scheduling through
        #: the queue's insert() (timing wheel).
        heap = sim._raw_heap
        scheduler = port.scheduler
        inv_rate = port._inv_rate
        batch_limit = port.batch_limit
        own_stats = switch.stats
        own_buffer = switch.buffer
        own_cell_bytes = own_buffer.cell_bytes
        #: The switch-installed release callback; identity-checked per call
        #: so late wrapping (chain_hops) falls back to the dynamic call.
        release = port.on_departure
        kernelable = isinstance(scheduler, ProgrammableScheduler)
        #: Arrival prefetch: a single-egress host NIC can pull its (sole)
        #: source's next arrival at its own transmit completion instead of
        #: round-tripping through a scheduled arrival event — one event per
        #: packet in steady state.  Only a single-egress NIC qualifies (the
        #: stolen arrival provably transmits on *this* port, so nothing else
        #: can observe the switch between the true arrival instant and now).
        if self.network.is_host(node) and len(switch.ports) == 1:
            pull_box = self._arrival_pull_boxes.setdefault(node, [None])
        else:
            pull_box = None
        if to_host:
            sink = self.host_sinks[neighbor]
            sink_record = sink.record
            nxt = nxt_stats = nxt_buffer = nxt_routes = None
            nxt_ports = nxt_hashes = None
            nxt_cell_bytes = 0
            targets = None
        else:
            sink = sink_record = None
            nxt = self.node_switches[neighbor]
            nxt_stats = nxt.stats
            nxt_buffer = nxt.buffer
            nxt_cell_bytes = nxt_buffer.cell_bytes
            nxt_routes = nxt.routes
            nxt_ports = nxt.ports
            nxt_hashes = nxt._flow_hashes
            nxt_kernelable = all(
                isinstance(p.scheduler, ProgrammableScheduler)
                for p in nxt_ports.values()
            )
            #: flow -> (dst, out_port, out_scheduler, out_tx_complete,
            #: out_inv_rate).  Keyed by flow with the dst stored as a
            #: guard: flows normally map to one dst, so the common case is
            #: one dict probe; a flow name reused toward a different dst
            #: just misses the cache and re-resolves.  The completion
            #: callback and inverse rate ride along so the forwarding path
            #: skips their per-packet attribute loads (safe: fused ports
            #: never run under fault plans, so the callback is never
            #: re-wrapped after fusion).
            targets: Dict[str, tuple] = {}
            self._fused_target_caches.append(targets)

        def _tx_complete() -> None:
            packet = port._tx_packet
            now = sim.now
            budget = batch_limit
            while True:
                port._tx_packet = None
                packet.departure_time = now
                port.busy = False
                port.transmitted_packets += 1
                length = packet.length
                port.transmitted_bytes += length
                # Inlined delivery closure (telemetry off): stamp the
                # in-band wait-time field the next hop's LSTF transaction
                # consumes.
                enq = packet.enqueue_time
                deq = packet.dequeue_time
                wait = (deq - enq
                        if (enq is not None and deq is not None) else 0.0)
                fields = packet.fields
                if fields is EMPTY_FIELDS:
                    packet.fields = {PREV_WAIT_FIELD: wait}
                else:
                    fields[PREV_WAIT_FIELD] = \
                        fields.get(PREV_WAIT_FIELD, 0.0) + wait
                if to_host:
                    if packet.dst != neighbor:
                        raise RoutingError(
                            f"packet for {packet.dst!r} delivered to host "
                            f"{neighbor!r}; hosts do not forward transit "
                            f"traffic"
                        )
                    fabric.delivered_packets += 1
                    sink_record(packet)
                else:
                    dst = packet.dst
                    flow = packet.flow
                    target = targets.get(flow)
                    if target is not None and target[0] == dst:
                        out = target[1]
                        osched = target[2]
                        out_cb = target[3]
                        out_inv = target[4]
                    else:
                        out = None
                        candidates = nxt_routes.get(dst)
                        if not candidates:
                            # Missing/empty route (or dst None): the
                            # interpreted path raises the canonical
                            # RoutingError.
                            nxt.forward(packet)
                        else:
                            if len(candidates) == 1:
                                egress = candidates[0]
                            else:
                                digest = nxt_hashes.get(flow)
                                if digest is None:
                                    digest = nxt_hashes[flow] = \
                                        crc32(flow.encode())
                                egress = candidates[digest % len(candidates)]
                            out = nxt_ports[egress]
                            osched = out.scheduler
                            out_cb = out._tx_complete
                            out_inv = out._inv_rate
                            targets[flow] = (dst, out, osched, out_cb,
                                             out_inv)
                    if out is not None:
                        # Inlined occupancy-only SharedMemorySwitch.receive.
                        nxt_stats.received += 1
                        cells = (length + nxt_cell_bytes - 1) // nxt_cell_bytes
                        if (nxt_buffer.used_cells + cells
                                > nxt_buffer.total_cells):
                            nxt_stats.dropped_admission += 1
                        else:
                            nxt_buffer.used_cells += cells
                            nxt_buffer.used_bytes += length
                            # Inlined OutputPort.receive + _try_transmit.
                            # On an idle port with a live kernel the enqueue
                            # and immediate dequeue collapse into the
                            # kernel's cut-through transfer.
                            packet.arrival_time = now
                            if (not out.busy and nxt_kernelable
                                    and osched.tree_kernel is not None):
                                head = osched.transfer(packet, now)
                                if head is None:
                                    out.dropped_packets += 1
                                    nxt_buffer.used_cells -= cells
                                    nxt_buffer.used_bytes -= length
                                    nxt_stats.dropped_scheduler += 1
                                else:
                                    nxt_stats.admitted += 1
                                    out.busy = True
                                    out._tx_packet = head
                                    seq = queue._next_seq
                                    queue._next_seq = seq + 1
                                    entry = (now + head.length * out_inv,
                                             seq, out_cb)
                                    if heap is not None:
                                        heappush(heap, entry)
                                    else:
                                        queue.insert(entry)
                            elif osched.enqueue(packet, now):
                                nxt_stats.admitted += 1
                                if not out.busy:
                                    head = osched.dequeue(now)
                                    if head is None:
                                        out._arm_wakeup()
                                    else:
                                        out.busy = True
                                        out._tx_packet = head
                                        seq = queue._next_seq
                                        queue._next_seq = seq + 1
                                        entry = (now
                                                 + head.length * out_inv,
                                                 seq, out_cb)
                                        if heap is not None:
                                            heappush(heap, entry)
                                        else:
                                            queue.insert(entry)
                            else:
                                out.dropped_packets += 1
                                nxt_buffer.used_cells -= cells
                                nxt_buffer.used_bytes -= length
                                nxt_stats.dropped_scheduler += 1
                # Departure callback: the switch release is inlined;
                # anything else (a source wrapped it after construction) is
                # called.
                on_departure = port.on_departure
                if on_departure is release:
                    own_stats.transmitted += 1
                    cells = (length + own_cell_bytes - 1) // own_cell_bytes
                    if own_buffer.used_cells >= cells:
                        own_buffer.used_cells -= cells
                        own_buffer.used_bytes -= length
                    else:
                        own_buffer.used_cells = 0
                        own_buffer.used_bytes = max(
                            0, own_buffer.used_bytes - length)
                elif on_departure is not None:
                    on_departure(packet)
                # Next packet.  A live tree kernel guarantees a
                # work-conserving tree (shaping never compiles), so an empty
                # scheduler needs neither the dequeue call nor a shaping
                # wakeup.
                if kernelable and scheduler.tree_kernel is not None:
                    if not scheduler._buffered_packets:
                        # Arrival prefetch: the scheduler is dry, so the
                        # only thing that can wake this port again is its
                        # source's next arrival.  Pull it now and run the
                        # fused injection at the arrival's own timestamp —
                        # observably identical to the arrival event firing,
                        # minus the event.  Arrivals past the run horizon
                        # (or with degenerate dst) are parked back onto the
                        # normal event path.
                        if pull_box is None:
                            return
                        sr = pull_box[0]
                        if sr is None:
                            return
                        src_source = sr[0]
                        nic_receive = sr[1]
                        horizon = sim._ff_horizon
                        while True:
                            # PacketSource._peek_arrival/_take_arrival,
                            # inlined: the pull loop runs once per delivered
                            # packet, where the two call frames alone are
                            # measurable at fabric scale.  ``s_pending`` is
                            # non-None only on the first pull after the
                            # source owned the stream (the in-flight arrival
                            # event gets tombstoned); afterwards the loop
                            # walks the materialised batch directly.
                            s_pending = src_source._pending
                            if s_pending is not None:
                                a_time = s_pending[0]
                                stolen = src_source._pending_packet
                            else:
                                s_batch = src_source._batch
                                s_index = src_source._index
                                if s_index < len(s_batch):
                                    a_time, stolen = s_batch[s_index]
                                elif src_source._refill():
                                    s_batch = src_source._batch
                                    s_index = 0
                                    a_time, stolen = s_batch[0]
                                else:
                                    stolen = None
                            if stolen is None:
                                if scheduler._buffered_packets:
                                    break
                                return
                            if a_time < now:
                                # The port outpaced the stream inside an
                                # overload window: enqueue at the true
                                # arrival instant (port marked busy so the
                                # injection cannot cut through), keep
                                # pulling until the stream catches up with
                                # the clock, then dequeue at ``now`` below.
                                src_source.generated_packets += 1
                                if s_pending is not None:
                                    sim.cancel(s_pending)
                                    src_source._pending = None
                                    src_source._pending_packet = None
                                else:
                                    src_source._index = s_index + 1
                                    src_source._last_time = a_time
                                sim.events_processed += 1
                                sim.now = a_time
                                port.busy = True
                                nic_receive(stolen)
                                port.busy = False
                                sim.now = now
                                continue
                            if (a_time + stolen.length * inv_rate > horizon
                                    or stolen.dst is None
                                    or stolen.dst == node
                                    or scheduler._buffered_packets):
                                # Ownership may only persist while the next
                                # completion provably lands inside this run
                                # (a stopped drain must not discard
                                # arrivals the event path would have
                                # fired), and never across a backlog.
                                # Re-arm the normal arrival event.
                                src_source._park_arrival()
                                if scheduler._buffered_packets:
                                    break
                                return
                            src_source.generated_packets += 1
                            if s_pending is not None:
                                sim.cancel(s_pending)
                                src_source._pending = None
                                src_source._pending_packet = None
                            else:
                                src_source._index = s_index + 1
                                src_source._last_time = a_time
                            sim.events_processed += 1
                            sim.now = a_time
                            ok = nic_receive(stolen)
                            sim.now = now
                            if ok:
                                if port.busy:
                                    # Cut-through scheduled this port's
                                    # next completion; the pull chain
                                    # continues there.
                                    return
                                # Enqueued without transmitting (shaped
                                # NIC awaiting a wakeup): hand the stream
                                # back to the event path.
                                src_source._park_arrival()
                                return
                            # Admission-dropped the stolen arrival; the
                            # port is still idle — pull the next one.
                    next_packet = scheduler.dequeue(now)
                    if next_packet is None:
                        return
                else:
                    next_packet = scheduler.dequeue(now)
                    if next_packet is None:
                        port._arm_wakeup()
                        return
                port.busy = True
                port._tx_packet = next_packet
                t_next = now + next_packet.length * inv_rate
                # Fast-forward: transmit the next packet inside this event
                # when provably nothing else can run before it completes
                # (fused ports never run under fault plans, so no faulted
                # check is needed here).
                if budget > 1 and t_next <= sim._ff_horizon:
                    deferred = sim._deferred
                    if deferred is None or deferred[0] > t_next:
                        if heap is not None:
                            head_time = heap[0][0] if heap else None
                        else:
                            head_time = queue.peek_time()
                        if head_time is None or head_time > t_next:
                            budget -= 1
                            sim.now = now = t_next
                            sim.events_processed += 1
                            packet = next_packet
                            continue
                # Schedule our own completion.  Fused paths push straight
                # to the queue rather than through the deferral slot: the
                # slot only pays off for back-to-back self-reschedules,
                # which the fast-forward loop above now handles without
                # any event at all.
                seq = queue._next_seq
                queue._next_seq = seq + 1
                entry = (t_next, seq, _tx_complete)
                if heap is not None:
                    heappush(heap, entry)
                else:
                    queue.insert(entry)
                return

        return _tx_complete

    def _arrive(self, host: str, packet: Packet) -> None:
        # Stamp arrival at the destination NIC (propagation included) so
        # end-to-end delay decomposes exactly into the recorded hops + wires.
        packet.departure_time = self.sim.now
        self.delivered_packets += 1
        self.host_sinks[host].record(packet)

    # -- traffic -----------------------------------------------------------
    def inject(self, host: str, packet: Packet) -> bool:
        """Inject a packet at a source host; routes by ``packet.dst``."""
        if packet.dst is None:
            raise RoutingError(f"cannot inject {packet!r}: no dst address")
        if packet.dst == host:
            raise RoutingError(f"packet at {host!r} addressed to itself")
        if packet.src is None:
            packet.src = host
        packet.injection_time = self.sim.now
        self.injected_packets += 1
        if self._fault_injector is not None:
            try:
                return self.node_switches[host].forward(packet)
            except RoutingError:
                # The destination is unreachable under the current fault
                # state: blackhole at the source NIC, conserving accounting.
                self._fault_injector.record_loss(packet, "no_route")
                return False
        return self.node_switches[host].forward(packet)

    def injector(self, host: str) -> HostInjector:
        """A receive()-compatible endpoint for :class:`PacketSource`.

        When the host NIC runs in occupancy-only mode and fusion is on,
        the injector's ``receive`` is a fused closure inlining
        :meth:`inject` + the NIC switch's ingress, mirroring the egress
        fusion in :meth:`_fuse_port`.
        """
        self.network.node(host)
        injector = HostInjector(self, host)
        fused = self._fuse_injection(host)
        if fused is not None:
            injector.receive = fused  # type: ignore[method-assign]
        return injector

    def _fuse_injection(self, host: str):
        """Fused ``inject`` for one source host, or ``None`` if ineligible."""
        if not self.fused_ports:
            return None
        switch = self.node_switches.get(host)
        if switch is None or not switch._untracked_buffer:
            return None
        fabric = self
        sim = self.sim
        queue = sim._queue
        heap = sim._raw_heap
        stats = switch.stats
        buffer = switch.buffer
        cell_bytes = buffer.cell_bytes
        routes = switch.routes
        ports = switch.ports
        hashes = switch._flow_hashes
        kernelable = all(
            isinstance(p.scheduler, ProgrammableScheduler)
            for p in ports.values()
        )
        #: flow -> (dst, out_port, out_scheduler, out_tx_complete,
        #: out_inv_rate); same per-flow target memoisation as the egress
        #: fusion.
        targets: Dict[str, tuple] = {}
        self._fused_target_caches.append(targets)

        def receive(packet: Packet) -> bool:
            dst = packet.dst
            if dst is None or dst == host:
                return fabric.inject(host, packet)  # canonical errors
            if packet.src is None:
                packet.src = host
            now = sim.now
            packet.injection_time = now
            fabric.injected_packets += 1
            flow = packet.flow
            target = targets.get(flow)
            if target is not None and target[0] == dst:
                out = target[1]
                osched = target[2]
                out_cb = target[3]
                out_inv = target[4]
            else:
                candidates = routes.get(dst)
                if not candidates:
                    return switch.forward(packet)
                if len(candidates) == 1:
                    egress = candidates[0]
                else:
                    digest = hashes.get(flow)
                    if digest is None:
                        digest = hashes[flow] = crc32(flow.encode())
                    egress = candidates[digest % len(candidates)]
                out = ports[egress]
                osched = out.scheduler
                out_cb = out._tx_complete
                out_inv = out._inv_rate
                targets[flow] = (dst, out, osched, out_cb, out_inv)
            # Inlined occupancy-only ingress + OutputPort.receive + kick
            # (same straight-line path as the egress fusion).
            stats.received += 1
            length = packet.length
            cells = (length + cell_bytes - 1) // cell_bytes
            if buffer.used_cells + cells > buffer.total_cells:
                stats.dropped_admission += 1
                return False
            buffer.used_cells += cells
            buffer.used_bytes += length
            packet.arrival_time = now
            if (not out.busy and kernelable
                    and osched.tree_kernel is not None):
                head = osched.transfer(packet, now)
                if head is None:
                    out.dropped_packets += 1
                    buffer.used_cells -= cells
                    buffer.used_bytes -= length
                    stats.dropped_scheduler += 1
                    return False
                stats.admitted += 1
                out.busy = True
                out._tx_packet = head
                seq = queue._next_seq
                queue._next_seq = seq + 1
                entry = (now + head.length * out_inv,
                         seq, out_cb)
                if heap is not None:
                    heappush(heap, entry)
                else:
                    queue.insert(entry)
                return True
            if not osched.enqueue(packet, now):
                out.dropped_packets += 1
                buffer.used_cells -= cells
                buffer.used_bytes -= length
                stats.dropped_scheduler += 1
                return False
            stats.admitted += 1
            if not out.busy:
                head = osched.dequeue(now)
                if head is None:
                    out._arm_wakeup()
                else:
                    out.busy = True
                    out._tx_packet = head
                    seq = queue._next_seq
                    queue._next_seq = seq + 1
                    entry = (now + head.length * out_inv, seq, out_cb)
                    if heap is not None:
                        heappush(heap, entry)
                    else:
                        queue.insert(entry)
            return True

        return receive

    def attach_source(self, host: str,
                      arrivals: Iterable[Tuple[float, Packet]],
                      name: Optional[str] = None) -> PacketSource:
        """Replay an arrival stream into the fabric at ``host``."""
        injector = self.injector(host)
        source = PacketSource(self.sim, injector, arrivals,
                              name=name or f"{host}.source")
        self._sources.append(source)
        # Arrival prefetch: hand the host's fused NIC egress a handle to
        # this source (and the fused injection path) so it can pull
        # arrivals at its own completions.  Only valid with exactly one
        # source per host — a second attach disables the box for good,
        # since interleaving two streams needs the event queue.
        box = self._arrival_pull_boxes.get(host)
        if box is not None:
            count = self._host_source_count.get(host, 0) + 1
            self._host_source_count[host] = count
            box[0] = (source, source._receive) if count == 1 else None
        return source

    # -- execution ---------------------------------------------------------
    def run(self, until: Optional[float] = None, drain: bool = False) -> float:
        """Advance the simulation; optionally keep going until all packets
        in flight at ``until`` have left the fabric.

        Draining stops the attached sources first, so arrivals scheduled
        past ``until`` are discarded rather than replayed — only traffic
        already inside the fabric is flushed out.
        """
        now = self.sim.run(until=until)
        if drain:
            if until is not None:
                for source in self._sources:
                    source.stop()
            now = self.sim.run()
        return now

    # -- accounting --------------------------------------------------------
    def switch(self, name: str) -> SharedMemorySwitch:
        return self.node_switches[name]

    def sink(self, host: str) -> PacketSink:
        return self.host_sinks[host]

    def dropped_packets(self) -> int:
        return sum(s.stats.dropped for s in self.node_switches.values())

    def buffered_packets(self) -> int:
        return sum(s.buffered_packets() for s in self.node_switches.values())

    def in_flight_packets(self) -> int:
        """Packets physically inside the fabric: buffered in a scheduler,
        on a transmitter, or propagating on a wire.

        Counted by walking the ports — *not* derived from the other
        counters — so the conservation identity ``injected == delivered +
        dropped + lost_to_faults + in_flight`` is a real invariant that a
        leak (a packet vanishing without being counted anywhere) actually
        violates, rather than a tautology.
        """
        count = 0
        for switch in self.node_switches.values():
            for port in switch.ports.values():
                count += len(port.scheduler) + len(port._wire)
                if port._tx_packet is not None:
                    count += 1
        return count

    def conservation_check(self) -> Dict[str, int]:
        """Injected / delivered / dropped / lost / in-flight balance."""
        return {
            "injected": self.injected_packets,
            "delivered": self.delivered_packets,
            "dropped": self.dropped_packets(),
            "lost_to_faults": self.lost_to_faults,
            "in_flight": self.in_flight_packets(),
        }

    def fault_summary(self) -> Dict[str, Any]:
        """Fault-injection outcome: topology churn and loss-by-cause.

        Empty when the fabric runs without a fault plan, so callers can
        treat "no faults configured" and "faults configured but none
        fired" uniformly via ``.get(...)``.
        """
        if self._fault_injector is None:
            return {}
        injector = self._fault_injector
        return {
            "topology_changes": injector.topology_changes,
            "lost_by_cause": dict(injector.lost_by_cause),
            "down_links": sorted(injector.down_links),
            "down_switches": sorted(injector.down_switches),
        }

    def metrics_snapshot(self) -> Dict[str, float]:
        """Flat counter mapping for the metrics registry.

        Conservation totals, per-node/per-port traffic counters, buffer
        occupancy, and fault blackholes — pulled lazily at registry
        ``snapshot()`` time, so the hot path pays nothing.
        """
        out: Dict[str, float] = dict(self.conservation_check())
        out["fused_ports"] = self.fused_ports
        for name in sorted(self.node_switches):
            out.update(self.node_switches[name].metrics_snapshot())
        faults = self.fault_summary()
        if faults:
            out["faults.topology_changes"] = faults["topology_changes"]
            out["faults.down_links"] = len(faults["down_links"])
            out["faults.down_switches"] = len(faults["down_switches"])
            for cause, count in sorted(faults["lost_by_cause"].items()):
                out[f"faults.lost.{cause}"] = count
        return out

    def stats_by_node(self) -> Dict[str, Dict]:
        """JSON-friendly per-node stats with per-port breakdowns."""
        out = {}
        for name in sorted(self.node_switches):
            stats = self.node_switches[name].stats
            out[name] = {
                "received": stats.received,
                "transmitted": stats.transmitted,
                "dropped_admission": stats.dropped_admission,
                "dropped_scheduler": stats.dropped_scheduler,
                "per_port": stats.per_port_dict(),
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Fabric(network={self.network.name!r}, "
            f"injected={self.injected_packets}, "
            f"delivered={self.delivered_packets})"
        )
