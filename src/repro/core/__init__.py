"""Core PIFO abstractions: packets, PIFOs, transactions, trees, scheduler.

This subpackage implements the paper's programming model (Section 2):

* :class:`~repro.core.packet.Packet` — the unit of scheduling.
* :class:`~repro.core.pifo.PIFO` — push-in first-out queue (rank-ordered
  insert, head dequeue, FIFO tie-break), with interchangeable storage
  backends (:mod:`repro.core.backend`): sorted list, heap calendar,
  integer-rank bucket queue.
* :class:`~repro.core.transaction.SchedulingTransaction` /
  :class:`~repro.core.transaction.ShapingTransaction` — per-packet programs
  computing ranks and release times.
* :class:`~repro.core.tree.ScheduleTree` — trees of transactions for
  hierarchical and non-work-conserving algorithms.
* :class:`~repro.core.scheduler.ProgrammableScheduler` — the reference
  enqueue/dequeue engine.
"""

from .backend import (
    DEFAULT_BACKEND,
    PIFO_BACKENDS,
    BackendSpec,
    PIFOBackend,
    available_backends,
    backend_name,
    make_pifo,
    register_backend,
    resolve_backend,
)
from .packet import Packet, make_packets
from .pifo import (
    PIFO,
    BucketedPIFO,
    CalendarPIFO,
    PIFOBase,
    PIFOEntry,
    QuantizedBucketedPIFO,
    Rank,
    SortedListPIFO,
)
from .predicates import (
    And,
    ClassEquals,
    ClassIn,
    FieldEquals,
    FlowEquals,
    FlowIn,
    MatchAll,
    MatchNone,
    Not,
    Or,
    Predicate,
    PriorityEquals,
)
from .scheduler import ProgrammableScheduler, SchedulerStats, ShapingToken, run_enqueue_dequeue
from .seeds import derive_seed
from .transaction import (
    LambdaSchedulingTransaction,
    LambdaShapingTransaction,
    SchedulingTransaction,
    ShapingTransaction,
    Transaction,
    TransactionContext,
)
from .tree import ScheduleTree, TreeNode, single_node_tree

__all__ = [
    "Packet",
    "make_packets",
    "PIFO",
    "SortedListPIFO",
    "CalendarPIFO",
    "BucketedPIFO",
    "QuantizedBucketedPIFO",
    "PIFOBase",
    "PIFOEntry",
    "Rank",
    "PIFOBackend",
    "BackendSpec",
    "PIFO_BACKENDS",
    "DEFAULT_BACKEND",
    "available_backends",
    "backend_name",
    "make_pifo",
    "register_backend",
    "resolve_backend",
    "derive_seed",
    "Predicate",
    "MatchAll",
    "MatchNone",
    "ClassEquals",
    "ClassIn",
    "FlowEquals",
    "FlowIn",
    "FieldEquals",
    "PriorityEquals",
    "And",
    "Or",
    "Not",
    "Transaction",
    "TransactionContext",
    "SchedulingTransaction",
    "ShapingTransaction",
    "LambdaSchedulingTransaction",
    "LambdaShapingTransaction",
    "ScheduleTree",
    "TreeNode",
    "single_node_tree",
    "ProgrammableScheduler",
    "SchedulerStats",
    "ShapingToken",
    "run_enqueue_dequeue",
]
