"""A small discrete-event simulator.

The behavioural experiments in the paper (bandwidth shares under HPFQ, rate
limits under shaping, Stop-and-Go delay bounds, minimum-rate guarantees) all
need packets to *take time on the wire*.  This simulator provides exactly
that: a clock, an event queue, and components (sources, output ports) that
schedule work against it.

Design notes
------------
* Time is a float in seconds; the simulator never invents time — it jumps
  from event to event.
* Determinism: same inputs, same outputs.  Events at the same time run in
  scheduling order; all randomness lives in the traffic generators, which
  take explicit seeds.
* Components register themselves via :meth:`Simulator.schedule` /
  :meth:`Simulator.schedule_at`; there is no global registry.
* The :meth:`Simulator.run` loop is deliberately *flat*: it operates on the
  event queue's raw tuple heap with the hot names bound to locals, because
  at fabric scale the per-event dispatch overhead dominates the simulation.
  Events are bare ``(time, seq, callback)`` tuples (see
  :mod:`repro.sim.events`); cancellation goes through
  :meth:`Simulator.cancel`.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Optional

from ..exceptions import SimulationError
from .events import Event, EventQueue


class Simulator:
    """Discrete-event simulation kernel."""

    __slots__ = ("now", "_queue", "events_processed", "_running")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self.events_processed = 0
        self._running = False

    # -- scheduling -----------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], Any], name: str = "") -> Event:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        # Inlined EventQueue.push: one event per simulated packet per hop
        # makes even the single extra call measurable.
        queue = self._queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        entry = (self.now + delay, seq, callback)
        heappush(queue._heap, entry)
        return entry

    def schedule_at(self, time: float, callback: Callable[[], Any], name: str = "") -> Event:
        """Run ``callback`` at absolute simulated time ``time``."""
        now = self.now
        if time < now - 1e-12:
            raise SimulationError(
                f"cannot schedule at {time} (now is {now}): time must not go backwards"
            )
        queue = self._queue
        seq = queue._next_seq
        queue._next_seq = seq + 1
        entry = (time if time > now else now, seq, callback)
        heappush(queue._heap, entry)
        return entry

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (handle returned by ``schedule*``)."""
        self._queue.cancel(event)

    # -- execution ------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the queue empties or ``until`` is reached.

        Returns the simulation time when the run stopped.  Events scheduled
        exactly at ``until`` are processed.
        """
        queue = self._queue
        # Bind the queue internals once: entries pushed by callbacks land in
        # the same list objects, and EventQueue.compact rebuilds in place.
        heap = queue._heap
        tombstones = queue._tombstones
        pop = heappop
        self._running = True
        processed = 0
        try:
            while heap:
                entry = heap[0]
                time = entry[0]
                if until is not None and time > until:
                    break
                pop(heap)
                if tombstones and entry[1] in tombstones:
                    tombstones.discard(entry[1])
                    continue
                if time > self.now:
                    self.now = time
                entry[2]()
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
            self.events_processed += processed
        if until is not None:
            next_time = queue.peek_time()
            if next_time is None or next_time > until:
                # Advance the clock to the requested horizon so rate
                # measurements over [0, until] use the intended window even
                # if the last packet departed earlier.
                if until > self.now:
                    self.now = until
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"
