"""Section 4.3 — enqueue conflicts between shaping and scheduling.

Regenerates the conflict scenario: a shaping PIFO releasing elements into a
parent block while external (scheduling) enqueues target the same block in
the same cycles.  Paper claim: conflicts are resolved in favour of the
scheduling enqueue, so shaping traffic gets best-effort service and is
delayed by a few cycles under contention, while scheduling enqueues are
never delayed.
"""

from __future__ import annotations

from conftest import report

from repro.hardware import ConflictArbiter


def run_contention(cycles=1000, scheduling_every=1, shaping_every=3):
    """Drive one block with periodic scheduling and shaping enqueue requests."""
    arbiter = ConflictArbiter()
    shaping_wait_cycles = []
    pending_shaping = []  # cycle at which each shaping request was issued
    for cycle in range(cycles):
        if cycle % scheduling_every == 0:
            arbiter.request("root", "scheduling")
        if cycle % shaping_every == 0:
            arbiter.request("root", "shaping")
            pending_shaping.append(cycle)
        granted = arbiter.arbitrate_cycle()
        winner = granted.get("root")
        if winner is not None and winner.kind == "shaping" and pending_shaping:
            shaping_wait_cycles.append(cycle - pending_shaping.pop(0))
    return arbiter, shaping_wait_cycles


def test_sec43_scheduling_enqueues_always_win(benchmark):
    arbiter, shaping_waits = benchmark(run_contention)
    report(
        "Section 4.3: conflict arbitration under full contention",
        [
            {
                "granted_scheduling": arbiter.granted_scheduling,
                "granted_shaping": arbiter.granted_shaping,
                "deferred_shaping": arbiter.deferred_shaping,
                "max_shaping_wait_cycles": max(shaping_waits) if shaping_waits else 0,
            }
        ],
    )
    # With a scheduling enqueue every cycle, shaping never gets a slot: it is
    # pure best effort, exactly the policy the paper chooses.
    assert arbiter.granted_scheduling == 1000
    assert arbiter.granted_shaping == 0
    assert arbiter.pending_requests() > 0


def test_sec43_shaping_catches_up_when_line_rate_slack_exists(benchmark):
    """With spare enqueue slots (scheduling enqueues only every other cycle,
    emulating the paper's over-clocking work-around), shaping releases are
    delayed by at most a couple of cycles."""
    def run():
        return run_contention(cycles=1000, scheduling_every=2, shaping_every=3)

    arbiter, shaping_waits = benchmark(run)
    report(
        "Section 4.3: shaping delay with spare slots",
        [
            {
                "granted_shaping": arbiter.granted_shaping,
                "mean_wait_cycles": sum(shaping_waits) / max(len(shaping_waits), 1),
                "max_wait_cycles": max(shaping_waits) if shaping_waits else 0,
            }
        ],
    )
    assert arbiter.granted_shaping > 300
    assert max(shaping_waits) <= 3
