"""A small discrete-event simulator.

The behavioural experiments in the paper (bandwidth shares under HPFQ, rate
limits under shaping, Stop-and-Go delay bounds, minimum-rate guarantees) all
need packets to *take time on the wire*.  This simulator provides exactly
that: a clock, an event queue, and components (sources, output ports) that
schedule work against it.

Design notes
------------
* Time is a float in seconds; the simulator never invents time — it jumps
  from event to event.
* Determinism: same inputs, same outputs.  Events at the same time run in
  scheduling order; all randomness lives in the traffic generators, which
  take explicit seeds.
* Components register themselves via :meth:`Simulator.schedule` /
  :meth:`Simulator.schedule_at`; there is no global registry.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..exceptions import SimulationError
from .events import Event, EventQueue


class Simulator:
    """Discrete-event simulation kernel."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self.events_processed = 0
        self._running = False

    # -- scheduling -----------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], Any], name: str = "") -> Event:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self._queue.push(self.now + delay, callback, name=name)

    def schedule_at(self, time: float, callback: Callable[[], Any], name: str = "") -> Event:
        """Run ``callback`` at absolute simulated time ``time``."""
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self.now}): time must not go backwards"
            )
        return self._queue.push(max(time, self.now), callback, name=name)

    # -- execution ------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the queue empties or ``until`` is reached.

        Returns the simulation time when the run stopped.  Events scheduled
        exactly at ``until`` are processed.
        """
        self._running = True
        processed = 0
        try:
            while self._queue:
                next_time = self._queue.peek_time()
                assert next_time is not None
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                if event.cancelled:
                    continue
                if event.time < self.now - 1e-12:  # pragma: no cover - defensive
                    raise SimulationError("event queue produced an event in the past")
                self.now = max(self.now, event.time)
                event.callback()
                self.events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and (not self._queue or self._queue.peek_time() is None
                                  or self._queue.peek_time() > until):
            # Advance the clock to the requested horizon so rate measurements
            # over [0, until] use the intended window even if the last packet
            # departed earlier.
            self.now = max(self.now, until)
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"
