"""Measurement utilities: fairness, throughput, latency, flow completion."""

from .fairness import (
    expected_weighted_shares,
    jain_index,
    max_share_error,
    normalized_shares,
    relative_share_error,
    weighted_jain_index,
)
from .fct import (
    FCTSummary,
    FlowCompletion,
    fct_summary,
    flow_completions,
    flow_completions_from_sink,
    normalized_fct,
)
from .latency import (
    DelaySummary,
    delay_summary,
    delays_by_flow,
    percentile,
    queueing_delays,
    total_delays,
)
from .throughput import (
    RateSample,
    bytes_by_flow,
    max_windowed_rate_bps,
    mean_rate_bps,
    windowed_rates,
)

__all__ = [
    "jain_index",
    "weighted_jain_index",
    "normalized_shares",
    "expected_weighted_shares",
    "max_share_error",
    "relative_share_error",
    "RateSample",
    "windowed_rates",
    "max_windowed_rate_bps",
    "mean_rate_bps",
    "bytes_by_flow",
    "percentile",
    "DelaySummary",
    "delay_summary",
    "delays_by_flow",
    "queueing_delays",
    "total_delays",
    "FlowCompletion",
    "FCTSummary",
    "flow_completions",
    "flow_completions_from_sink",
    "fct_summary",
    "normalized_fct",
]
