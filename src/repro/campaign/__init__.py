"""Campaign engine: parallel parameter sweeps over the scenario registry.

The paper's thesis — one PIFO substrate expresses many scheduling
algorithms — is demonstrated at scale by sweeping algorithms x topologies
x backends x loads, not by running one scenario at a time.  This package
is that execution layer:

* :mod:`~repro.campaign.spec` — :class:`Campaign` factor declarations
  expanding into a deterministic run table of pickle-safe
  :class:`RunSpec` rows, each with a seed derived from
  ``(base_seed, workload_id)`` so scheduler/backend factors compare on
  identical workloads while replicates stay independent;
* :mod:`~repro.campaign.runner` — :class:`CampaignRunner` shards the run
  table across a ``multiprocessing`` pool (``workers=1`` is bit-identical
  to serial execution, modulo wall-clock fields);
* :mod:`~repro.campaign.store` — append-only JSONL :class:`ResultStore`
  with per-run config fingerprints, making interrupted campaigns
  resumable (``--resume`` re-runs exactly the missing set);
* :mod:`~repro.campaign.builtin` — the campaign registry and the built-in
  ``paper_sweep`` campaign.

Aggregation of store records into grouped summary tables lives in
:mod:`repro.reporting.campaign`; the CLI front end is
``repro campaign run|list|report``.
"""

from .builtin import (
    CAMPAIGNS,
    PAPER_SWEEP,
    get_campaign,
    list_campaigns,
    register_campaign,
)
from .runner import CampaignReport, CampaignRunner, execute_spec
from .spec import FACTOR_KEYS, Campaign, RunSpec
from .store import TIMING_FIELDS, ResultStore, StoreError, strip_timing

__all__ = [
    "Campaign",
    "RunSpec",
    "FACTOR_KEYS",
    "CampaignRunner",
    "CampaignReport",
    "execute_spec",
    "ResultStore",
    "StoreError",
    "TIMING_FIELDS",
    "strip_timing",
    "CAMPAIGNS",
    "PAPER_SWEEP",
    "register_campaign",
    "get_campaign",
    "list_campaigns",
]
