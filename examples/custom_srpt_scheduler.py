"""Writing your own scheduling algorithm as a transaction.

The paper's thesis is that a new scheduling algorithm should be a small
program, not a new chip.  This example writes a *custom* transaction from
scratch — a bounded-SRPT policy that favours short flows but never lets a
flow starve for more than a configurable age — and compares flow completion
times against plain FIFO and textbook SRPT on a heavy-tailed workload.

Run with::

    python examples/custom_srpt_scheduler.py
"""

from __future__ import annotations

from repro.algorithms import FIFOTransaction, SRPTTransaction
from repro.core import (
    Packet,
    ProgrammableScheduler,
    SchedulingTransaction,
    TransactionContext,
    single_node_tree,
)
from repro.metrics import fct_summary
from repro.sim import OutputPort, PacketSource, Simulator
from repro.traffic import flow_arrivals, web_search_flow_sizes

LINK_RATE = 1e9
DURATION = 0.2
LOAD = 0.7


class AgeBoundedSRPT(SchedulingTransaction):
    """SRPT with an anti-starvation bound.

    The rank is the flow's remaining size, but any packet older than
    ``max_age`` seconds is promoted ahead of all size-ranked traffic.  This
    is exactly the kind of operator-specific tweak the paper argues should
    be a software change: the whole algorithm is this one transaction.
    """

    state_variables = ()

    def __init__(self, max_age: float = 0.01) -> None:
        self.max_age = max_age
        super().__init__()

    def compute_rank(self, packet: Packet, ctx: TransactionContext):
        age = ctx.now - packet.arrival_time
        if age > self.max_age:
            return -1.0  # ahead of every size-based rank
        return float(packet.get("remaining_size", 0))

    def describe(self) -> str:
        return f"AgeBoundedSRPT(max_age={self.max_age}s)"


def run(transaction) -> dict:
    sim = Simulator()
    port = OutputPort(sim, ProgrammableScheduler(single_node_tree(transaction)),
                      rate_bps=LINK_RATE)
    arrivals = flow_arrivals(
        "flow", load_bps=LOAD * LINK_RATE, duration=DURATION,
        size_distribution=web_search_flow_sizes(), seed=7,
    )
    PacketSource(sim, port, arrivals)
    sim.run(until=DURATION * 2)
    packets = port.sink.packets
    return {
        "overall": fct_summary(packets),
        "short": fct_summary(packets, max_size_bytes=100_000),
    }


def main() -> None:
    results = {
        "FIFO": run(FIFOTransaction()),
        "SRPT": run(SRPTTransaction()),
        "AgeBoundedSRPT": run(AgeBoundedSRPT(max_age=0.01)),
    }
    print(f"{'scheduler':<16}{'flows':>7}{'mean FCT (ms)':>15}"
          f"{'p99 FCT (ms)':>14}{'short-flow mean (ms)':>22}")
    for name, summary in results.items():
        overall, short = summary["overall"], summary["short"]
        print(
            f"{name:<16}{overall.count:>7}{overall.mean * 1e3:>15.3f}"
            f"{overall.p99 * 1e3:>14.3f}{short.mean * 1e3:>22.3f}"
        )
    print("\nThe custom transaction keeps SRPT's short-flow wins while bounding "
          "how long any packet can be bypassed — and it took ~10 lines of code.")


if __name__ == "__main__":
    main()
