"""Tests for the text table renderers."""

from __future__ import annotations

from repro.reporting import format_value, render_comparison, render_kv, render_table


class TestFormatValue:
    def test_none_renders_as_dash(self):
        assert format_value(None) == "-"

    def test_booleans_render_as_yes_no(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_floats_use_significant_digits(self):
        assert format_value(0.123456789) == "0.1235"
        assert format_value(1234567.0) == "1.235e+06"

    def test_float_digits_configurable(self):
        assert format_value(0.123456789, float_digits=2) == "0.12"

    def test_integers_and_strings_pass_through(self):
        assert format_value(42) == "42"
        assert format_value("hello") == "hello"


class TestRenderTable:
    def test_basic_alignment(self):
        text = render_table([
            {"flow": "A", "share": 0.25},
            {"flow": "B", "share": 0.75},
        ])
        lines = text.splitlines()
        assert lines[0].startswith("flow")
        assert "share" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title_is_underlined(self):
        text = render_table([{"x": 1}], title="My table")
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert lines[1] == "=" * len("My table")

    def test_empty_rows(self):
        text = render_table([], title="Empty")
        assert "(no rows)" in text

    def test_explicit_column_order(self):
        text = render_table([{"b": 2, "a": 1}], columns=["a", "b"])
        header = text.splitlines()[0]
        assert header.index("a") < header.index("b")

    def test_missing_cells_render_as_dash(self):
        text = render_table([{"a": 1, "b": 2}, {"a": 3}])
        assert "-" in text.splitlines()[-1]

    def test_columns_union_across_rows(self):
        text = render_table([{"a": 1}, {"a": 2, "extra": "x"}])
        assert "extra" in text.splitlines()[0]

    def test_all_rows_have_equal_width(self):
        text = render_table([
            {"name": "short", "value": 1},
            {"name": "a-much-longer-name", "value": 123456},
        ])
        lines = text.splitlines()
        assert len({len(line.rstrip()) for line in lines[:1]}) == 1
        assert max(len(line) for line in lines) == len(lines[0])


class TestRenderKV:
    def test_aligned_keys(self):
        text = render_kv({"short": 1, "a longer key": 2})
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty_mapping(self):
        assert "(empty)" in render_kv({})

    def test_title(self):
        text = render_kv({"a": 1}, title="Settings")
        assert text.splitlines()[0] == "Settings"


class TestRenderComparison:
    def test_agreement_marker(self):
        text = render_comparison(
            [
                {"component": "ok", "paper": 1.0, "model": 1.05},
                {"component": "off", "paper": 1.0, "model": 2.0},
            ],
            measured_key="model",
            paper_key="paper",
        )
        lines = text.splitlines()
        assert "agrees" in lines[0]
        assert "yes" in lines[2]
        assert "NO" in lines[3]

    def test_missing_paper_value_is_na(self):
        text = render_comparison(
            [{"component": "x", "paper": None, "model": 3.0}],
            measured_key="model",
            paper_key="paper",
        )
        assert "n/a" in text

    def test_custom_tolerance(self):
        rows = [{"c": "x", "paper": 100.0, "model": 120.0}]
        strict = render_comparison(rows, "model", "paper", tolerance=0.1)
        loose = render_comparison(rows, "model", "paper", tolerance=0.3)
        assert "NO" in strict
        assert "NO" not in loose
