"""Stop-and-Go Queueing (Figure 7, Section 3.2).

Stop-and-Go is a non-work-conserving algorithm that bounds delay with a
framing strategy: time is divided into non-overlapping frames of length
``T`` and every packet arriving within a frame is transmitted at the end of
that frame, smoothing out burstiness induced by previous hops.  Figure 7::

    if now >= frame_end_time:
        frame_begin_time = frame_end_time
        frame_end_time   = frame_begin_time + T
    p.rank = frame_end_time

Packets sharing a departure time leave in FIFO order, guaranteed by the
PIFO's tie-breaking rule.
"""

from __future__ import annotations

from typing import Any, Dict

from ..core.packet import Packet
from ..core.transaction import ShapingTransaction, TransactionContext


class StopAndGoShapingTransaction(ShapingTransaction):
    """Shaping transaction releasing each packet at the end of its frame.

    Parameters
    ----------
    frame_length:
        Frame duration ``T`` in seconds.
    """

    state_variables = ("frame_begin_time", "frame_end_time")

    def __init__(self, frame_length: float) -> None:
        if frame_length <= 0:
            raise ValueError("frame_length must be positive")
        self.frame_length = frame_length
        super().__init__()

    def initial_state(self) -> Dict[str, Any]:
        return {"frame_begin_time": 0.0, "frame_end_time": self.frame_length}

    def compute_send_time(self, packet: Packet, ctx: TransactionContext) -> float:
        now = ctx.now
        # The paper's pseudo-code advances one frame; when the node has been
        # idle for several frames we advance until the current frame covers
        # "now", which is the obvious generalisation.
        while now >= self.state["frame_end_time"]:
            self.state["frame_begin_time"] = self.state["frame_end_time"]
            self.state["frame_end_time"] = (
                self.state["frame_begin_time"] + self.frame_length
            )
        return self.state["frame_end_time"]

    def describe(self) -> str:
        return f"StopAndGo(T={self.frame_length}s)"


def worst_case_delay_bound(frame_length: float, hops: int = 1) -> float:
    """Per-hop Stop-and-Go delay bound used by the Figure 7 experiment.

    A packet arriving right at the start of a frame waits at most ``T`` for
    the frame to end plus up to ``T`` of transmission window at the next hop,
    i.e. ``2T`` per hop.
    """
    if frame_length <= 0:
        raise ValueError("frame_length must be positive")
    if hops < 1:
        raise ValueError("hops must be at least 1")
    return 2.0 * frame_length * hops
