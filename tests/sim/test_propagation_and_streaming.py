"""Tests for OutputPort propagation delay / delivery hooks and the
streaming (keep_packets=False) PacketSink mode."""

from __future__ import annotations

import pytest

from repro.algorithms import FIFOTransaction
from repro.core import Packet, ProgrammableScheduler, single_node_tree
from repro.metrics import flow_completions_from_sink
from repro.sim import OutputPort, PacketSink, PacketSource, Simulator


def make_port(sim, **kwargs):
    scheduler = ProgrammableScheduler(single_node_tree(FIFOTransaction()))
    return OutputPort(sim, scheduler, rate_bps=1e6, **kwargs)


class TestPropagationDelay:
    def test_default_is_bit_identical_to_no_delay(self):
        def run(**kwargs):
            sim = Simulator()
            port = make_port(sim, **kwargs)
            PacketSource(sim, port, [(0.0, Packet(flow="f", length=1000))])
            sim.run()
            return port.sink.packets[0].departure_time

        assert run() == run(propagation_delay=0.0)

    def test_sink_recording_is_deferred_by_the_wire(self):
        sim = Simulator()
        port = make_port(sim, propagation_delay=5e-3)
        PacketSource(sim, port, [(0.0, Packet(flow="f", length=1000))])
        sim.run(until=8e-3 + 1e-6)
        # Transmission finished at 8 ms, but the packet is still on the wire.
        assert port.transmitted_packets == 1
        assert port.sink.total_packets() == 0
        sim.run()
        assert port.sink.total_packets() == 1
        assert sim.now == pytest.approx(8e-3 + 5e-3)

    def test_link_pipelines_during_propagation(self):
        sim = Simulator()
        port = make_port(sim, propagation_delay=50e-3)
        PacketSource(sim, port, [(0.0, Packet(flow="a", length=1000)),
                                 (0.0, Packet(flow="b", length=1000))])
        sim.run()
        # Back-to-back transmissions (8 ms each) overlap the first packet's
        # 50 ms propagation: total is 16 + 50, not 2 * 58.
        assert sim.now == pytest.approx(16e-3 + 50e-3)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            make_port(sim, propagation_delay=-1.0)


class TestDeliveryHook:
    def test_delivery_replaces_sink(self):
        sim = Simulator()
        delivered = []
        port = make_port(sim, delivery=delivered.append)
        PacketSource(sim, port, [(0.0, Packet(flow="f", length=1000))])
        sim.run()
        assert len(delivered) == 1
        assert port.sink.total_packets() == 0
        assert port.transmitted_packets == 1

    def test_on_departure_still_fires_with_delivery(self):
        sim = Simulator()
        departed, delivered = [], []
        port = make_port(sim, delivery=delivered.append,
                         on_departure=departed.append)
        PacketSource(sim, port, [(0.0, Packet(flow="f", length=1000))])
        sim.run()
        assert len(departed) == len(delivered) == 1


class TestStreamingSink:
    def make_packet(self, flow, length, arrival, departure, **fields):
        packet = Packet(flow=flow, length=length, arrival_time=arrival,
                        fields=fields)
        packet.departure_time = departure
        return packet

    def test_counters_match_retained_mode(self):
        retained = PacketSink()
        streaming = PacketSink(keep_packets=False)
        for index in range(100):
            for sink in (retained, streaming):
                sink.record(self.make_packet(
                    flow=f"f{index % 3}", length=500 + index,
                    arrival=index * 1e-3, departure=index * 1e-3 + 5e-4,
                ))
        assert streaming.total_packets() == retained.total_packets() == 100
        assert streaming.total_bytes() == retained.total_bytes()
        assert streaming.bytes_by_flow == retained.bytes_by_flow
        assert streaming.flows() == retained.flows()
        assert streaming.last_departure == retained.last_departure
        assert len(streaming) == len(retained) == 100
        # Whole-run queries agree between modes.
        assert streaming.throughput_bps() == pytest.approx(
            retained.throughput_bps()
        )
        assert streaming.share_by_flow() == pytest.approx(
            retained.share_by_flow()
        )
        # ... and no packets were retained.
        assert streaming.packets == []

    def test_delay_stats_aggregate(self):
        sink = PacketSink(keep_packets=False)
        for delay in (1e-3, 2e-3, 3e-3):
            sink.record(self.make_packet("f", 500, 0.0, delay))
        stats = sink.delay_stats("f")
        assert stats["count"] == 3
        assert stats["mean"] == pytest.approx(2e-3)
        assert stats["min"] == pytest.approx(1e-3)
        assert stats["max"] == pytest.approx(3e-3)
        assert sink.delay_stats("missing")["count"] == 0

    def test_windowed_queries_raise_in_streaming_mode(self):
        sink = PacketSink(keep_packets=False)
        sink.record(self.make_packet("f", 500, 0.0, 1e-3))
        with pytest.raises(ValueError, match="keep_packets"):
            sink.delays()
        with pytest.raises(ValueError, match="keep_packets"):
            sink.departure_order()
        with pytest.raises(ValueError, match="keep_packets"):
            sink.throughput_bps(start=0.5, end=0.6)
        with pytest.raises(ValueError, match="keep_packets"):
            sink.share_by_flow(start=0.5)

    def test_flow_completions_from_streaming_sink(self):
        sink = PacketSink(keep_packets=False)
        # Flow "done": 2 packets covering its full 1000-byte size.
        sink.record(self.make_packet("done", 500, 0.0, 1e-3, flow_size=1000))
        sink.record(self.make_packet("done", 500, 0.0, 4e-3, flow_size=1000))
        # Flow "partial": tail packet missing (dropped).
        sink.record(self.make_packet("partial", 500, 0.0, 2e-3, flow_size=1000))
        # Flow "untagged": no flow_size metadata, cannot judge completion.
        sink.record(self.make_packet("untagged", 500, 0.0, 2e-3))
        completions = flow_completions_from_sink(sink)
        assert [c.flow for c in completions] == ["done"]
        assert completions[0].size_bytes == 1000
        assert completions[0].completion_time == pytest.approx(4e-3)

    def test_memory_stays_flat_in_streaming_mode(self):
        sink = PacketSink(keep_packets=False)
        for index in range(10_000):
            sink.record(self.make_packet("f", 1500, 0.0, index * 1e-6))
        assert sink.packets == []
        assert len(sink.aggregates) == 1
        assert sink.total_packets() == 10_000
