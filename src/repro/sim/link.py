"""Output ports: a scheduler draining into a link of fixed capacity.

:class:`OutputPort` couples any scheduler object exposing the
``enqueue(packet, now)`` / ``dequeue(now)`` interface (the reference
:class:`~repro.core.scheduler.ProgrammableScheduler`, a hardware-model
scheduler, or one of the classic baselines) to a transmission link running
at a configurable line rate, inside a :class:`~repro.sim.simulator.Simulator`.

Work conservation and shaping both fall out naturally:

* whenever the link goes idle the port asks the scheduler for the next
  packet;
* if the scheduler has buffered packets but none eligible (a shaping
  transaction is holding them back), the port schedules a wake-up at the
  scheduler's next release time instead of spinning.

Hot-path design
---------------
The port is a **self-rescheduling transmit loop**: the in-flight packet is
stored on the port and the completion event calls the *bound method*
``self._on_tx_complete`` — no per-packet closure is ever allocated.
Packets propagating on the wire sit in a FIFO deque drained by a second
bound-method event; since every packet on one port shares the port's
propagation delay, delivery order equals transmit order and the queue needs
no per-packet state.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Optional

from ..core.backend import BackendSpec
from ..core.packet import Packet
from .simulator import Simulator
from .sink import PacketSink

#: Expected backlog (packets) above which ``pifo_backend="auto"`` selects
#: the heap-backed ``"calendar"`` backend: beyond a few thousand buffered
#: elements the sorted list's O(n) inserts dominate a simulation's runtime.
AUTO_CALENDAR_THRESHOLD = 4096

#: Default cap on back-to-back packets a saturated port transmits per
#: completion event (the batched-transmit fast-forward loop).  ``1``
#: disables batching (strict one-event-per-packet single-stepping).
DEFAULT_BATCH_LIMIT = 32


class OutputPort:
    """A single output port: scheduler + transmitter at ``rate_bps``.

    Parameters
    ----------
    sim:
        The simulator driving this port.
    scheduler:
        Scheduler draining into the link.  Must provide ``enqueue(packet,
        now)`` returning bool, ``dequeue(now)`` returning a packet or
        ``None`` and ``__len__``; ``next_shaping_release()`` is optional and
        used for non-work-conserving schedulers.
    rate_bps:
        Line rate in bits per second (10 Gbit/s per port in the paper's
        target switch).
    sink:
        Destination for transmitted packets; a fresh :class:`PacketSink` is
        created when omitted.
    on_departure:
        Optional callback invoked with each packet after transmission; used
        to chain hops (for example the LSTF multi-switch experiment).
    propagation_delay:
        Wire latency in seconds between this port and its destination.
        Transmission finishes (and the link frees up for the next packet)
        after ``length_bits / rate_bps``; the packet reaches the sink or the
        delivery hook ``propagation_delay`` later.  Defaults to 0.0 so all
        single-port experiments are bit-identical to the pre-fabric code.
    delivery:
        Optional delivery hook: when set, transmitted packets are handed to
        ``delivery(packet)`` (after the propagation delay) *instead of* being
        recorded in this port's sink.  This is how the network fabric layer
        (:mod:`repro.net`) chains a switch egress port to the next hop's
        ingress; the terminal hop keeps ``delivery=None`` and sinks locally.
    pifo_backend:
        Optional PIFO backend spec applied to the scheduler's tree (see
        :mod:`repro.core.backend`).  The special value ``"auto"`` lets the
        simulator choose: when the expected backlog
        (``expected_backlog``, defaulting to unbounded) reaches
        :data:`AUTO_CALENDAR_THRESHOLD` packets the O(log n) ``"calendar"``
        backend is selected, otherwise the scheduler's current backend is
        kept.  Ignored for schedulers without a swappable tree (the classic
        baselines).
    expected_backlog:
        Optional hint of the worst-case number of buffered packets, used
        only by ``pifo_backend="auto"``.
    """

    __slots__ = (
        "sim", "scheduler", "pifo_backend", "rate_bps", "name", "sink",
        "on_departure", "propagation_delay", "delivery", "busy",
        "transmitted_packets", "transmitted_bytes", "dropped_packets",
        "_wakeup", "_tx_packet", "_wire", "_inv_rate", "_has_release",
        "_tx_complete", "faulted", "batch_limit",
    )

    def __init__(
        self,
        sim: Simulator,
        scheduler,
        rate_bps: float,
        name: str = "port",
        sink: Optional[PacketSink] = None,
        on_departure: Optional[Callable[[Packet], None]] = None,
        pifo_backend: BackendSpec = None,
        expected_backlog: Optional[int] = None,
        propagation_delay: float = 0.0,
        delivery: Optional[Callable[[Packet], None]] = None,
        batch_limit: int = DEFAULT_BATCH_LIMIT,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if propagation_delay < 0:
            raise ValueError("propagation_delay must be non-negative")
        if batch_limit < 1:
            raise ValueError("batch_limit must be >= 1")
        self.sim = sim
        self.scheduler = scheduler
        self.pifo_backend = self._apply_backend(pifo_backend, expected_backlog)
        self.rate_bps = rate_bps
        self._inv_rate = 8.0 / rate_bps  # seconds per byte
        self.name = name
        self.sink = sink if sink is not None else PacketSink(name=f"{name}.sink")
        self.on_departure = on_departure
        self.propagation_delay = propagation_delay
        self.delivery = delivery
        self.busy = False
        self.transmitted_packets = 0
        self.transmitted_bytes = 0
        self.dropped_packets = 0
        self._wakeup = None
        #: Packet currently on the transmitter (None when idle).
        self._tx_packet: Optional[Packet] = None
        #: Packets in flight on the wire (propagation_delay > 0), FIFO.
        self._wire: deque = deque()
        #: Whether the scheduler can report shaping releases (cached; the
        #: hasattr probe is too expensive to repeat after every dequeue).
        self._has_release = hasattr(scheduler, "next_shaping_release")
        #: Transmit-completion callback.  Defaults to the generic
        #: :meth:`_on_tx_complete`; the fabric layer replaces it with a
        #: fused per-hop closure (see ``repro.net.fabric``) that inlines
        #: delivery, next-hop ingress and buffer release.
        self._tx_complete: Callable[[], None] = self._on_tx_complete
        #: Administratively down (fault injection).  A faulted port never
        #: starts a new transmission; the fault layer (``repro.net.faults``)
        #: wraps ``_tx_complete`` to blackhole the packet already in flight.
        self.faulted = False
        #: Max back-to-back packets transmitted per completion event while
        #: the link stays saturated (see :meth:`_on_tx_complete`).
        self.batch_limit = batch_limit

    def _apply_backend(
        self, pifo_backend: BackendSpec, expected_backlog: Optional[int]
    ) -> BackendSpec:
        """Resolve ``"auto"`` and swap the scheduler's tree if possible."""
        if pifo_backend is None:
            return None
        if pifo_backend == "auto":
            if expected_backlog is not None and expected_backlog < AUTO_CALENDAR_THRESHOLD:
                return None
            pifo_backend = "calendar"
        if hasattr(self.scheduler, "use_backend"):
            self.scheduler.use_backend(pifo_backend)
            return pifo_backend
        return None

    # -- ingress ---------------------------------------------------------------
    def receive(self, packet: Packet) -> bool:
        """Hand a packet to the scheduler and kick the transmitter."""
        now = self.sim.now
        packet.arrival_time = now
        if not self.scheduler.enqueue(packet, now=now):
            self.dropped_packets += 1
            return False
        if not self.busy:
            self._try_transmit()
        return True

    def receive_many(self, packets: Iterable[Packet]) -> int:
        """Hand a burst of packets to the scheduler in one batch.

        Uses the scheduler's ``enqueue_many`` fast path when available and
        kicks the transmitter once for the whole burst instead of once per
        packet; returns the number of packets buffered.
        """
        batch = list(packets)
        for packet in batch:
            packet.arrival_time = self.sim.now
        if hasattr(self.scheduler, "enqueue_many"):
            accepted = self.scheduler.enqueue_many(batch, now=self.sim.now)
            self.dropped_packets += len(batch) - accepted
        else:
            accepted = 0
            for packet in batch:
                if self.scheduler.enqueue(packet, now=self.sim.now):
                    accepted += 1
                else:
                    self.dropped_packets += 1
        if accepted and not self.busy:
            self._try_transmit()
        return accepted

    # -- egress ------------------------------------------------------------------
    def _try_transmit(self) -> None:
        if self.busy or self.faulted:
            return
        sim = self.sim
        packet = self.scheduler.dequeue(now=sim.now)
        if packet is None:
            self._arm_wakeup()
            return
        self.busy = True
        self._tx_packet = packet
        sim.schedule(packet.length * self._inv_rate, self._tx_complete)

    def _on_tx_complete(self) -> None:
        # Batched transmit: while the link stays saturated (another packet
        # ready the instant one finishes) and *provably* nothing else in
        # the simulation can run before the next completion — no queued
        # event, no deferred event, no horizon/budget crossing at or
        # before it — the port **fast-forwards**: it advances the clock to
        # the completion time and transmits the next packet inside the
        # same callback, amortising one event reschedule over up to
        # ``batch_limit`` back-to-back packets.  Timestamps, delivery
        # order and counters (``events_processed`` included) are exactly
        # those of single-stepping; ties are never fast-forwarded, since a
        # same-instant event could share state with this port.
        sim = self.sim
        scheduler = self.scheduler
        budget = self.batch_limit
        packet = self._tx_packet
        now = sim.now
        while True:
            self._tx_packet = None
            packet.departure_time = now
            self.busy = False
            self.transmitted_packets += 1
            self.transmitted_bytes += packet.length
            if self.propagation_delay > 0.0:
                # The link frees up immediately (pipelining); the packet
                # lands at the far end one wire latency later.  FIFO: same
                # delay per port.
                self._wire.append(packet)
                sim.schedule(self.propagation_delay, self._on_wire_arrival)
            elif self.delivery is not None:
                self.delivery(packet)
            else:
                self.sink.record(packet)
            if self.on_departure is not None:
                self.on_departure(packet)
            # Self-reschedule: pull the next packet without leaving the event.
            next_packet = scheduler.dequeue(now=now)
            if next_packet is None:
                self._arm_wakeup()
                return
            self.busy = True
            self._tx_packet = next_packet
            t_next = now + next_packet.length * self._inv_rate
            if budget > 1 and not self.faulted and t_next <= sim._ff_horizon:
                deferred = sim._deferred
                if deferred is None or deferred[0] > t_next:
                    head_time = sim._queue.peek_time()
                    if head_time is None or head_time > t_next:
                        budget -= 1
                        sim.now = now = t_next
                        sim.events_processed += 1
                        packet = next_packet
                        continue
            # Fast path: a busy port's next completion is usually the very
            # next event — let the run loop prefetch it from the deferral
            # slot.
            sim.schedule_fast(t_next - now, self._tx_complete)
            return

    def _on_wire_arrival(self) -> None:
        packet = self._wire.popleft()
        if self.delivery is not None:
            self.delivery(packet)
        else:
            self.sink.record(packet)

    def _deliver(self, packet: Packet) -> None:
        """Immediate delivery (kept for subclass/test hooks)."""
        if self.delivery is not None:
            self.delivery(packet)
        else:
            self.sink.record(packet)

    def _arm_wakeup(self) -> None:
        """Schedule a retry at the scheduler's next shaping release."""
        if not self._has_release:
            return
        next_release = self.scheduler.next_shaping_release()
        if next_release is None or next_release <= self.sim.now:
            return
        if self._wakeup is not None:
            self.sim.cancel(self._wakeup)
        self._wakeup = self.sim.schedule_at(next_release, self._on_wakeup)

    def _on_wakeup(self) -> None:
        self._wakeup = None
        self._try_transmit()

    # -- queries -------------------------------------------------------------------
    @property
    def utilization(self) -> float:
        """Fraction of elapsed time the link spent transmitting."""
        if self.sim.now <= 0:
            return 0.0
        return (self.transmitted_bytes * 8.0 / self.rate_bps) / self.sim.now

    def backlog_packets(self) -> int:
        """Packets currently buffered in the scheduler."""
        return len(self.scheduler)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OutputPort(name={self.name!r}, rate={self.rate_bps / 1e9:.3g} Gbit/s, "
            f"tx={self.transmitted_packets})"
        )
