"""Service-Curve Earliest Deadline First (Section 3.4, item 2).

SC-EDF schedules packets in increasing order of a deadline computed from a
flow's *service curve* — a specification of the service the flow should
receive over any time interval.  The scheduling transaction sets the
packet's rank to that deadline.

We implement the widely used **latency-rate** family of service curves,
``S(t) = max(0, rate * (t - latency))``, and the standard SCED deadline
recursion for it: within a flow's busy period deadlines advance by the
packet's transmission time at the reserved rate, and a new busy period
restarts the latency offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from ..core.packet import Packet
from ..core.pifo import Rank
from ..core.transaction import SchedulingTransaction, TransactionContext
from ..exceptions import TransactionError


@dataclass(frozen=True)
class LatencyRateCurve:
    """A latency-rate service curve ``S(t) = max(0, rate*(t - latency))``.

    Attributes
    ----------
    rate_bps:
        Long-term reserved rate in bits per second.
    latency_s:
        Initial latency (seconds) before the reserved rate kicks in.
    """

    rate_bps: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")

    def service(self, interval_s: float) -> float:
        """Bits of service guaranteed over an interval of this length."""
        return max(0.0, self.rate_bps * (interval_s - self.latency_s))

    def transmission_time(self, length_bytes: float) -> float:
        """Time to serve ``length_bytes`` at the reserved rate."""
        return (length_bytes * 8.0) / self.rate_bps


class SCEDTransaction(SchedulingTransaction):
    """Scheduling transaction computing SC-EDF deadlines.

    Parameters
    ----------
    curves:
        Mapping from flow identifier to its service curve.
    default_curve:
        Curve used for flows without an explicit reservation; ``None`` makes
        unreserved flows an error.
    """

    state_variables = ("last_deadline",)

    def __init__(
        self,
        curves: Mapping[str, LatencyRateCurve],
        default_curve: Optional[LatencyRateCurve] = None,
    ) -> None:
        self.curves = dict(curves)
        self.default_curve = default_curve
        super().__init__()

    def initial_state(self) -> Dict[str, Any]:
        return {"last_deadline": {}}

    def curve_of(self, flow: str) -> LatencyRateCurve:
        curve = self.curves.get(flow, self.default_curve)
        if curve is None:
            raise TransactionError(f"flow {flow!r} has no service curve")
        return curve

    def compute_rank(self, packet: Packet, ctx: TransactionContext) -> Rank:
        flow = ctx.element_flow
        curve = self.curve_of(flow)
        last_deadline: Dict[str, float] = self.state["last_deadline"]

        busy = flow in last_deadline and last_deadline[flow] >= ctx.now
        if busy:
            start = last_deadline[flow]
        else:
            # New busy period: the curve owes nothing for the first
            # ``latency_s`` seconds.
            start = ctx.now + curve.latency_s
        deadline = start + curve.transmission_time(ctx.element_length or packet.length)
        last_deadline[flow] = deadline
        return deadline

    def describe(self) -> str:
        return f"SC-EDF({len(self.curves)} reserved flows)"


def admissible(curves: Mapping[str, LatencyRateCurve], link_rate_bps: float) -> bool:
    """Schedulability check: reserved rates must not exceed link capacity."""
    return sum(curve.rate_bps for curve in curves.values()) <= link_rate_bps
