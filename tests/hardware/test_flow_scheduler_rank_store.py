"""Tests for the flow scheduler and rank store hardware models."""

from __future__ import annotations

import pytest

from repro.exceptions import HardwareModelError
from repro.hardware import FlowScheduler, RankStore


class TestFlowScheduler:
    def test_push_pop_sorted_by_rank(self):
        scheduler = FlowScheduler(capacity_flows=8)
        scheduler.push(5.0, logical_pifo=0, flow="a")
        scheduler.push(1.0, logical_pifo=0, flow="b")
        scheduler.push(3.0, logical_pifo=0, flow="c")
        assert [scheduler.pop(0).flow for _ in range(3)] == ["b", "c", "a"]

    def test_tie_break_by_push_order(self):
        scheduler = FlowScheduler(capacity_flows=8)
        scheduler.push(1.0, 0, "first")
        scheduler.push(1.0, 0, "second")
        assert scheduler.pop(0).flow == "first"

    def test_pop_selects_by_logical_pifo(self):
        scheduler = FlowScheduler(capacity_flows=8)
        scheduler.push(1.0, logical_pifo=7, flow="a")
        scheduler.push(2.0, logical_pifo=3, flow="b")
        entry = scheduler.pop(3)
        assert entry.flow == "b"
        assert scheduler.pop(3) is None
        assert scheduler.pop(7).flow == "a"

    def test_capacity_limit(self):
        scheduler = FlowScheduler(capacity_flows=2)
        scheduler.push(1.0, 0, "a")
        scheduler.push(2.0, 0, "b")
        with pytest.raises(HardwareModelError):
            scheduler.push(3.0, 0, "c")

    def test_pfc_masking_hides_flow_from_pops(self):
        scheduler = FlowScheduler(capacity_flows=8)
        scheduler.push(1.0, 0, "paused")
        scheduler.push(2.0, 0, "active")
        scheduler.mask_flow("paused")
        assert scheduler.pop(0).flow == "active"
        assert scheduler.pop(0) is None
        scheduler.unmask_flow("paused")
        assert scheduler.pop(0).flow == "paused"

    def test_comparison_work_scales_with_occupancy(self):
        scheduler = FlowScheduler(capacity_flows=64)
        for i in range(10):
            scheduler.push(float(i), 0, f"f{i}")
        assert scheduler.stats.comparisons >= 10
        assert scheduler.stats.pushes == 10

    def test_occupancy_by_pifo(self):
        scheduler = FlowScheduler(capacity_flows=8)
        scheduler.push(1.0, 0, "a")
        scheduler.push(1.0, 1, "b")
        scheduler.push(1.0, 1, "c")
        assert scheduler.occupancy_by_pifo() == {0: 1, 1: 2}

    def test_contains_flow(self):
        scheduler = FlowScheduler(capacity_flows=8)
        scheduler.push(1.0, 0, "a")
        assert scheduler.contains_flow(0, "a")
        assert not scheduler.contains_flow(1, "a")
        assert not scheduler.contains_flow(0, "b")


class TestRankStore:
    def test_per_flow_fifo_order(self):
        store = RankStore(capacity_entries=16)
        store.append(0, "f", 1.0, "first")
        store.append(0, "f", 2.0, "second")
        assert store.pop_head(0, "f") == (1.0, "first")
        assert store.pop_head(0, "f") == (2.0, "second")
        assert store.pop_head(0, "f") is None

    def test_flows_are_independent(self):
        store = RankStore(capacity_entries=16)
        store.append(0, "a", 1.0, "pa")
        store.append(0, "b", 2.0, "pb")
        assert store.pop_head(0, "b") == (2.0, "pb")
        assert store.flow_depth(0, "a") == 1

    def test_logical_pifos_are_independent(self):
        store = RankStore(capacity_entries=16)
        store.append(0, "f", 1.0, None)
        store.append(5, "f", 2.0, None)
        assert store.flow_depth(0, "f") == 1
        assert store.flow_depth(5, "f") == 1

    def test_shared_capacity(self):
        store = RankStore(capacity_entries=2)
        store.append(0, "a", 1.0, None)
        store.append(0, "b", 1.0, None)
        with pytest.raises(HardwareModelError):
            store.append(0, "c", 1.0, None)
        assert store.free_entries == 0

    def test_occupancy_and_stats(self):
        store = RankStore(capacity_entries=8)
        store.append(0, "a", 1.0, None)
        store.append(0, "a", 2.0, None)
        store.pop_head(0, "a")
        assert len(store) == 1
        assert store.stats.appends == 2
        assert store.stats.pops == 1
        assert store.stats.peak_occupancy == 2
        assert store.active_flows() == 1
