"""Property-based equivalence suite for the pluggable PIFO backends.

Every backend registered in :mod:`repro.core.backend` must be
*behaviourally indistinguishable*: identical dequeue orders (including
equal-rank FIFO tie-breaks), identical counters (pushes/pops/drops) and
identical capacity-drop behaviour, whatever interleaving of push / pop /
peek / remove / batch operations a workload performs.  The suite drives
random operation sequences against all backends in lockstep and diffs
every observable after every step.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PIFO,
    BucketedPIFO,
    CalendarPIFO,
    SortedListPIFO,
    available_backends,
    backend_name,
    make_pifo,
    register_backend,
    resolve_backend,
)
from repro.core.backend import PIFO_BACKENDS, PIFOBackend
from repro.exceptions import PIFOEmptyError, PIFOFullError

#: Canonical names of all built-in backends; the equivalence properties run
#: every backend against the reference in lockstep.
ALL_BACKENDS = available_backends()


# --------------------------------------------------------------------------- #
# Factory and registry                                                        #
# --------------------------------------------------------------------------- #
class TestFactory:
    def test_default_backend_is_reference(self):
        assert type(make_pifo()) is SortedListPIFO
        assert PIFO is SortedListPIFO

    @pytest.mark.parametrize("name,cls", [
        ("sorted", SortedListPIFO),
        ("list", SortedListPIFO),
        ("calendar", CalendarPIFO),
        ("heap", CalendarPIFO),
        ("bucketed", BucketedPIFO),
        ("bucket", BucketedPIFO),
    ])
    def test_registry_names(self, name, cls):
        assert type(make_pifo(name)) is cls
        assert type(make_pifo(name.upper())) is cls  # case-insensitive

    def test_class_spec(self):
        assert type(make_pifo(CalendarPIFO)) is CalendarPIFO

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown PIFO backend"):
            make_pifo("btree")

    def test_bad_spec_type_raises(self):
        with pytest.raises(TypeError):
            make_pifo(42)

    def test_capacity_and_name_forwarded(self):
        pifo = make_pifo("calendar", capacity=7, name="portq")
        assert pifo.capacity == 7
        assert pifo.name == "portq"

    def test_register_backend(self):
        class MyPIFO(SortedListPIFO):
            backend_name = "mine"

        register_backend("mine", MyPIFO)
        try:
            assert type(make_pifo("mine")) is MyPIFO
        finally:
            del PIFO_BACKENDS["mine"]

    def test_backends_satisfy_protocol(self):
        for name in ALL_BACKENDS:
            assert isinstance(make_pifo(name), PIFOBackend)

    def test_backend_name_roundtrip(self):
        for name in ALL_BACKENDS:
            assert backend_name(make_pifo(name)) == name
            assert resolve_backend(name).backend_name == name


# --------------------------------------------------------------------------- #
# Backend-specific contracts                                                  #
# --------------------------------------------------------------------------- #
class TestBucketedContract:
    def test_rejects_fractional_ranks(self):
        pifo = BucketedPIFO()
        with pytest.raises(ValueError, match="integer ranks"):
            pifo.push("a", 1.5)
        assert len(pifo) == 0

    def test_accepts_integral_floats(self):
        pifo = BucketedPIFO()
        pifo.push("a", 3.0)
        pifo.push("b", 1)
        assert pifo.pop() == "b"
        assert pifo.pop() == "a"


class TestSortedListHeadIndex:
    def test_pop_does_not_shift_the_list(self):
        """The seed's list.pop(0) made dequeue O(n); the head index must
        leave the backing list untouched for small pop counts."""
        pifo = SortedListPIFO()
        for i in range(10):
            pifo.push(i, i)
        backing = pifo._entries
        for i in range(5):
            assert pifo.pop() == i
        assert pifo._entries is backing  # no compaction this small
        assert len(pifo) == 5
        assert list(pifo) == [5, 6, 7, 8, 9]

    def test_compaction_reclaims_dead_prefix(self):
        pifo = SortedListPIFO()
        n = 500
        for i in range(n):
            pifo.push(i, i)
        for i in range(n):
            assert pifo.pop() == i
        assert len(pifo._entries) == 0  # fully compacted once drained
        assert pifo.is_empty


# --------------------------------------------------------------------------- #
# Lockstep equivalence harness                                                #
# --------------------------------------------------------------------------- #
def _lockstep(operations, capacity=None):
    """Apply one operation sequence to every backend and diff observables."""
    reference = make_pifo("sorted", capacity=capacity)
    others = {
        name: make_pifo(name, capacity=capacity)
        for name in ALL_BACKENDS
        if name != "sorted"
    }
    counter = 0
    for op, rank in operations:
        if op == "push":
            outcomes = {}
            for name, pifo in [("sorted", reference)] + list(others.items()):
                try:
                    pifo.push(counter, rank)
                    outcomes[name] = "ok"
                except PIFOFullError:
                    outcomes[name] = "full"
            assert len(set(outcomes.values())) == 1, outcomes
            counter += 1
        elif op == "pop":
            if reference.is_empty:
                for pifo in others.values():
                    with pytest.raises(PIFOEmptyError):
                        pifo.pop()
                with pytest.raises(PIFOEmptyError):
                    reference.pop()
                continue
            expected = reference.pop_entry()
            for name, pifo in others.items():
                entry = pifo.pop_entry()
                assert (entry.rank, entry.element) == (
                    expected.rank,
                    expected.element,
                ), name
        elif op == "peek":
            if reference.is_empty:
                continue
            expected = (reference.peek(), reference.peek_rank())
            for name, pifo in others.items():
                assert (pifo.peek(), pifo.peek_rank()) == expected, name
        elif op == "remove":
            # Remove every element whose payload is divisible by the rank
            # operand (an arbitrary but deterministic predicate).
            modulus = max(2, rank)
            expected = reference.remove(lambda x: x % modulus == 0)
            for name, pifo in others.items():
                assert pifo.remove(lambda x: x % modulus == 0) == expected, name
        # After every step, all observables must agree.
        for name, pifo in others.items():
            assert len(pifo) == len(reference), name
            assert pifo.ranks() == reference.ranks(), name
            assert list(pifo) == list(reference), name
            assert pifo.pushes == reference.pushes, name
            assert pifo.pops == reference.pops, name
            assert pifo.drops == reference.drops, name
    # Final drain must agree element for element.
    expected_tail = reference.drain()
    for name, pifo in others.items():
        assert pifo.drain() == expected_tail, name


op_sequences = st.lists(
    st.tuples(
        st.sampled_from(["push", "push", "push", "pop", "peek", "remove"]),
        st.integers(min_value=0, max_value=12),
    ),
    max_size=120,
)


@given(op_sequences)
@settings(max_examples=120, deadline=None)
def test_property_backends_equivalent_unbounded(operations):
    _lockstep(operations, capacity=None)


@given(op_sequences)
@settings(max_examples=120, deadline=None)
def test_property_backends_equivalent_with_capacity_drops(operations):
    """A tight capacity forces drops; drop behaviour and counters must
    match across backends exactly."""
    _lockstep(operations, capacity=5)


@given(st.lists(st.integers(min_value=0, max_value=3), max_size=150))
@settings(max_examples=100, deadline=None)
def test_property_equal_rank_fifo_ties_across_backends(ranks):
    """Heavily colliding ranks: FIFO tie-breaking must be identical."""
    pifos = {name: make_pifo(name) for name in ALL_BACKENDS}
    for index, rank in enumerate(ranks):
        for pifo in pifos.values():
            pifo.push(index, rank)
    orders = {name: [pifo.pop() for _ in range(len(ranks))]
              for name, pifo in pifos.items()}
    reference_order = orders["sorted"]
    for name, order in orders.items():
        assert order == reference_order, name


@given(st.lists(st.integers(min_value=0, max_value=50), max_size=200))
@settings(max_examples=100, deadline=None)
def test_property_enqueue_many_equals_push_loop(ranks):
    """The batch fast path must be indistinguishable from a push loop."""
    for name in ALL_BACKENDS:
        batched = make_pifo(name, capacity=40)
        looped = make_pifo(name, capacity=40)
        accepted = batched.enqueue_many((i, rank) for i, rank in enumerate(ranks))
        looped_accepted = 0
        for i, rank in enumerate(ranks):
            try:
                looped.push(i, rank)
                looped_accepted += 1
            except PIFOFullError:
                pass
        assert accepted == looped_accepted, name
        assert batched.drops == looped.drops, name
        assert batched.drain() == looped.drain(), name


@given(st.lists(st.integers(min_value=0, max_value=50), max_size=200))
@settings(max_examples=60, deadline=None)
def test_property_drain_equals_pop_loop(ranks):
    for name in ALL_BACKENDS:
        drained = make_pifo(name)
        popped = make_pifo(name)
        for i, rank in enumerate(ranks):
            drained.push(i, rank)
            popped.push(i, rank)
        pop_loop = [popped.pop() for _ in range(len(ranks))]
        assert drained.drain() == pop_loop, name
        assert drained.pops == popped.pops, name
        assert drained.is_empty


# --------------------------------------------------------------------------- #
# Tree / scheduler integration                                                #
# --------------------------------------------------------------------------- #
class TestTreeBackendThreading:
    def test_tree_builder_threads_backend(self):
        from repro.algorithms import build_fig3_tree

        tree = build_fig3_tree(pifo_backend="calendar")
        for node in tree.nodes():
            assert type(node.scheduling_pifo) is CalendarPIFO

    def test_use_backend_migrates_entries(self):
        from repro.algorithms import FIFOTransaction
        from repro.core import single_node_tree

        tree = single_node_tree(FIFOTransaction())
        node = tree.root
        for i in range(8):
            node.scheduling_pifo.push(f"p{i}", i)
        tree.use_backend("bucketed")
        assert type(node.scheduling_pifo) is BucketedPIFO
        assert [node.scheduling_pifo.pop() for _ in range(8)] == [
            f"p{i}" for i in range(8)
        ]

    def test_shaping_pifo_avoids_integer_only_backend(self):
        from repro.algorithms import build_fig4_tree

        tree = build_fig4_tree(pifo_backend="bucketed")
        shaped = tree.node("Right")
        assert type(shaped.scheduling_pifo) is BucketedPIFO
        # Shaping ranks are wall-clock floats: must stay off bucket queues.
        assert type(shaped.shaping_pifo) is SortedListPIFO

    def test_scheduler_applies_backend(self):
        from repro.algorithms import build_fig3_tree
        from repro.core import ProgrammableScheduler

        scheduler = ProgrammableScheduler(build_fig3_tree(), pifo_backend="calendar")
        assert scheduler.pifo_backend == "calendar"
        for node in scheduler.tree.nodes():
            assert type(node.scheduling_pifo) is CalendarPIFO


@given(st.lists(st.sampled_from("ABCD"), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_property_hpfq_departure_order_identical_across_backends(flows):
    """The same HPFQ workload must depart in the same order on the sorted
    and calendar backends (STFQ ranks are floats, so the bucketed backend
    is exercised by the strict-priority property below instead)."""
    from repro.algorithms import build_fig3_tree
    from repro.core import Packet, ProgrammableScheduler

    def run(backend):
        scheduler = ProgrammableScheduler(
            build_fig3_tree(), pifo_backend=backend
        )
        for i, flow in enumerate(flows):
            scheduler.enqueue(Packet(flow=flow, length=1000, arrival_time=0.0))
        return [p.flow for p in scheduler.drain()]

    assert run("sorted") == run("calendar")


@given(st.lists(st.sampled_from(["gold", "silver", "bronze"]),
                min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_property_strict_priority_identical_on_all_backends(flows):
    """Strict priority emits integer ranks, so every backend — including
    the bucket queue — must agree on the departure order."""
    from repro.algorithms import StrictPriorityTransaction
    from repro.core import Packet, ProgrammableScheduler, single_node_tree

    priorities = {"gold": 0, "silver": 1, "bronze": 2}

    def run(backend):
        tree = single_node_tree(
            StrictPriorityTransaction(), pifo_backend=backend
        )
        scheduler = ProgrammableScheduler(tree)
        for flow in flows:
            scheduler.enqueue(
                Packet(flow=flow, length=1000, arrival_time=0.0,
                       priority=priorities[flow])
            )
        return [p.flow for p in scheduler.drain()]

    reference = run("sorted")
    for backend in ALL_BACKENDS:
        assert run(backend) == reference, backend
