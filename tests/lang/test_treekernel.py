"""Fused whole-tree kernels: install rules, cache, staleness, equivalence.

:mod:`repro.lang.treekernel` compiles a scheduler's entire tree (shape +
per-node transaction programs) into one generated-Python kernel whose
``enqueue`` / ``dequeue`` / ``transfer`` closures are bound as instance
attributes of the :class:`~repro.core.ProgrammableScheduler`.  These tests
pin the contract that makes that safe:

* the kernel installs by default and is observationally identical to the
  interpreted engine (stats, counters, departure order, timestamps);
* trees with unfusable features (shaping) fall back to the interpreted
  path with a reason, never an error;
* kernels are cached by tree-shape signature and re-specialised when the
  tree is mutated behind the scheduler's back;
* ``transfer`` (the cut-through enqueue+dequeue used by the fused fabric
  datapath) matches the composition exactly, including drops and backend
  type errors.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    ArrivalSequenceTransaction,
    FieldRankTransaction,
    build_fig3_tree,
    build_fig4_tree,
    hierarchy_flows,
)
from repro.core import ProgrammableScheduler, single_node_tree
from repro.core.packet import Packet
from repro.core.pifo import PIFOFullError
from repro.lang.treekernel import (
    TreeKernelError,
    clear_kernel_cache,
    compile_tree_kernel,
    kernel_cache_info,
)

BACKENDS = ["sorted", "calendar", "bucketed", "quantized"]


def _fifo_scheduler(**kwargs):
    return ProgrammableScheduler(
        single_node_tree(ArrivalSequenceTransaction()), **kwargs
    )


def _drain(scheduler, now=1.0):
    out = []
    while True:
        packet = scheduler.dequeue(now=now)
        if packet is None:
            return out
        out.append(packet.flow)


class TestInstall:
    def test_kernel_installed_by_default(self):
        scheduler = _fifo_scheduler()
        assert scheduler.tree_kernel is not None
        assert scheduler.kernel_fallback_reason is None
        # The fused closures shadow the class methods.
        assert "enqueue" in scheduler.__dict__
        assert "dequeue" in scheduler.__dict__
        assert "transfer" in scheduler.__dict__

    def test_env_var_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TREE_KERNEL", "0")
        scheduler = _fifo_scheduler()
        assert scheduler.tree_kernel is None
        assert "enqueue" not in scheduler.__dict__

    def test_explicit_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TREE_KERNEL", "0")
        scheduler = _fifo_scheduler(tree_kernel=True)
        assert scheduler.tree_kernel is not None

    def test_set_tree_kernel_toggles(self):
        scheduler = _fifo_scheduler()
        scheduler.set_tree_kernel(False)
        assert scheduler.tree_kernel is None
        assert scheduler.kernel_fallback_reason == "disabled"
        # Still fully functional interpreted.
        assert scheduler.enqueue(Packet(flow="a", length=100), now=0.0)
        assert scheduler.dequeue(now=0.0).flow == "a"
        scheduler.set_tree_kernel(True)
        assert scheduler.tree_kernel is not None

    def test_subclass_never_fuses(self):
        class Custom(ProgrammableScheduler):
            pass

        scheduler = Custom(single_node_tree(ArrivalSequenceTransaction()))
        assert scheduler.tree_kernel is None

    def test_shaping_tree_falls_back_with_reason(self):
        scheduler = ProgrammableScheduler(build_fig4_tree())
        assert scheduler.tree_kernel is None
        assert "shaping" in scheduler.kernel_fallback_reason
        with pytest.raises(TreeKernelError):
            compile_tree_kernel(scheduler)

    def test_multi_node_tree_fuses(self):
        scheduler = ProgrammableScheduler(build_fig3_tree())
        assert scheduler.tree_kernel is not None

    def test_kernel_source_registered_in_linecache(self):
        import linecache

        kernel = _fifo_scheduler().tree_kernel
        assert kernel.filename.startswith("<treekernel:")
        assert linecache.cache[kernel.filename][2]


class TestCache:
    def test_same_shape_hits_cache(self):
        clear_kernel_cache()
        _fifo_scheduler()
        after_first = kernel_cache_info()
        _fifo_scheduler()
        after_second = kernel_cache_info()
        assert after_first["misses"] == 1
        assert after_second["misses"] == 1
        assert after_second["hits"] == after_first["hits"] + 1
        assert after_second["installs"] == after_first["installs"] + 1

    def test_different_backend_different_kernel(self):
        clear_kernel_cache()
        a = _fifo_scheduler()
        b = _fifo_scheduler(pifo_backend="calendar")
        assert a.tree_kernel.signature != b.tree_kernel.signature
        assert kernel_cache_info()["misses"] >= 2

    def test_fallback_counted(self):
        clear_kernel_cache()
        ProgrammableScheduler(build_fig4_tree())
        assert kernel_cache_info()["fallbacks"] == 1


class TestStaleness:
    def test_direct_tree_use_backend_respecialises(self):
        scheduler = _fifo_scheduler()
        before = scheduler.tree_kernel
        # Mutate the tree *behind* the scheduler: the per-call guard must
        # notice the swapped PIFO object and rebuild.
        scheduler.tree.use_backend("calendar")
        packet = Packet(flow="a", length=100)
        assert scheduler.enqueue(packet, now=0.0)
        assert scheduler.tree_kernel is not before
        assert scheduler.dequeue(now=0.0) is packet

    def test_scheduler_use_backend_respecialises(self):
        scheduler = _fifo_scheduler()
        before = scheduler.tree_kernel
        scheduler.use_backend("bucketed")
        assert scheduler.tree_kernel is not before

    def test_stale_transfer_recovers(self):
        scheduler = _fifo_scheduler()
        scheduler.tree.use_backend("calendar")
        packet = Packet(flow="a", length=100)
        assert scheduler.transfer(packet, 0.0) is packet

    def test_reset_keeps_kernel_working(self):
        scheduler = _fifo_scheduler()
        scheduler.enqueue(Packet(flow="a", length=100), now=0.0)
        scheduler.reset()
        packet = Packet(flow="b", length=100)
        assert scheduler.enqueue(packet, now=0.0)
        assert scheduler.dequeue(now=0.0) is packet
        assert scheduler.stats.enqueued == 1


class TestDrops:
    def _capped(self, drop_on_full):
        return ProgrammableScheduler(
            single_node_tree(ArrivalSequenceTransaction(), pifo_capacity=2),
            drop_on_full=drop_on_full,
        )

    def test_drop_on_full_returns_false(self):
        scheduler = self._capped(drop_on_full=True)
        assert scheduler.enqueue(Packet(flow="a", length=100), now=0.0)
        assert scheduler.enqueue(Packet(flow="b", length=100), now=0.0)
        assert not scheduler.enqueue(Packet(flow="c", length=100), now=0.0)
        assert scheduler.stats.dropped == 1
        assert scheduler.stats.enqueued == 2

    def test_no_drop_raises(self):
        scheduler = self._capped(drop_on_full=False)
        scheduler.enqueue(Packet(flow="a", length=100), now=0.0)
        scheduler.enqueue(Packet(flow="b", length=100), now=0.0)
        with pytest.raises(PIFOFullError):
            scheduler.enqueue(Packet(flow="c", length=100), now=0.0)

    def test_interpreted_agrees(self):
        fused = self._capped(drop_on_full=True)
        plain = self._capped(drop_on_full=True)
        plain.set_tree_kernel(False)
        for flow in "abcd":
            assert (fused.enqueue(Packet(flow=flow, length=100), now=0.0)
                    == plain.enqueue(Packet(flow=flow, length=100), now=0.0))
        assert fused.stats == plain.stats


class TestBucketedRankErrors:
    def test_float_rank_raises_like_interpreted(self):
        # BucketedPIFO rejects fractional ranks identically on the fused
        # and interpreted paths (same exception type and message).
        def build():
            return ProgrammableScheduler(
                single_node_tree(FieldRankTransaction("deadline")),
                pifo_backend="bucketed",
            )

        fused, plain = build(), build()
        plain.set_tree_kernel(False)
        packet = Packet(flow="a", length=100, fields={"deadline": 1.5})
        for scheduler in (fused, plain):
            with pytest.raises(ValueError, match="integer ranks"):
                scheduler.enqueue(packet, now=0.0)

    def test_float_rank_raises_through_transfer(self):
        scheduler = ProgrammableScheduler(
            single_node_tree(FieldRankTransaction("deadline")),
            pifo_backend="bucketed",
        )
        packet = Packet(flow="a", length=100, fields={"deadline": 2.5})
        with pytest.raises(ValueError, match="integer ranks"):
            scheduler.transfer(packet, 0.0)


@pytest.mark.parametrize("backend", BACKENDS)
class TestLockstepSingleNode:
    def test_departure_order_and_stats(self, backend):
        fused = ProgrammableScheduler(
            single_node_tree(ArrivalSequenceTransaction()),
            pifo_backend=backend,
        )
        plain = ProgrammableScheduler(
            single_node_tree(ArrivalSequenceTransaction()),
            pifo_backend=backend,
        )
        plain.set_tree_kernel(False)
        assert fused.tree_kernel is not None and plain.tree_kernel is None
        packets = [Packet(flow=f"f{i % 4}", length=64 + i) for i in range(50)]
        twins = [Packet(flow=p.flow, length=p.length) for p in packets]
        for packet, twin in zip(packets, twins):
            assert (fused.enqueue(packet, now=0.25)
                    == plain.enqueue(twin, now=0.25))
        assert _drain(fused) == _drain(plain)
        assert fused.stats == plain.stats
        fp, pp = (fused.tree.root.scheduling_pifo,
                  plain.tree.root.scheduling_pifo)
        assert (fp.pushes, fp.pops) == (pp.pushes, pp.pops)


@pytest.mark.parametrize("backend", ["sorted", "calendar"])
class TestLockstepHierarchy:
    def test_fig3_hpfq_identical(self, backend):
        fused = ProgrammableScheduler(build_fig3_tree(),
                                      pifo_backend=backend)
        plain = ProgrammableScheduler(build_fig3_tree(),
                                      pifo_backend=backend)
        plain.set_tree_kernel(False)
        flows = [f for leaf in hierarchy_flows(build_fig3_tree()).values()
                 for f in leaf]
        for i in range(80):
            flow = flows[i % len(flows)]
            length = 200 + 37 * (i % 7)
            assert (fused.enqueue(Packet(flow=flow, length=length), now=0.0)
                    == plain.enqueue(Packet(flow=flow, length=length), now=0.0))
            if i % 3 == 2:
                a, b = fused.dequeue(now=0.0), plain.dequeue(now=0.0)
                assert (a.flow, a.length) == (b.flow, b.length)
        assert _drain(fused) == _drain(plain)
        assert fused.stats == plain.stats


class TestTransfer:
    def _pifo_counters(self, scheduler):
        pifo = scheduler.tree.root.scheduling_pifo
        return (pifo.pushes, pifo.pops, pifo._seq, len(pifo))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_tree_cut_through_equivalent(self, backend):
        via_transfer = ProgrammableScheduler(
            single_node_tree(ArrivalSequenceTransaction()),
            pifo_backend=backend,
        )
        via_compose = ProgrammableScheduler(
            single_node_tree(ArrivalSequenceTransaction()),
            pifo_backend=backend,
        )
        for i in range(10):
            p1 = Packet(flow=f"f{i % 2}", length=120)
            p2 = Packet(flow=f"f{i % 2}", length=120)
            head = via_transfer.transfer(p1, float(i))
            assert via_compose.enqueue(p2, now=float(i))
            twin = via_compose.dequeue(now=float(i))
            assert head is p1 and twin is p2
            assert (p1.enqueue_time, p1.dequeue_time) == (
                p2.enqueue_time, p2.dequeue_time)
        assert via_transfer.stats == via_compose.stats
        assert (self._pifo_counters(via_transfer)
                == self._pifo_counters(via_compose))

    def test_nonempty_tree_composes(self):
        scheduler = _fifo_scheduler()
        first = Packet(flow="queued", length=100)
        assert scheduler.enqueue(first, now=0.0)
        later = Packet(flow="later", length=100)
        # FIFO order: the buffered packet must come out, not the new one.
        head = scheduler.transfer(later, 1.0)
        assert head is first
        assert scheduler.dequeue(now=1.0) is later

    def test_transfer_full_pifo_drops(self):
        scheduler = ProgrammableScheduler(
            single_node_tree(ArrivalSequenceTransaction(), pifo_capacity=1),
            drop_on_full=True,
        )
        assert scheduler.enqueue(Packet(flow="a", length=100), now=0.0)
        assert scheduler.transfer(Packet(flow="b", length=100), 0.0) is None
        assert scheduler.stats.dropped == 1

    def test_transfer_counts_match_fabric_expectations(self):
        scheduler = _fifo_scheduler()
        packet = Packet(flow="a", length=100)
        assert scheduler.transfer(packet, 2.0) is packet
        assert len(scheduler) == 0
        assert scheduler.stats.enqueued == scheduler.stats.dequeued == 1
        assert scheduler.stats.per_flow_enqueued == {"a": 1}
        assert scheduler.stats.per_flow_dequeued == {"a": 1}
        assert packet.enqueue_time == 2.0
        assert packet.dequeue_time == 2.0
