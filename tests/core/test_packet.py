"""Tests for the Packet model."""

from __future__ import annotations

import pytest

from repro.core import Packet, make_packets
from repro.core.packet import EMPTY_FIELDS, clear_pool, pool_size


class TestPacket:
    def test_basic_construction(self):
        packet = Packet(flow="A", length=1500)
        assert packet.flow == "A"
        assert packet.length == 1500
        assert packet.length_bits == 12000

    def test_positive_length_required(self):
        with pytest.raises(ValueError):
            Packet(flow="A", length=0)

    def test_fields_get_set(self):
        packet = Packet(flow="A", length=100)
        assert packet.get("slack") is None
        assert packet.get("slack", 1.5) == 1.5
        packet.set("slack", 0.25)
        assert packet.get("slack") == 0.25

    def test_packet_ids_are_unique_and_increasing(self):
        first = Packet(flow="A", length=100)
        second = Packet(flow="A", length=100)
        assert second.packet_id > first.packet_id

    def test_queueing_delay_requires_both_stamps(self):
        packet = Packet(flow="A", length=100)
        assert packet.queueing_delay is None
        packet.enqueue_time = 1.0
        assert packet.queueing_delay is None
        packet.dequeue_time = 1.5
        assert packet.queueing_delay == pytest.approx(0.5)

    def test_total_delay(self):
        packet = Packet(flow="A", length=100, arrival_time=2.0)
        assert packet.total_delay is None
        packet.departure_time = 2.75
        assert packet.total_delay == pytest.approx(0.75)

    def test_copy_is_independent(self):
        packet = Packet(flow="A", length=100, fields={"deadline": 3.0})
        clone = packet.copy()
        clone.set("deadline", 9.0)
        assert packet.get("deadline") == 3.0
        assert clone.flow == packet.flow

    def test_class_and_priority_defaults(self):
        packet = Packet(flow="A", length=64)
        assert packet.packet_class is None
        assert packet.priority == 0


class TestLazyFields:
    def test_zero_metadata_packets_share_empty_mapping(self):
        first = Packet(flow="A", length=100)
        second = Packet(flow="B", length=100)
        assert first.fields is EMPTY_FIELDS
        assert first.fields is second.fields

    def test_shared_mapping_rejects_direct_writes(self):
        packet = Packet(flow="A", length=100)
        with pytest.raises(TypeError):
            packet.fields["x"] = 1

    def test_first_write_allocates_private_dict(self):
        first = Packet(flow="A", length=100)
        second = Packet(flow="B", length=100)
        first.set("slack", 2.0)
        assert first.fields == {"slack": 2.0}
        assert second.get("slack") is None
        assert second.fields is EMPTY_FIELDS

    def test_hops_allocated_lazily(self):
        packet = Packet(flow="A", length=100)
        assert packet._hops is None
        assert packet.per_hop_delays() == {}
        packet.record_hop("s1", 0.0, 0.1, 0.2)
        assert packet.hops == [("s1", 0.0, 0.1, 0.2)]


class TestPacketPool:
    def test_acquire_reuses_recycled_packets(self):
        clear_pool()
        packet = Packet.acquire("A", 100)
        packet.set("slack", 1.0)
        packet.record_hop("s1", 0.0, 0.0, 0.1)
        old_id = packet.packet_id
        packet.recycle()
        assert pool_size() == 1
        reused = Packet.acquire("B", 200)
        assert reused is packet
        assert pool_size() == 0
        # Fully reinitialised: fresh id, no stale metadata or hops.
        assert reused.flow == "B"
        assert reused.length == 200
        assert reused.packet_id > old_id
        assert reused.fields is EMPTY_FIELDS
        assert reused.hops == []
        assert reused.enqueue_time is None
        assert reused.departure_time is None

    def test_acquire_validates_length(self):
        clear_pool()
        Packet.acquire("A", 100).recycle()
        with pytest.raises(ValueError):
            Packet.acquire("A", 0)
        with pytest.raises(ValueError):
            Packet.acquire("B", -5)  # pool hit path validates too

    def test_streaming_fabric_sink_recycles(self):
        from repro.sim import PacketSink, Simulator

        clear_pool()
        sink = PacketSink(keep_packets=False, recycle_packets=True)
        packet = Packet.acquire("A", 100)
        packet.departure_time = 1.0
        sink.record(packet)
        assert sink.recorded_packets == 1
        assert pool_size() == 1
        clear_pool()

    def test_recycle_requires_streaming_mode(self):
        from repro.sim import PacketSink

        with pytest.raises(ValueError):
            PacketSink(keep_packets=True, recycle_packets=True)


class TestMakePackets:
    def test_count_and_spacing(self):
        packets = make_packets("A", count=3, length=500, start_time=1.0, spacing=0.5)
        assert len(packets) == 3
        assert [p.arrival_time for p in packets] == [1.0, 1.5, 2.0]
        assert all(p.length == 500 for p in packets)

    def test_extra_fields_copied_per_packet(self):
        packets = make_packets("A", count=2, deadline=5.0)
        packets[0].set("deadline", 1.0)
        assert packets[1].get("deadline") == 5.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            make_packets("A", count=-1)

    def test_zero_count(self):
        assert make_packets("A", count=0) == []
