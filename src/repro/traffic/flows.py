"""Flow descriptors used by the workload generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.packet import EMPTY_FIELDS


@dataclass
class FlowSpec:
    """Static description of a flow for workload generation.

    Attributes
    ----------
    name:
        Flow identifier, copied into every generated packet.
    rate_bps:
        Offered load of the flow in bits per second (interpretation depends
        on the generator: mean rate for Poisson, exact rate for CBR, on-state
        rate for on/off sources).
    packet_size:
        Packet size in bytes.
    packet_class:
        Optional class label for tree predicates.
    priority:
        Optional strict-priority level.
    weight:
        Scheduling weight (informational; schedulers configure their own
        weights, but keeping it here makes experiment scripts declarative).
    start_time / end_time:
        Interval during which the flow generates traffic.
    fields:
        Extra metadata copied into every packet (slack, deadline, ...).
        Defaults to the shared immutable empty mapping
        (:data:`~repro.core.packet.EMPTY_FIELDS`) so zero-metadata specs —
        and the packets generated from them — allocate no dict; pass a real
        dict to attach metadata.
    src / dst:
        Optional network addresses stamped on every generated packet, so the
        fabric layer (:mod:`repro.net`) can route the flow from its source
        host to its destination host.  Single-port experiments leave them
        unset.
    """

    name: str
    rate_bps: float
    packet_size: int = 1500
    packet_class: Optional[str] = None
    priority: int = 0
    weight: float = 1.0
    start_time: float = 0.0
    end_time: Optional[float] = None
    # default_factory returning the shared immutable mapping: dataclasses
    # reject unhashable defaults, but the factory hands every zero-metadata
    # spec the same EMPTY_FIELDS object — no dict is allocated.
    fields: Dict[str, Any] = field(default_factory=lambda: EMPTY_FIELDS)
    src: Optional[str] = None
    dst: Optional[str] = None

    def __post_init__(self) -> None:
        if self.rate_bps < 0:
            raise ValueError("rate_bps must be non-negative")
        if self.packet_size <= 0:
            raise ValueError("packet_size must be positive")
        if self.end_time is not None and self.end_time < self.start_time:
            raise ValueError("end_time must not precede start_time")

    @property
    def packets_per_second(self) -> float:
        """Mean packet rate implied by ``rate_bps`` and ``packet_size``."""
        if self.rate_bps == 0:
            return 0.0
        return self.rate_bps / (self.packet_size * 8.0)

    def active_at(self, time: float) -> bool:
        """Whether the flow offers traffic at the given time."""
        if time < self.start_time:
            return False
        return self.end_time is None or time <= self.end_time
