"""The push-in first-out queue (PIFO) and its interchangeable backends.

A PIFO is a priority queue that lets an element be *pushed into an arbitrary
location* based on the element's rank, but always *dequeues from the head*
(Section 2 of the paper).  Two properties matter for correctness:

* **Lower ranks dequeue first.**  The paper fixes this convention in a
  footnote; we keep it throughout the library.
* **Ties break FIFO.**  Elements with equal rank leave in the order they were
  pushed.  Stop-and-Go queueing (Section 3.2) relies on this to transmit all
  packets of a frame in arrival order.

Three interchangeable implementations share one base class and are therefore
behaviourally identical (a property-based suite in
``tests/core/test_pifo_backends.py`` pins the equivalence):

:class:`SortedListPIFO` (alias :data:`PIFO`)
    The reference implementation backed by a sorted list, ``bisect`` and a
    head index.  Pushes are O(n) in the worst case (list insert) but fast in
    practice; pops are O(1) amortised (the head index advances and the dead
    prefix is compacted geometrically).

:class:`CalendarPIFO`
    The same interface with an O(log n) push/pop backed by a heap, used by
    the simulator for large workloads.  It keeps a monotonically increasing
    sequence number alongside the rank so heap ordering matches PIFO
    semantics (rank, then arrival order).

:class:`BucketedPIFO`
    A bucket queue for *integer* ranks (the hardware uses 16- or 32-bit rank
    fields, Section 5.1): a dict of per-rank FIFO deques plus a small heap of
    occupied ranks.  Push is O(1) amortised, pop is O(1) amortised, making
    it the fastest backend for workloads whose transactions emit integral
    ranks (strict priority, arrival sequence numbers, per-hop deadlines).

All accept arbitrary elements: packets at the leaves of a scheduling tree,
or references to other PIFOs at interior nodes.  The factory and registry
for selecting a backend by name live in :mod:`repro.core.backend`.
"""

from __future__ import annotations

import bisect
import heapq
import math
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from ..exceptions import PIFOEmptyError, PIFOFullError

T = TypeVar("T")

#: Rank type.  The paper uses integer ranks in hardware (16 or 32 bits); the
#: reference model accepts any totally ordered value, in particular floats
#: for virtual times and wall-clock departure times.
Rank = float


class PIFOEntry(Generic[T]):
    """An (element, rank) pair stored inside a PIFO.

    The sequence number records push order and implements the FIFO
    tie-breaking rule for equal ranks.
    """

    __slots__ = ("rank", "seq", "element")

    def __init__(self, rank: Rank, seq: int, element: T) -> None:
        self.rank = rank
        self.seq = seq
        self.element = element

    def key(self) -> Tuple[Rank, int]:
        return (self.rank, self.seq)

    def __lt__(self, other: "PIFOEntry") -> bool:
        return (self.rank, self.seq) < (other.rank, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PIFOEntry(rank={self.rank}, seq={self.seq}, element={self.element!r})"


class PIFOBase(Generic[T]):
    """Shared machinery for every PIFO backend.

    Subclasses provide the storage by implementing five hooks:
    :meth:`_insert`, :meth:`_pop_head`, :meth:`_head`,
    :meth:`_sorted_entries`, :meth:`_clear_storage`, :meth:`_rebuild` and
    ``__len__``.  Everything observable — capacity enforcement, FIFO
    tie-breaks via the sequence number, the push/pop/drop counters, batch
    operations — lives here so the backends cannot drift apart.

    Parameters
    ----------
    capacity:
        Optional bound on the number of buffered elements.  The hardware
        design bounds each PIFO block at 64 K elements (Section 5.1); the
        reference model defaults to unbounded.
    name:
        Optional label used in error messages and debugging output.
    """

    #: Registry name of the backend (see :mod:`repro.core.backend`).
    backend_name = "abstract"
    #: True for backends that only accept integral ranks (bucket queues).
    requires_integer_ranks = False

    def __init__(self, capacity: Optional[int] = None, name: str = "pifo") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self._seq = 0
        self.capacity = capacity
        self.name = name
        # Counters useful for experiments and ablations.
        self.pushes = 0
        self.pops = 0
        self.drops = 0

    # -- storage hooks (implemented by each backend) -------------------------
    def _insert(self, entry: PIFOEntry[T]) -> None:
        raise NotImplementedError

    def _pop_head(self) -> PIFOEntry[T]:
        raise NotImplementedError

    def _head(self) -> PIFOEntry[T]:
        raise NotImplementedError

    def _sorted_entries(self) -> List[PIFOEntry[T]]:
        raise NotImplementedError

    def _clear_storage(self) -> None:
        raise NotImplementedError

    def _rebuild(self, kept: List[PIFOEntry[T]]) -> None:
        """Replace storage with ``kept`` (already in dequeue order)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # -- core operations -----------------------------------------------------
    def push(self, element: T, rank: Rank) -> None:
        """Insert ``element`` at the position determined by ``rank``.

        Equal-rank elements retain FIFO order.  Raises
        :class:`~repro.exceptions.PIFOFullError` when the capacity bound
        would be exceeded.
        """
        if self.capacity is not None and len(self) >= self.capacity:
            self.drops += 1
            raise PIFOFullError(
                f"PIFO {self.name!r} is full (capacity={self.capacity})"
            )
        entry = PIFOEntry(rank, self._seq, element)
        self._insert(entry)
        self._seq += 1
        self.pushes += 1

    def pop(self) -> T:
        """Remove and return the head (lowest rank, earliest push)."""
        return self.pop_entry().element

    def pop_entry(self) -> PIFOEntry[T]:
        """Like :meth:`pop` but returns the full entry (element and rank)."""
        if not len(self):
            raise PIFOEmptyError(f"pop from empty PIFO {self.name!r}")
        entry = self._pop_head()
        self.pops += 1
        return entry

    def peek(self) -> T:
        """Return the head element without removing it."""
        return self.peek_entry().element

    def peek_rank(self) -> Rank:
        """Return the head element's rank without removing it."""
        return self.peek_entry().rank

    def peek_entry(self) -> PIFOEntry[T]:
        """Return the head entry without removing it."""
        if not len(self):
            raise PIFOEmptyError(f"peek on empty PIFO {self.name!r}")
        return self._head()

    # -- batch fast paths ----------------------------------------------------
    def enqueue_many(self, items: Iterable[Tuple[T, Rank]]) -> int:
        """Push a batch of ``(element, rank)`` pairs; returns how many were
        buffered.

        Unlike :meth:`push`, elements that would exceed the capacity bound
        are *dropped* (counted in :attr:`drops`) instead of raising, so one
        oversized burst does not abort the rest of the batch — the behaviour
        a switch exhibits on buffer exhaustion.  Backends may override this
        with a bulk implementation; the semantics must stay identical.
        """
        accepted = 0
        for element, rank in items:
            try:
                self.push(element, rank)
            except PIFOFullError:
                continue
            accepted += 1
        return accepted

    def drain(self) -> List[T]:
        """Pop every element, returning them in dequeue order.

        Equivalent to repeated :meth:`pop` but implemented as one bulk
        operation; used by the simulator and benchmarks as a fast path.
        """
        entries = self._sorted_entries()
        self.pops += len(entries)
        self._clear_storage()
        return [entry.element for entry in entries]

    # -- introspection -------------------------------------------------------
    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[T]:
        """Iterate elements in dequeue order without removing them."""
        return (entry.element for entry in self._sorted_entries())

    def entries(self) -> List[PIFOEntry[T]]:
        """Return a snapshot of entries in dequeue order."""
        return list(self._sorted_entries())

    def ranks(self) -> List[Rank]:
        """Return the ranks in dequeue order."""
        return [entry.rank for entry in self._sorted_entries()]

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    def clear(self) -> None:
        """Drop all buffered elements."""
        self._clear_storage()

    # -- extended operations used by the switch substrate --------------------
    def remove(self, predicate: Callable[[T], bool]) -> List[T]:
        """Remove and return every element for which ``predicate`` is true.

        Used by buffer management (drop on threshold crossing) and by PFC to
        purge paused flows from a software PIFO.  This is *not* a hardware
        PIFO operation; the hardware model instead masks flows at dequeue
        time (Section 6.2).
        """
        kept: List[PIFOEntry[T]] = []
        removed: List[T] = []
        for entry in self._sorted_entries():
            if predicate(entry.element):
                removed.append(entry.element)
            else:
                kept.append(entry)
        self._rebuild(kept)
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, len={len(self)})"


class SortedListPIFO(PIFOBase[T]):
    """Reference push-in first-out queue: sorted list + head index.

    The seed implementation used ``list.pop(0)``, making every dequeue O(n);
    this version advances a head index instead and compacts the dead prefix
    geometrically, so pops are O(1) amortised while pushes keep the simple
    bisect-insert the reference semantics were validated with.
    """

    backend_name = "sorted"

    #: Compact the dead prefix once it exceeds this many slots *and* at
    #: least half the backing list (geometric, so amortised O(1) per pop).
    _COMPACT_MIN = 64

    def __init__(self, capacity: Optional[int] = None, name: str = "pifo") -> None:
        super().__init__(capacity=capacity, name=name)
        self._entries: List[PIFOEntry[T]] = []
        self._keys: List[Tuple[Rank, int]] = []
        self._front = 0

    def push(self, element: T, rank: Rank) -> None:
        """Fused push: capacity check + entry + insert without the base
        class's extra dispatch (this runs once per packet per hop)."""
        entries = self._entries
        if (self.capacity is not None
                and len(entries) - self._front >= self.capacity):
            self.drops += 1
            raise PIFOFullError(
                f"PIFO {self.name!r} is full (capacity={self.capacity})"
            )
        seq = self._seq
        self._seq = seq + 1
        entry = PIFOEntry(rank, seq, element)
        key = (rank, seq)
        keys = self._keys
        if not keys or key >= keys[-1]:
            # Monotone ranks (FIFO, arrival-sequence, virtual times under
            # light load) append; the common case costs no bisect or shift.
            keys.append(key)
            entries.append(entry)
        else:
            index = bisect.bisect_right(keys, key, lo=self._front)
            keys.insert(index, key)
            entries.insert(index, entry)
        self.pushes += 1

    def _insert(self, entry: PIFOEntry[T]) -> None:
        # bisect_right on (rank, seq): seq is strictly increasing so an equal
        # rank always lands after previously pushed equal ranks (FIFO ties).
        key = (entry.rank, entry.seq)
        keys = self._keys
        if not keys or key >= keys[-1]:
            keys.append(key)
            self._entries.append(entry)
            return
        index = bisect.bisect_right(keys, key, lo=self._front)
        keys.insert(index, key)
        self._entries.insert(index, entry)

    def _pop_head(self) -> PIFOEntry[T]:
        entry = self._entries[self._front]
        self._entries[self._front] = None  # type: ignore[call-overload]
        self._front += 1
        if self._front == len(self._entries):
            self._clear_storage()
        elif self._front >= self._COMPACT_MIN and self._front * 2 >= len(self._entries):
            del self._entries[: self._front]
            del self._keys[: self._front]
            self._front = 0
        return entry

    def _head(self) -> PIFOEntry[T]:
        return self._entries[self._front]

    def _sorted_entries(self) -> List[PIFOEntry[T]]:
        return self._entries[self._front :]

    def _clear_storage(self) -> None:
        self._entries.clear()
        self._keys.clear()
        self._front = 0

    def _rebuild(self, kept: List[PIFOEntry[T]]) -> None:
        self._entries = list(kept)
        self._keys = [entry.key() for entry in kept]
        self._front = 0

    def __len__(self) -> int:
        return len(self._entries) - self._front

    def enqueue_many(self, items: Iterable[Tuple[T, Rank]]) -> int:
        """Bulk push: append then one stable merge instead of n inserts."""
        batch: List[PIFOEntry[T]] = []
        for element, rank in items:
            if self.capacity is not None and len(self) + len(batch) >= self.capacity:
                self.drops += 1
                continue
            batch.append(PIFOEntry(rank, self._seq, element))
            self._seq += 1
        if not batch:
            return 0
        batch.sort()  # stable on (rank, seq): FIFO ties preserved
        merged = list(heapq.merge(self._sorted_entries(), batch))
        self._rebuild(merged)
        self.pushes += len(batch)
        return len(batch)


#: Backwards-compatible name: the reference PIFO used throughout the seed.
PIFO = SortedListPIFO


class CalendarPIFO(PIFOBase[T]):
    """Heap-backed PIFO with the same semantics as :class:`SortedListPIFO`.

    Push and pop are O(log n).  Used by the discrete-event simulator when a
    run buffers tens of thousands of packets; behavioural equivalence with
    the reference is enforced by a property-based test.
    """

    backend_name = "calendar"

    def __init__(self, capacity: Optional[int] = None, name: str = "calendar-pifo") -> None:
        super().__init__(capacity=capacity, name=name)
        # The heap holds (rank, seq, entry) tuples rather than bare entries:
        # tuple comparison runs in C and, because seq is unique, never falls
        # through to comparing the entry itself.  This matters — heap
        # sift-downs are the hot loop of large simulations.
        self._heap: List[Tuple[Rank, int, PIFOEntry[T]]] = []

    def _insert(self, entry: PIFOEntry[T]) -> None:
        heapq.heappush(self._heap, (entry.rank, entry.seq, entry))

    def _pop_head(self) -> PIFOEntry[T]:
        return heapq.heappop(self._heap)[2]

    def _head(self) -> PIFOEntry[T]:
        return self._heap[0][2]

    def _sorted_entries(self) -> List[PIFOEntry[T]]:
        return [item[2] for item in sorted(self._heap)]

    def _clear_storage(self) -> None:
        self._heap.clear()

    def _rebuild(self, kept: List[PIFOEntry[T]]) -> None:
        # ``kept`` arrives sorted, which is already a valid heap.
        self._heap = [(entry.rank, entry.seq, entry) for entry in kept]

    def __len__(self) -> int:
        return len(self._heap)


class BucketedPIFO(PIFOBase[T]):
    """Bucket-queue PIFO for integer-rank workloads.

    The hardware stores ranks in fixed-width integer fields (Section 5.1);
    many algorithms (strict priority, FIFO sequence numbers, per-hop
    deadlines in slots) therefore only ever emit integral ranks.  For those
    workloads a dict of per-rank FIFO buckets plus a heap of occupied ranks
    gives O(1) amortised push *and* pop: the heap only sees one entry per
    distinct rank, not one per element.

    Pushing a non-integral rank raises ``ValueError`` — use
    :class:`SortedListPIFO` or :class:`CalendarPIFO` for virtual-time
    algorithms that compute fractional ranks.
    """

    backend_name = "bucketed"
    requires_integer_ranks = True

    def __init__(self, capacity: Optional[int] = None, name: str = "bucketed-pifo") -> None:
        super().__init__(capacity=capacity, name=name)
        self._buckets: Dict[int, Deque[PIFOEntry[T]]] = {}
        self._rank_heap: List[int] = []
        self._size = 0

    def _bucket_key(self, rank: Rank) -> int:
        key = int(rank)
        if key != rank:
            raise ValueError(
                f"BucketedPIFO {self.name!r} requires integer ranks, got {rank!r}"
            )
        return key

    def push(self, element: T, rank: Rank) -> None:
        """Fused push: capacity check + bucket append without the base
        class's extra dispatch (mirrors :meth:`SortedListPIFO.push`; this
        backend previously paid the generic ``push -> _insert`` double
        dispatch on every packet, which is why it lost to the sorted list
        on the fabric benchmarks despite its O(1) buckets)."""
        if self.capacity is not None and self._size >= self.capacity:
            self.drops += 1
            raise PIFOFullError(
                f"PIFO {self.name!r} is full (capacity={self.capacity})"
            )
        key = self._bucket_key(rank)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = deque()
            heapq.heappush(self._rank_heap, key)
        seq = self._seq
        self._seq = seq + 1
        bucket.append(PIFOEntry(rank, seq, element))
        self._size += 1
        self.pushes += 1

    def _insert(self, entry: PIFOEntry[T]) -> None:
        key = self._bucket_key(entry.rank)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = deque()
            heapq.heappush(self._rank_heap, key)
        bucket.append(entry)
        self._size += 1

    def _min_occupied_rank(self) -> int:
        # Lazily discard ranks whose bucket has emptied (or duplicate heap
        # entries left behind when a rank was re-occupied).
        heap = self._rank_heap
        while heap:
            key = heap[0]
            bucket = self._buckets.get(key)
            if bucket:
                return key
            heapq.heappop(heap)
            self._buckets.pop(key, None)
        raise PIFOEmptyError(f"pop from empty PIFO {self.name!r}")

    def _pop_head(self) -> PIFOEntry[T]:
        key = self._min_occupied_rank()
        bucket = self._buckets[key]
        entry = bucket.popleft()
        self._size -= 1
        if not bucket:
            del self._buckets[key]
        return entry

    def _head(self) -> PIFOEntry[T]:
        return self._buckets[self._min_occupied_rank()][0]

    def _sorted_entries(self) -> List[PIFOEntry[T]]:
        return [
            entry
            for key in sorted(self._buckets)
            for entry in self._buckets[key]
        ]

    def _clear_storage(self) -> None:
        self._buckets.clear()
        self._rank_heap.clear()
        self._size = 0

    def _rebuild(self, kept: List[PIFOEntry[T]]) -> None:
        self._clear_storage()
        for entry in kept:
            self._insert(entry)

    def __len__(self) -> int:
        return self._size


class QuantizedBucketedPIFO(BucketedPIFO[T]):
    """Bucket-queue PIFO for *real-valued* ranks via rank quantisation.

    The hardware's rank fields are fixed-width integers, so a virtual-time
    or wall-clock rank must be quantised to a slot number before it can be
    stored (Section 5.1's 16/32-bit rank fields are exactly such slots).
    This backend makes that explicit in software: ranks are bucketed by
    ``floor(rank / quantum)``, elements within one quantum dequeue FIFO,
    and the entry keeps its exact rank (``peek_rank`` and shaping release
    times are unquantised).

    With the default microsecond quantum, time-ranked algorithms (LSTF,
    FIFO-by-arrival, virtual times) run on the O(1) bucket structure at a
    precision far below any simulated transmission time, which is what
    lets parameter sweeps compare all three storage structures on one
    workload.
    """

    backend_name = "quantized"
    requires_integer_ranks = False

    #: Default rank quantum: one microsecond of simulated time.
    DEFAULT_QUANTUM = 1e-6

    def __init__(
        self,
        capacity: Optional[int] = None,
        name: str = "quantized-pifo",
        quantum: float = DEFAULT_QUANTUM,
    ) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        self.quantum = float(quantum)
        super().__init__(capacity=capacity, name=name)

    def _bucket_key(self, rank: Rank) -> int:
        return math.floor(rank / self.quantum)
