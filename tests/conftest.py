"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import Packet, ProgrammableScheduler
from repro.sim import OutputPort, PacketSource, Simulator
from repro.traffic import FlowSpec, cbr_arrivals, merge_arrivals


@pytest.fixture
def rng():
    """Deterministic RNG for tests that need randomness."""
    return random.Random(12345)


def make_packet(flow="f", length=1000, **fields):
    """Shorthand packet constructor used across the suite."""
    return Packet(flow=flow, length=length, fields=dict(fields))


def run_backlogged_experiment(
    tree,
    flow_rates_bps,
    link_rate_bps,
    duration_s,
    packet_size=1500,
    warmup_s=0.0,
):
    """Drive a scheduling tree with CBR overload and return (port, sink).

    Every flow offers ``flow_rates_bps[flow]`` of CBR traffic into a single
    output port running at ``link_rate_bps``; the returned sink holds all
    departures, which callers summarise into shares/rates.
    """
    sim = Simulator()
    scheduler = ProgrammableScheduler(tree)
    port = OutputPort(sim, scheduler, rate_bps=link_rate_bps, name="port0")
    streams = []
    for flow, rate in flow_rates_bps.items():
        spec = FlowSpec(name=flow, rate_bps=rate, packet_size=packet_size)
        streams.append(cbr_arrivals(spec, duration=duration_s))
    PacketSource(sim, port, merge_arrivals(*streams))
    sim.run(until=duration_s)
    return port, port.sink


# Re-export helpers for plain-function import in test modules.
__all__ = ["make_packet", "run_backlogged_experiment"]
