"""Event-queue backend microbenchmark: binary heap vs timing wheel.

Measures both :class:`~repro.sim.events.EventQueue` (heapq) and
:class:`~repro.sim.events.TimingWheelQueue` on *sim-shaped* schedules —
the operation mixes the fabric actually generates, not adversarial
queue-theory patterns:

* ``churn`` — hold-pattern at a fixed depth: every pop schedules the next
  transmit completion a few tens of microseconds ahead.  This is the
  steady-state of a saturated fabric (one in-flight completion per busy
  port).
* ``burst_same_tick`` — waves of same-instant arrivals (a source batch
  landing at one timestamp) drained in seq order.
* ``cancel_heavy`` — half the scheduled events are cancelled before they
  fire (shaping wakeups superseded by cut-through transmits), exercising
  tombstone accounting and compaction.

Plus the number that actually matters: end-to-end ``chain3`` fabric
throughput under each backend via :func:`repro.perf.run_workload`, i.e.
exactly what ``repro perf --event-queue`` reports.  The artifact records
the honest ratio — the wheel's O(1) inserts do not currently beat
heapq's C implementation end to end; it exists as the scaling hedge and
is gated so neither backend rots.  Writes ``BENCH_event_queue.json`` for
the perf-regression CI gate.  Set ``BENCH_QUICK=1`` to shrink.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest
from conftest import report

from repro.perf import run_workload
from repro.sim.events import EventQueue, TimingWheelQueue

BENCH_QUICK = bool(os.environ.get("BENCH_QUICK"))
OPS = 20_000 if BENCH_QUICK else 200_000
END_TO_END_PACKETS = 2_000 if BENCH_QUICK else 10_000
BENCH_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_event_queue.json"

BACKENDS = {
    "heap": EventQueue,
    "wheel": TimingWheelQueue,
}


def _noop() -> None:
    pass


def churn(queue_cls, ops: int, depth: int = 32, step: float = 5e-5) -> float:
    """Steady-state pop-one-push-one at a fixed depth; returns ops/s."""
    queue = queue_cls()
    horizon = 0.0
    for i in range(depth):
        queue.push(i * step, _noop)
        horizon = i * step
    start = time.perf_counter()
    for _ in range(ops):
        popped_time, _seq, _cb = queue.pop()
        horizon += step
        queue.push(horizon, _noop)
    elapsed = time.perf_counter() - start
    while queue:
        queue.pop()
    return ops / elapsed


def burst_same_tick(queue_cls, ops: int, wave: int = 64) -> float:
    """Same-instant waves pushed then drained in seq order; returns ops/s."""
    queue = queue_cls()
    waves = max(1, ops // wave)
    start = time.perf_counter()
    for w in range(waves):
        at = w * 1e-4
        for _ in range(wave):
            queue.push(at, _noop)
        for _ in range(wave):
            queue.pop()
    elapsed = time.perf_counter() - start
    return (waves * wave) / elapsed


def cancel_heavy(queue_cls, ops: int, step: float = 5e-5) -> float:
    """Every other scheduled event is cancelled before firing; ops/s."""
    queue = queue_cls()
    pairs = max(1, ops // 2)
    start = time.perf_counter()
    horizon = 0.0
    for _ in range(pairs):
        horizon += step
        doomed = queue.push(horizon + step, _noop)
        queue.push(horizon, _noop)
        queue.cancel(doomed)
        queue.pop()
    while queue:
        queue.pop()
    elapsed = time.perf_counter() - start
    return (pairs * 2) / elapsed


PATTERNS = {
    "churn_depth32": churn,
    "burst_same_tick": burst_same_tick,
    "cancel_heavy": cancel_heavy,
}


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_event_queue_churn(benchmark, backend):
    """Both backends sustain the steady-state fabric pattern."""
    rate = benchmark.pedantic(
        lambda: churn(BACKENDS[backend], OPS // 10), rounds=1, iterations=1)
    assert rate > 10_000


def test_event_queue_summary():
    """Consolidated ops/s + end-to-end table; writes the CI artifact."""
    rows = []
    artifact = {"ops": OPS, "patterns": {}, "end_to_end": {}}
    for pattern, fn in PATTERNS.items():
        entry = {}
        for backend, queue_cls in sorted(BACKENDS.items()):
            rate = fn(queue_cls, OPS)
            entry[backend] = rate
            rows.append({"pattern": pattern, "backend": backend,
                         "ops_per_second": rate})
        entry["wheel_vs_heap"] = entry["wheel"] / entry["heap"]
        artifact["patterns"][pattern] = entry

    chain = {"packets": END_TO_END_PACKETS}
    for backend in sorted(BACKENDS):
        result = run_workload("chain3", packets=END_TO_END_PACKETS,
                              event_queue=backend)
        assert result.delivered >= END_TO_END_PACKETS * 0.99
        assert result.event_queue == backend
        chain[backend] = result.packets_per_second
        rows.append({"pattern": "chain3 end-to-end", "backend": backend,
                     "ops_per_second": result.packets_per_second})
    chain["wheel_vs_heap"] = chain["wheel"] / chain["heap"]
    artifact["end_to_end"]["chain3"] = chain

    report("Event queue backends (ops/second)", rows)
    BENCH_ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    # Both backends must stay usable: the wheel is the scaling hedge, the
    # heap is the shipping default.  Microbenchmark floors are deliberately
    # loose (absolute interpreter speed varies across runners); the CI
    # gate holds the committed baseline ratios.
    assert all(row["ops_per_second"] > 10_000 for row in rows)
