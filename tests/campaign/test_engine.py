"""The warm-worker engine: determinism, reuse, sizing, telemetry.

The engine's contract mirrors the classic pool path it replaced — a
``workers=N`` store is byte-identical to serial modulo timing fields —
plus the properties that make it *fast*: the pool persists across
campaign executions (cold start paid once), leases adapt to the observed
per-run wall clock, and records arrive pre-encoded so the parent never
re-serialises.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    Campaign,
    CampaignRunner,
    ResultStore,
    WarmupSpec,
    WarmWorkerEngine,
    strip_timing,
    warm_kernel_cache,
)
from repro.campaign.engine import _execute_lease, _engine_worker_init


def small_campaign() -> Campaign:
    return Campaign(
        name="engine_probe",
        title="small sweep for engine tests",
        scenarios=["fig6_chain"],
        pifo_backends=["sorted", "quantized"],
        lang_backends=[None],
        load_scales=[1.0],
        replicates=1,
    )


def canonical(records):
    return [json.dumps(strip_timing(r), sort_keys=True) for r in records]


@pytest.fixture(scope="module")
def serial_records(tmp_path_factory):
    store = ResultStore(tmp_path_factory.mktemp("serial") / "r.jsonl")
    CampaignRunner(small_campaign(), store, workers=1, quick=True).run()
    return store.load()


class TestEngineDeterminism:
    def test_engine_store_identical_to_serial(self, tmp_path, serial_records):
        store = ResultStore(tmp_path / "engine.jsonl")
        with WarmWorkerEngine(
                workers=2,
                warmup=WarmupSpec.for_campaign(small_campaign())) as engine:
            report = CampaignRunner(small_campaign(), store, workers=2,
                                    quick=True, engine=engine).run()
        assert report.executed == len(serial_records)
        assert not report.degraded
        assert canonical(store.load()) == canonical(serial_records)

    def test_commit_line_matches_record(self, tmp_path):
        """The pre-encoded line the engine ships IS the committed record."""
        campaign = small_campaign()
        specs = campaign.expand(quick=True)
        seen = []
        with WarmWorkerEngine(workers=2) as engine:
            engine.execute(specs, lambda record, line: seen.append((record, line)))
        assert len(seen) == len(specs)
        for record, line in seen:
            assert json.loads(line) == record

    def test_commit_order_is_run_table_order(self, tmp_path):
        campaign = small_campaign()
        specs = campaign.expand(quick=True)
        committed = []
        with WarmWorkerEngine(workers=4) as engine:
            engine.execute(specs, lambda r, line: committed.append(r["run_id"]))
        assert committed == [spec.run_id for spec in specs]


class TestEnginePersistence:
    def test_pool_survives_across_campaigns(self, tmp_path, serial_records):
        engine = WarmWorkerEngine(
            workers=2, warmup=WarmupSpec.for_campaign(small_campaign()))
        try:
            engine.warm()
            cold = engine.stats.cold_start_s
            assert cold > 0
            for name in ("first", "second"):
                store = ResultStore(tmp_path / f"{name}.jsonl")
                CampaignRunner(small_campaign(), store, workers=2,
                               quick=True, engine=engine).run()
                assert canonical(store.load()) == canonical(serial_records)
            # Reuse pays no second cold start and keeps its lease telemetry.
            assert engine.stats.cold_start_s == cold
            assert engine.stats.runs == 2 * len(serial_records)
            assert engine.stats.mean_run_s is not None
        finally:
            engine.close()

    def test_warm_is_idempotent(self):
        with WarmWorkerEngine(workers=1) as engine:
            first = engine.warm()
            assert engine.warm() == first

    def test_kernel_totals_surface_through_runner(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        runner = CampaignRunner(small_campaign(), store, workers=2,
                                quick=True)
        runner.run()
        totals = runner.kernel_cache_totals
        assert totals is not None
        assert totals["workers"] >= 1
        # The initializer pre-warms every shape the campaign needs, so
        # workers report cache installs even before their first lease.
        assert totals["installs"] > 0

    def test_workers_capped_at_cpu_count(self):
        import os

        with WarmWorkerEngine(workers=64) as engine:
            assert engine.workers == max(1, min(64, os.cpu_count() or 64))

    def test_explicit_engine_used_even_at_workers_1(self, tmp_path,
                                                    serial_records):
        """workers=1 + a caller's engine runs on the engine, not in-process.

        The warm worker beats serial even without parallelism (GC stays
        off during leases, appends overlap with execution), so a provided
        engine is never silently bypassed.
        """
        store = ResultStore(tmp_path / "r.jsonl")
        with WarmWorkerEngine(
                workers=1,
                warmup=WarmupSpec.for_campaign(small_campaign())) as engine:
            runner = CampaignRunner(small_campaign(), store, workers=1,
                                    quick=True, engine=engine)
            runner.run()
            assert engine.stats.runs == len(serial_records)
        assert runner.kernel_cache_totals["workers"] >= 1
        assert canonical(store.load()) == canonical(serial_records)

    def test_serial_runner_reports_local_kernel_totals(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        runner = CampaignRunner(small_campaign(), store, workers=1,
                                quick=True)
        runner.run()
        assert runner.kernel_cache_totals is not None
        assert runner.kernel_cache_totals["workers"] == 0


class TestLeaseSizing:
    def make_engine(self, workers=4):
        engine = WarmWorkerEngine(workers=workers)
        # Pin the pool size: the constructor caps it at os.cpu_count(),
        # but the sizing math below is specified for exactly N workers.
        engine.workers = workers
        return engine

    def test_first_wave_is_small(self):
        engine = self.make_engine()
        assert engine._lease_size(1000) <= 4

    def test_adapts_to_fast_runs(self):
        engine = self.make_engine()
        engine.stats.mean_run_s = 0.001  # 1 ms runs -> big leases
        assert engine._lease_size(10_000) == engine.max_lease_runs

    def test_adapts_to_slow_runs(self):
        engine = self.make_engine()
        engine.stats.mean_run_s = 10.0  # slow runs -> one per lease
        assert engine._lease_size(10_000) == 1

    def test_tail_fair_share(self):
        engine = self.make_engine(workers=4)
        engine.stats.mean_run_s = 0.001
        # 8 runs left on 4 workers: leases cap at 2 so nobody idles.
        assert engine._lease_size(8) == 2

    def test_never_zero(self):
        engine = self.make_engine()
        engine.stats.mean_run_s = 100.0
        assert engine._lease_size(1) == 1


class TestWarmup:
    def test_for_campaign_round_trip(self):
        warmup = WarmupSpec.for_campaign(small_campaign())
        assert warmup.scenarios == ("fig6_chain",)
        assert WarmupSpec.from_dict(warmup.to_dict()) == warmup

    def test_warm_kernel_cache_compiles_shapes(self):
        from repro.lang.treekernel import clear_kernel_cache

        clear_kernel_cache()
        info = warm_kernel_cache(WarmupSpec.for_campaign(small_campaign()))
        assert info["size"] > 0

    def test_execute_lease_returns_encoded_rows(self):
        import gc

        thresholds = gc.get_threshold()
        try:
            _engine_worker_init(None, None)
            specs = small_campaign().expand(quick=True)[:1]
            start, rows, elapsed, pid, info = _execute_lease(
                0, [spec.to_dict() for spec in specs])
        finally:
            # The initializer tunes process-global GC state for a worker
            # lifetime; running it in-process must not leak that into the
            # rest of the test session.
            gc.set_threshold(*thresholds)
            gc.unfreeze()
        assert start == 0
        assert len(rows) == 1
        run_id, status, attempts, line = rows[0]
        assert status == "ok"
        record = json.loads(line)
        assert record["run_id"] == run_id
        assert elapsed > 0
        assert info["size"] >= 0
