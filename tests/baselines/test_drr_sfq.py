"""Tests for the DRR and SFQ baseline schedulers."""

from __future__ import annotations

import pytest

from repro.baselines import DeficitRoundRobin, StochasticFairnessQueueing
from repro.core import Packet


class TestDRR:
    def test_empty_dequeue(self):
        assert DeficitRoundRobin().dequeue() is None

    def test_single_flow_fifo(self):
        drr = DeficitRoundRobin()
        packets = [Packet(flow="A", length=500) for _ in range(4)]
        for packet in packets:
            drr.enqueue(packet)
        assert [drr.dequeue() for _ in range(4)] == packets

    def test_equal_weights_equal_byte_shares(self):
        drr = DeficitRoundRobin(quantum_bytes=1500)
        for _ in range(30):
            drr.enqueue(Packet(flow="A", length=500))
        for _ in range(10):
            drr.enqueue(Packet(flow="B", length=1500))
        out = [drr.dequeue() for _ in range(20)]
        bytes_a = sum(p.length for p in out if p.flow == "A")
        bytes_b = sum(p.length for p in out if p.flow == "B")
        assert abs(bytes_a - bytes_b) <= 1500

    def test_weighted_shares(self):
        drr = DeficitRoundRobin(weights={"A": 1.0, "B": 3.0}, quantum_bytes=1500)
        for _ in range(40):
            drr.enqueue(Packet(flow="A", length=1500))
            drr.enqueue(Packet(flow="B", length=1500))
        out = [drr.dequeue() for _ in range(24)]
        count_b = sum(1 for p in out if p.flow == "B")
        assert count_b == pytest.approx(18, abs=2)

    def test_capacity_drops(self):
        drr = DeficitRoundRobin(capacity_packets=2)
        assert drr.enqueue(Packet(flow="A", length=100))
        assert drr.enqueue(Packet(flow="A", length=100))
        assert not drr.enqueue(Packet(flow="A", length=100))
        assert drr.drops == 1

    def test_flow_going_idle_loses_deficit(self):
        drr = DeficitRoundRobin(quantum_bytes=1500)
        drr.enqueue(Packet(flow="A", length=100))
        assert drr.dequeue().flow == "A"
        # A's leftover deficit must not let it dominate when it returns.
        drr.enqueue(Packet(flow="A", length=1500))
        drr.enqueue(Packet(flow="B", length=1500))
        out = [drr.dequeue(), drr.dequeue()]
        assert {p.flow for p in out} == {"A", "B"}

    def test_len_tracks_buffered(self):
        drr = DeficitRoundRobin()
        drr.enqueue(Packet(flow="A", length=100))
        drr.enqueue(Packet(flow="B", length=100))
        assert len(drr) == 2
        drr.dequeue()
        assert len(drr) == 1

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            DeficitRoundRobin(quantum_bytes=0)


class TestSFQ:
    def test_round_robin_across_buckets(self):
        sfq = StochasticFairnessQueueing(bucket_count=16)
        for _ in range(3):
            sfq.enqueue(Packet(flow="A", length=100))
            sfq.enqueue(Packet(flow="B", length=100))
        out = [sfq.dequeue() for _ in range(6)]
        # With no collisions, flows alternate.
        flows = [p.flow for p in out]
        assert flows.count("A") == flows.count("B") == 3
        assert flows[0] != flows[1]

    def test_bucket_hash_deterministic(self):
        sfq = StochasticFairnessQueueing(bucket_count=8, hash_seed=3)
        assert sfq.bucket_of("flow-x") == sfq.bucket_of("flow-x")

    def test_collisions_share_a_bucket(self):
        sfq = StochasticFairnessQueueing(bucket_count=1)
        sfq.enqueue(Packet(flow="A", length=100))
        sfq.enqueue(Packet(flow="B", length=100))
        # Same bucket -> FIFO between the two flows.
        assert sfq.dequeue().flow == "A"
        assert sfq.dequeue().flow == "B"

    def test_capacity(self):
        sfq = StochasticFairnessQueueing(capacity_packets=1)
        assert sfq.enqueue(Packet(flow="A", length=100))
        assert not sfq.enqueue(Packet(flow="B", length=100))
        assert sfq.drops == 1

    def test_empty(self):
        sfq = StochasticFairnessQueueing()
        assert sfq.dequeue() is None
        assert sfq.is_empty
