"""Datacenter scenario: hierarchical bandwidth sharing between tenants.

A top-of-rack switch port is shared by three tenants with different
contracts; inside each tenant, traffic classes get their own weights.  The
whole policy is one HPFQ tree programmed with STFQ transactions — no new
hardware, just a different tree (the point of the paper).

The script simulates an overloaded 10 Gbit/s port and reports the measured
shares against the contract.  Run with::

    python examples/datacenter_hierarchical_sharing.py
"""

from __future__ import annotations

from repro.algorithms import HierarchySpec, build_hierarchy
from repro.core import ProgrammableScheduler
from repro.metrics import expected_weighted_shares, max_share_error
from repro.sim import OutputPort, PacketSource, Simulator
from repro.traffic import FlowSpec, cbr_arrivals, merge_arrivals

PORT_RATE = 10e9
DURATION = 0.01

#: Tenant contracts: tenant-A paid for half the port, B and C for a quarter
#: each.  Within each tenant, latency-sensitive RPC traffic is weighted above
#: background storage traffic.
POLICY = HierarchySpec(
    name="Port",
    children=(
        HierarchySpec(
            name="tenantA", weight=2.0,
            flows={"A.rpc": 3.0, "A.storage": 1.0},
        ),
        HierarchySpec(
            name="tenantB", weight=1.0,
            flows={"B.rpc": 3.0, "B.storage": 1.0},
        ),
        HierarchySpec(
            name="tenantC", weight=1.0,
            flows={"C.analytics": 1.0, "C.storage": 1.0},
        ),
    ),
)


def expected_flow_shares() -> dict:
    """Contractual share of every flow when everything is backlogged."""
    tenant_shares = expected_weighted_shares(
        {child.name: child.weight for child in POLICY.children}
    )
    shares = {}
    for child in POLICY.children:
        flow_shares = expected_weighted_shares(dict(child.flows))
        for flow, share in flow_shares.items():
            shares[flow] = tenant_shares[child.name] * share
    return shares


def main() -> None:
    tree = build_hierarchy(POLICY)
    print(tree.describe())
    print()

    sim = Simulator()
    port = OutputPort(sim, ProgrammableScheduler(tree), rate_bps=PORT_RATE,
                      name="tor-port")
    streams = []
    for child in POLICY.children:
        for flow in child.flows:
            spec = FlowSpec(name=flow, rate_bps=PORT_RATE, packet_size=1500)
            streams.append(cbr_arrivals(spec, duration=DURATION))
    PacketSource(sim, port, merge_arrivals(*streams))
    sim.run(until=DURATION)

    measured = port.sink.share_by_flow(start=DURATION * 0.2, end=DURATION)
    expected = expected_flow_shares()
    print(f"{'flow':<14}{'contract':>10}{'measured':>10}")
    for flow in sorted(expected):
        print(f"{flow:<14}{expected[flow]:>10.3f}{measured.get(flow, 0.0):>10.3f}")
    error = max_share_error(measured, expected)
    print(f"\nlargest share error: {error:.3f}")
    print(f"port utilisation: {port.utilization:.2%}")


if __name__ == "__main__":
    main()
