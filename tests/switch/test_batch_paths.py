"""Batch ingress paths: switch.receive_many and the buffer batch ops.

Includes the multi-hop regression: packets that already carry an upstream
hop's ``enqueue_time`` stamp must still be identified as scheduler rejects
(and their cells released) when a downstream scheduler is full.
"""

from __future__ import annotations

import pytest

from repro.algorithms import FIFOTransaction
from repro.core import Packet, ProgrammableScheduler, single_node_tree
from repro.exceptions import BufferError_
from repro.sim import Simulator
from repro.switch import SharedBuffer, SharedMemorySwitch


def _switch(sim, capacity=None, **kwargs):
    return SharedMemorySwitch(
        sim,
        lambda name: ProgrammableScheduler(
            single_node_tree(FIFOTransaction(), pifo_capacity=capacity)
        ),
        port_count=1,
        port_rate_bps=1e9,
        **kwargs,
    )


class TestReceiveMany:
    def test_burst_accepted_and_transmitted(self):
        sim = Simulator()
        switch = _switch(sim)
        burst = [Packet(flow="A", length=1000) for _ in range(50)]
        assert switch.receive_many(burst, "port0") == 50
        sim.run(until=1.0)
        assert switch.total_transmitted() == 50
        assert switch.buffer.used_cells == 0

    def test_scheduler_full_releases_cells(self):
        sim = Simulator()
        switch = _switch(sim, capacity=2)
        burst = [Packet(flow="A", length=1000) for _ in range(5)]
        accepted = switch.receive_many(burst, "port0")
        # capacity 2, but the port starts transmitting the head immediately,
        # freeing one slot mid-burst; accept count must match cell usage.
        assert accepted == switch.stats.admitted
        assert switch.stats.dropped_scheduler == 5 - accepted
        expected_cells = sum(
            switch.buffer.cells_for(p) for p in burst if p.enqueue_time is not None
        )
        assert switch.buffer.used_cells == expected_cells

    def test_multihop_rejects_do_not_leak_cells(self):
        """Regression: packets reused from an upstream hop carry a stale
        enqueue_time; downstream rejects must still release their cells."""
        sim = Simulator()
        switch = _switch(sim, capacity=2)
        burst = [Packet(flow="A", length=1000) for _ in range(5)]
        for packet in burst:
            packet.enqueue_time = 0.123  # stamped by a previous hop
        accepted = switch.receive_many(burst, "port0")
        assert accepted < 5
        assert switch.stats.dropped_scheduler == 5 - accepted
        buffered_cells = sum(
            switch.buffer.cells_for(p) for p in burst if p.enqueue_time is not None
        )
        assert switch.buffer.used_cells == buffered_cells
        sim.run(until=1.0)
        assert switch.buffer.used_cells == 0

    def test_unknown_port_raises(self):
        switch = _switch(Simulator())
        with pytest.raises(KeyError):
            switch.receive_many([Packet(flow="A", length=100)], "port9")


class TestBufferBatchOps:
    def test_allocate_many_accounts_like_per_packet(self):
        batched = SharedBuffer(capacity_bytes=10_000, cell_bytes=200)
        looped = SharedBuffer(capacity_bytes=10_000, cell_bytes=200)
        packets = [Packet(flow=f, length=500) for f in "AABBC"]
        cells = batched.allocate_many(packets, port="p0")
        for packet in packets:
            looped.allocate(packet, port="p0")
        assert cells == looped.used_cells == batched.used_cells
        assert batched.cells_by_flow == looped.cells_by_flow
        assert batched.cells_by_port == looped.cells_by_port

    def test_allocate_many_is_all_or_nothing(self):
        buffer = SharedBuffer(capacity_bytes=1000, cell_bytes=200)  # 5 cells
        packets = [Packet(flow="A", length=400) for _ in range(3)]  # 6 cells
        with pytest.raises(BufferError_):
            buffer.allocate_many(packets)
        assert buffer.used_cells == 0
        assert buffer.cells_by_flow == {}

    def test_release_many_roundtrip(self):
        buffer = SharedBuffer()
        packets = [Packet(flow="A", length=500) for _ in range(4)]
        buffer.allocate_many(packets, port="p0")
        buffer.release_many(packets, port="p0")
        assert buffer.used_cells == 0
        assert buffer.used_bytes == 0
