"""Unified observability layer: metrics, traces, resources, progress.

Four small subsystems with one shared principle — observability must be
free when off and must never change simulation results when on:

* :mod:`repro.obs.metrics` — process-wide metrics registry.  Components
  capture their instruments (or ``None``) at construction; the hot loop
  pays a single local ``is not None`` check when disabled.
* :mod:`repro.obs.trace` — per-hop packet span collection and the
  chrome://tracing converter behind ``repro trace``.
* :mod:`repro.obs.resources` — per-run RSS/CPU/event-rate capture from
  stdlib ``getrusage`` (no psutil), written into every campaign record.
* :mod:`repro.obs.progress` — atomic sidecar progress files behind
  ``repro campaign status [--watch]``.
"""

from repro.obs.metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS,
    active,
    collecting,
    disable,
    enable,
    is_enabled,
    merge_counts,
    register_global_source,
    global_sources_snapshot,
)
from repro.obs.progress import (  # noqa: F401
    ProgressWriter,
    progress_path_for,
    read_progress,
)
from repro.obs.resources import (  # noqa: F401
    RESOURCE_FIELDS,
    ResourceProbe,
    rss_peak_bytes,
)
from repro.obs.trace import (  # noqa: F401
    TraceCollector,
    read_spans,
    spans_from_chrome,
    spans_to_chrome,
    write_spans,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS", "active", "collecting", "disable", "enable",
    "is_enabled", "merge_counts", "register_global_source",
    "global_sources_snapshot",
    "ProgressWriter", "progress_path_for", "read_progress",
    "RESOURCE_FIELDS", "ResourceProbe", "rss_peak_bytes",
    "TraceCollector", "read_spans", "spans_from_chrome", "spans_to_chrome",
    "write_spans",
]
