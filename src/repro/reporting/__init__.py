"""Experiment runners, table renderers and report generation.

This package turns the library into the artefact a reviewer would actually
run: every quantitative table/figure of the paper has a *runner* that
executes the experiment on the simulation substrate (or the analytic
hardware model) and returns structured rows, and the renderers turn those
rows into the aligned text tables used by the CLI, EXPERIMENTS.md and the
benchmark harness.

Three layers:

* :mod:`repro.reporting.tables` — plain text table/key-value rendering.
* :mod:`repro.reporting.experiments` — one runner per experiment, returning
  :class:`~repro.reporting.experiments.ExperimentResult`.
* :mod:`repro.reporting.report` — run a set of experiments and produce the
  full paper-vs-measured report.

The command line front end lives in :mod:`repro.cli` (``python -m repro``).
"""

from .campaign import (
    DEFAULT_GROUP_BY,
    GROUPABLE_KEYS,
    campaign_report_text,
    summarize_records,
)
from .experiments import (
    EXPERIMENTS,
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)
from .report import generate_report
from .tables import format_value, render_comparison, render_kv, render_table

__all__ = [
    "summarize_records",
    "campaign_report_text",
    "GROUPABLE_KEYS",
    "DEFAULT_GROUP_BY",
    "render_table",
    "render_kv",
    "render_comparison",
    "format_value",
    "ExperimentResult",
    "EXPERIMENTS",
    "list_experiments",
    "get_experiment",
    "run_experiment",
    "generate_report",
]
