"""Smoke tests: every example script and the CLI run end to end.

Examples are documentation that executes; if they crash, the README's
promises are broken.  Each script is run in a subprocess with the repository
sources on ``PYTHONPATH`` and must exit 0 and print the landmarks its
docstring promises.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"

#: Every example script and one string its output must contain.
EXAMPLE_LANDMARKS = {
    "quickstart.py": "departure order",
    "datacenter_hierarchical_sharing.py": None,
    "tenant_rate_limiting.py": None,
    "custom_srpt_scheduler.py": None,
    "hardware_feasibility_report.py": None,
    "transaction_language_tour.py": "deadline-aware-wfq",
    "sp_pifo_approximation.py": "exact PIFO",
    "fabric_scenarios.py": "end-to-end",
}


def _run(args, timeout=180):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        args,
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExampleScripts:
    def test_every_example_is_covered_by_this_test(self):
        on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert on_disk == set(EXAMPLE_LANDMARKS), (
            "examples/ and EXAMPLE_LANDMARKS disagree; update the test when "
            "adding or removing an example"
        )

    @pytest.mark.parametrize("script", sorted(EXAMPLE_LANDMARKS))
    def test_example_runs_cleanly(self, script):
        result = _run([sys.executable, str(EXAMPLES_DIR / script)])
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip(), f"{script} printed nothing"
        landmark = EXAMPLE_LANDMARKS[script]
        if landmark is not None:
            assert landmark in result.stdout, (
                f"{script} output is missing {landmark!r}"
            )


class TestCLISubprocess:
    def test_module_entry_point_list(self):
        result = _run([sys.executable, "-m", "repro", "list"])
        assert result.returncode == 0, result.stderr
        assert "table1" in result.stdout

    def test_module_entry_point_quick_report(self):
        result = _run(
            [sys.executable, "-m", "repro", "report", "table1", "sec5.4", "--quick"]
        )
        assert result.returncode == 0, result.stderr
        assert "[table1]" in result.stdout
        assert "overhead_percent" in result.stdout

    def test_module_entry_point_show_program(self):
        result = _run([sys.executable, "-m", "repro", "show", "min_rate"])
        assert result.returncode == 0, result.stderr
        assert "p.over_min" in result.stdout
