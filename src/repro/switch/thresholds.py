"""Buffer admission policies: static and dynamic thresholds.

Section 6.1 notes that buffer management is orthogonal to scheduling and is
implemented with occupancy counters checked against *static* or *dynamic*
thresholds before a packet is enqueued into the scheduler.  Two policies are
provided:

* :class:`StaticThresholdPolicy` — a fixed per-flow (and optionally
  per-port) cell limit.
* :class:`DynamicThresholdPolicy` — the Choudhury–Hahne dynamic threshold:
  a flow may hold at most ``alpha x (free cells)``, so limits shrink as the
  buffer fills and grow when it is idle.
"""

from __future__ import annotations

from typing import Optional

from ..core.packet import Packet
from .buffer import SharedBuffer


class AdmissionPolicy:
    """Interface: decide whether a packet may enter the buffer."""

    def admit(self, buffer: SharedBuffer, packet: Packet, port: str = "") -> bool:
        raise NotImplementedError


class AlwaysAdmit(AdmissionPolicy):
    """Admit whenever the buffer physically has room."""

    def admit(self, buffer: SharedBuffer, packet: Packet, port: str = "") -> bool:
        return buffer.can_admit(packet)


class StaticThresholdPolicy(AdmissionPolicy):
    """Fixed per-flow and per-port cell limits.

    Parameters
    ----------
    flow_limit_cells:
        Maximum cells any single flow may occupy (``None`` disables).
    port_limit_cells:
        Maximum cells any single output port may occupy (``None`` disables).
    """

    def __init__(
        self,
        flow_limit_cells: Optional[int] = None,
        port_limit_cells: Optional[int] = None,
    ) -> None:
        if flow_limit_cells is not None and flow_limit_cells <= 0:
            raise ValueError("flow_limit_cells must be positive or None")
        if port_limit_cells is not None and port_limit_cells <= 0:
            raise ValueError("port_limit_cells must be positive or None")
        self.flow_limit_cells = flow_limit_cells
        self.port_limit_cells = port_limit_cells

    def admit(self, buffer: SharedBuffer, packet: Packet, port: str = "") -> bool:
        cells = buffer.cells_for(packet)
        if not buffer.can_admit(packet):
            return False
        if (
            self.flow_limit_cells is not None
            and buffer.flow_cells(packet.flow) + cells > self.flow_limit_cells
        ):
            return False
        if (
            port
            and self.port_limit_cells is not None
            and buffer.port_cells(port) + cells > self.port_limit_cells
        ):
            return False
        return True


class DynamicThresholdPolicy(AdmissionPolicy):
    """Choudhury–Hahne dynamic thresholds.

    A flow (or port, depending on ``key``) may occupy at most
    ``alpha * free_cells``.  With ``alpha = 1`` a single congested flow can
    take at most half the buffer; smaller alphas reserve more headroom for
    newly active flows.
    """

    def __init__(self, alpha: float = 1.0, key: str = "flow") -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if key not in ("flow", "port"):
            raise ValueError("key must be 'flow' or 'port'")
        self.alpha = alpha
        self.key = key

    def admit(self, buffer: SharedBuffer, packet: Packet, port: str = "") -> bool:
        cells = buffer.cells_for(packet)
        if not buffer.can_admit(packet):
            return False
        threshold = self.alpha * buffer.free_cells
        if self.key == "flow":
            occupancy = buffer.flow_cells(packet.flow)
        else:
            occupancy = buffer.port_cells(port)
        return occupancy + cells <= threshold
