"""Extensions beyond the paper's core design.

The paper closes by predicting that a programmable PIFO scheduler would seed
a lineage of follow-on designs, and Section 6 sketches extensions that the
hardware design "facilitates" without fully specifying.  This package
implements both kinds of material so they can be compared against the exact
PIFO quantitatively:

* :mod:`repro.extensions.sp_pifo` — SP-PIFO, the best-known follow-on: an
  *approximation* of a PIFO built from a handful of strict-priority FIFO
  queues with dynamic queue bounds.  It trades inversions (packets dequeued
  out of rank order) for a much simpler data structure.  Implemented here so
  the ablation benchmark can quantify how close the approximation gets to
  the exact PIFO this paper builds.
* :mod:`repro.extensions.multi_pipeline` — the Section 6.3 sketch: a PIFO
  block servicing several ingress and egress pipelines, i.e. multiple
  enqueues and dequeues per clock cycle.

(Priority Flow Control, the other Section 6 sketch, is implemented with the
switch substrate in :mod:`repro.switch.pfc` because it is a per-port switch
feature rather than a scheduler-core extension.)
"""

from .multi_pipeline import (
    MultiPipelineBlock,
    MultiPipelineStats,
    PipelinePortConfig,
    required_pipelines,
)
from .sp_pifo import (
    InversionReport,
    SPPIFOQueue,
    count_inversions,
    compare_with_exact_pifo,
)

__all__ = [
    "SPPIFOQueue",
    "InversionReport",
    "count_inversions",
    "compare_with_exact_pifo",
    "MultiPipelineBlock",
    "MultiPipelineStats",
    "PipelinePortConfig",
    "required_pipelines",
]
