"""Tests for fine-grained priority transactions (SJF, SRPT, LAS, EDF)."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    EarliestDeadlineFirstTransaction,
    FieldRankTransaction,
    LeastAttainedServiceTransaction,
    ShortestJobFirstTransaction,
    SRPTTransaction,
)
from repro.core import Packet, ProgrammableScheduler, TransactionContext, single_node_tree
from repro.exceptions import TransactionError


def pkt(flow="A", length=1000, **fields):
    return Packet(flow=flow, length=length, fields=fields)


class TestFieldRank:
    def test_rank_equals_field(self):
        txn = FieldRankTransaction("anything")
        assert txn(pkt(anything=17), TransactionContext()) == 17

    def test_missing_field_raises(self):
        txn = FieldRankTransaction("missing")
        with pytest.raises(TransactionError):
            txn(pkt(), TransactionContext())


class TestSJFAndSRPT:
    def test_sjf_orders_by_flow_size(self):
        scheduler = ProgrammableScheduler(single_node_tree(ShortestJobFirstTransaction()))
        big = pkt(flow="big", flow_size=1_000_000)
        small = pkt(flow="small", flow_size=10_000)
        scheduler.enqueue(big)
        scheduler.enqueue(small)
        assert scheduler.dequeue() is small

    def test_srpt_orders_by_remaining_size(self):
        scheduler = ProgrammableScheduler(single_node_tree(SRPTTransaction()))
        nearly_done = pkt(flow="f1", remaining_size=2000)
        just_started = pkt(flow="f2", remaining_size=900_000)
        scheduler.enqueue(just_started)
        scheduler.enqueue(nearly_done)
        assert scheduler.dequeue() is nearly_done

    def test_srpt_switch_local_ordering_within_buffer(self):
        """Packets already buffered keep their relative order when a new
        smaller-remaining packet arrives: only the newcomer jumps ahead."""
        scheduler = ProgrammableScheduler(single_node_tree(SRPTTransaction()))
        a = pkt(flow="f0", remaining_size=7)
        b = pkt(flow="f1", remaining_size=9)
        c = pkt(flow="f1", remaining_size=8)
        for packet in (a, b, c):
            scheduler.enqueue(packet)
        d = pkt(flow="f1", remaining_size=6)
        scheduler.enqueue(d)
        assert scheduler.drain() == [d, a, c, b]


class TestEDF:
    def test_earliest_deadline_first(self):
        scheduler = ProgrammableScheduler(
            single_node_tree(EarliestDeadlineFirstTransaction())
        )
        late = pkt(flow="late", deadline=9.0)
        soon = pkt(flow="soon", deadline=1.0)
        scheduler.enqueue(late)
        scheduler.enqueue(soon)
        assert scheduler.dequeue() is soon

    def test_missing_deadline_raises(self):
        scheduler = ProgrammableScheduler(
            single_node_tree(EarliestDeadlineFirstTransaction())
        )
        with pytest.raises(TransactionError):
            scheduler.enqueue(pkt())


class TestLAS:
    def test_untagged_packets_use_switch_state(self):
        txn = LeastAttainedServiceTransaction()
        ctx_a = TransactionContext(element_flow="A", element_length=1000)
        assert txn(pkt(flow="A"), ctx_a) == 0
        assert txn(pkt(flow="A"), ctx_a) == 1000
        assert txn(pkt(flow="A"), ctx_a) == 2000

    def test_new_flow_preferred_over_old_heavy_flow(self):
        scheduler = ProgrammableScheduler(
            single_node_tree(LeastAttainedServiceTransaction())
        )
        for _ in range(5):
            scheduler.enqueue(pkt(flow="elephant"))
        scheduler.enqueue(pkt(flow="mouse"))
        order = [p.flow for p in scheduler.drain()]
        # The mouse has attained no service, so it goes ahead of all but the
        # elephant's first packet (which also has rank 0 and arrived first).
        assert order.index("mouse") == 1

    def test_tagged_attained_service_is_honoured(self):
        txn = LeastAttainedServiceTransaction()
        ctx = TransactionContext(element_flow="A", element_length=1000)
        rank = txn(pkt(flow="A", attained_service=5000), ctx)
        assert rank == 5000
