"""Packet-trace recording and replay.

Experiments sometimes need the exact same packet sequence replayed against
different schedulers (for example the reference engine vs the hardware
model, or a PIFO-programmed algorithm vs its classic baseline).  A
:class:`PacketTrace` captures an arrival stream to a list or a CSV file and
replays it on demand, cloning packets so runs cannot interfere with each
other through shared mutable state.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple

from ..core.packet import Packet

Arrival = Tuple[float, Packet]

#: Column order of the CSV serialisation.  ``src``/``dst`` joined in the
#: fabric era (addressed packets); :meth:`PacketTrace.load_csv` still reads
#: CSVs written before they existed (both default to ``None``).
_CSV_COLUMNS = ["time", "flow", "length", "packet_class", "priority",
                "src", "dst", "fields"]


@dataclass
class TraceRecord:
    """One arrival in a trace."""

    time: float
    flow: str
    length: int
    packet_class: Optional[str]
    priority: int
    fields: dict
    src: Optional[str] = None
    dst: Optional[str] = None

    def to_packet(self) -> Packet:
        return Packet(
            flow=self.flow,
            length=self.length,
            arrival_time=self.time,
            packet_class=self.packet_class,
            priority=self.priority,
            fields=dict(self.fields),
            src=self.src,
            dst=self.dst,
        )


class PacketTrace:
    """An ordered list of packet arrivals that can be replayed repeatedly."""

    def __init__(self, records: Optional[List[TraceRecord]] = None) -> None:
        self.records: List[TraceRecord] = list(records or [])

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_arrivals(cls, arrivals: Iterable[Arrival]) -> "PacketTrace":
        records = [
            TraceRecord(
                time=time,
                flow=packet.flow,
                length=packet.length,
                packet_class=packet.packet_class,
                priority=packet.priority,
                fields=dict(packet.fields),
                src=packet.src,
                dst=packet.dst,
            )
            for time, packet in arrivals
        ]
        return cls(records)

    # -- replay -------------------------------------------------------------------
    def replay(self) -> Iterator[Arrival]:
        """Yield ``(time, packet)`` pairs with freshly cloned packets."""
        for record in self.records:
            yield record.time, record.to_packet()

    def packets(self) -> List[Packet]:
        """All packets (cloned) without their times."""
        return [record.to_packet() for record in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def duration(self) -> float:
        """Time of the last arrival (0 for an empty trace)."""
        return self.records[-1].time if self.records else 0.0

    # -- persistence ----------------------------------------------------------------
    def save_csv(self, path) -> None:
        """Write the trace to a CSV file (fields serialised as JSON)."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(_CSV_COLUMNS)
            for record in self.records:
                writer.writerow(
                    [
                        record.time,
                        record.flow,
                        record.length,
                        record.packet_class or "",
                        record.priority,
                        record.src or "",
                        record.dst or "",
                        json.dumps(record.fields),
                    ]
                )

    @classmethod
    def load_csv(cls, path) -> "PacketTrace":
        """Read a trace previously written by :meth:`save_csv`."""
        path = Path(path)
        records: List[TraceRecord] = []
        with path.open(newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                records.append(
                    TraceRecord(
                        time=float(row["time"]),
                        flow=row["flow"],
                        length=int(row["length"]),
                        packet_class=row["packet_class"] or None,
                        priority=int(row["priority"]),
                        fields=json.loads(row["fields"] or "{}"),
                        # Traces written before packets carried addresses
                        # have no src/dst columns; DictReader yields None.
                        src=row.get("src") or None,
                        dst=row.get("dst") or None,
                    )
                )
        return cls(records)
