"""Packet model used throughout the library.

A :class:`Packet` carries the handful of header fields that the paper's
scheduling and shaping transactions read (flow identifier, length, class,
slack, deadline, ...) plus a free-form ``fields`` mapping for
algorithm-specific metadata written by end hosts (for example the remaining
flow size used by SRPT, or the service received so far used by LAS).

The scheduler never inspects payloads; only the metadata matters, exactly as
in the paper where transactions operate on ``p.x`` packet fields.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Monotonic packet identifier source.  Used only for debugging and for
#: deterministic tie-breaking in tests; the PIFO itself breaks ties by
#: enqueue order, not by packet id.
_packet_ids = itertools.count()


@dataclass
class Packet:
    """A packet as seen by the scheduling subsystem.

    Parameters
    ----------
    flow:
        Flow identifier.  A *flow* is any set of packets sharing an
        attribute (a TCP connection, a tenant, a traffic class); the paper
        uses the same loose definition.
    length:
        Packet length in bytes (headers + payload).
    arrival_time:
        Wall-clock time (seconds) at which the packet arrived at the switch.
    src / dst:
        Optional network addresses (host names) used by the fabric layer
        (:mod:`repro.net`) to route the packet across a topology.  Single-port
        experiments leave them unset.
    packet_class:
        Optional class label used by tree predicates (for example ``"Left"``
        or ``"Right"`` in the HPFQ example of Figure 3).
    priority:
        Optional strict-priority level (lower is more important), mirroring
        the IP TOS field use in Section 3.4.
    fields:
        Algorithm-specific metadata: ``slack``, ``deadline``,
        ``remaining_size``, ``flow_size``, ``attained_service`` and so on.
    """

    flow: str
    length: int
    arrival_time: float = 0.0
    packet_class: Optional[str] = None
    priority: int = 0
    fields: Dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    src: Optional[str] = None
    dst: Optional[str] = None

    # Filled in by the switch / simulator as the packet moves through.
    enqueue_time: Optional[float] = None
    dequeue_time: Optional[float] = None
    departure_time: Optional[float] = None
    #: Time the packet was first injected into a network fabric (set once by
    #: :class:`repro.net.Fabric`; ``arrival_time`` is re-stamped at every hop).
    injection_time: Optional[float] = None
    #: Per-hop trace across a fabric: ``(node, arrival, queueing, departure)``
    #: tuples appended as the packet leaves each hop.  Empty outside
    #: :mod:`repro.net` runs, so single-port experiments pay only an empty
    #: list per packet.
    hops: List[tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"packet length must be positive, got {self.length}")

    # -- field helpers -----------------------------------------------------
    def get(self, name: str, default: Any = None) -> Any:
        """Return a metadata field, falling back to ``default``."""
        return self.fields.get(name, default)

    def set(self, name: str, value: Any) -> None:
        """Set a metadata field."""
        self.fields[name] = value

    @property
    def length_bits(self) -> int:
        """Packet length in bits."""
        return self.length * 8

    # -- timing helpers ----------------------------------------------------
    @property
    def queueing_delay(self) -> Optional[float]:
        """Time spent waiting in the scheduler, if both stamps are known."""
        if self.enqueue_time is None or self.dequeue_time is None:
            return None
        return self.dequeue_time - self.enqueue_time

    @property
    def total_delay(self) -> Optional[float]:
        """Arrival-to-departure delay, if the departure stamp is known."""
        if self.departure_time is None:
            return None
        return self.departure_time - self.arrival_time

    # -- fabric (multi-hop) helpers ----------------------------------------
    def record_hop(self, node: str, arrival: float, queueing: float,
                   departure: float) -> None:
        """Append one hop's timestamps as the packet leaves ``node``."""
        self.hops.append((node, arrival, queueing, departure))

    def per_hop_delays(self) -> Dict[str, float]:
        """Arrival-to-departure delay at each traversed hop, by node name."""
        return {node: departure - arrival
                for node, arrival, _queueing, departure in self.hops}

    @property
    def end_to_end_delay(self) -> Optional[float]:
        """Injection-to-departure delay across a fabric.

        Falls back to :attr:`total_delay` when the packet never entered a
        fabric (``injection_time`` unset), so sinks can use it uniformly.
        """
        if self.departure_time is None:
            return None
        start = self.injection_time if self.injection_time is not None else self.arrival_time
        return self.departure_time - start

    def copy(self) -> "Packet":
        """Return a deep-enough copy (fields dict is copied, not shared)."""
        return Packet(
            flow=self.flow,
            length=self.length,
            arrival_time=self.arrival_time,
            packet_class=self.packet_class,
            priority=self.priority,
            fields=dict(self.fields),
            src=self.src,
            dst=self.dst,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = f" class={self.packet_class}" if self.packet_class else ""
        return (
            f"Packet(id={self.packet_id}, flow={self.flow!r}, "
            f"len={self.length}B{extra})"
        )


def make_packets(
    flow: str,
    count: int,
    length: int = 1500,
    start_time: float = 0.0,
    spacing: float = 0.0,
    packet_class: Optional[str] = None,
    **fields: Any,
) -> list:
    """Convenience constructor for a burst of identical packets.

    Parameters
    ----------
    flow:
        Flow identifier shared by all packets.
    count:
        Number of packets to create.
    length:
        Length in bytes of each packet.
    start_time:
        Arrival time of the first packet.
    spacing:
        Inter-arrival gap in seconds between consecutive packets.
    packet_class:
        Optional class label for tree predicates.
    fields:
        Extra metadata copied into every packet's ``fields`` mapping.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    packets = []
    for i in range(count):
        packets.append(
            Packet(
                flow=flow,
                length=length,
                arrival_time=start_time + i * spacing,
                packet_class=packet_class,
                fields=dict(fields),
            )
        )
    return packets
