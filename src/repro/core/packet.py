"""Packet model used throughout the library.

A :class:`Packet` carries the handful of header fields that the paper's
scheduling and shaping transactions read (flow identifier, length, class,
slack, deadline, ...) plus a free-form ``fields`` mapping for
algorithm-specific metadata written by end hosts (for example the remaining
flow size used by SRPT, or the service received so far used by LAS).

The scheduler never inspects payloads; only the metadata matters, exactly as
in the paper where transactions operate on ``p.x`` packet fields.

Hot-path design
---------------
The simulator allocates one :class:`Packet` per simulated packet, so the
class is tuned for allocation throughput rather than convenience:

* ``__slots__`` — no per-instance ``__dict__``; attribute access and
  construction are both measurably faster and each packet is ~3x smaller.
* **Lazy metadata** — ``fields`` starts as a shared immutable empty mapping
  (:data:`EMPTY_FIELDS`) and ``hops`` as ``None``; a real ``dict`` / ``list``
  is only allocated on first write (:meth:`Packet.set`,
  :meth:`Packet.record_hop`).  Zero-metadata packets — the vast majority in
  throughput runs — allocate neither.
* **Free-list pool** — :meth:`Packet.acquire` reuses packets returned via
  :meth:`Packet.recycle` instead of allocating.  Recycling is *opt-in*: only
  owners that know no live reference remains (a streaming
  :class:`~repro.sim.sink.PacketSink` at the edge of a fabric) may recycle.
"""

from __future__ import annotations

import itertools
from types import MappingProxyType
from typing import Any, Dict, List, Optional

#: Monotonic packet identifier source.  Used only for debugging and for
#: deterministic tie-breaking in tests; the PIFO itself breaks ties by
#: enqueue order, not by packet id.
_packet_ids = itertools.count()

#: Shared immutable empty metadata mapping.  Every packet constructed without
#: explicit fields references this single object; :meth:`Packet.set` swaps in
#: a private ``dict`` on first write.  Read-only by construction, so a stray
#: direct mutation fails loudly instead of corrupting every packet.
EMPTY_FIELDS: Dict[str, Any] = MappingProxyType({})

#: Free list of recycled packets (bounded so pathological workloads cannot
#: hoard memory).
_pool: List["Packet"] = []
_POOL_LIMIT = 8192


class Packet:
    """A packet as seen by the scheduling subsystem.

    Parameters
    ----------
    flow:
        Flow identifier.  A *flow* is any set of packets sharing an
        attribute (a TCP connection, a tenant, a traffic class); the paper
        uses the same loose definition.
    length:
        Packet length in bytes (headers + payload).
    arrival_time:
        Wall-clock time (seconds) at which the packet arrived at the switch.
    src / dst:
        Optional network addresses (host names) used by the fabric layer
        (:mod:`repro.net`) to route the packet across a topology.  Single-port
        experiments leave them unset.
    packet_class:
        Optional class label used by tree predicates (for example ``"Left"``
        or ``"Right"`` in the HPFQ example of Figure 3).
    priority:
        Optional strict-priority level (lower is more important), mirroring
        the IP TOS field use in Section 3.4.
    fields:
        Algorithm-specific metadata: ``slack``, ``deadline``,
        ``remaining_size``, ``flow_size``, ``attained_service`` and so on.
        Mutate only through :meth:`set`; packets without metadata share one
        immutable empty mapping.
    """

    __slots__ = (
        "flow", "length", "arrival_time", "packet_class", "priority",
        "fields", "packet_id", "src", "dst",
        "enqueue_time", "dequeue_time", "departure_time", "injection_time",
        "_hops",
    )

    def __init__(
        self,
        flow: str,
        length: int,
        arrival_time: float = 0.0,
        packet_class: Optional[str] = None,
        priority: int = 0,
        fields: Optional[Dict[str, Any]] = None,
        packet_id: Optional[int] = None,
        src: Optional[str] = None,
        dst: Optional[str] = None,
    ) -> None:
        if length <= 0:
            raise ValueError(f"packet length must be positive, got {length}")
        self.flow = flow
        self.length = length
        self.arrival_time = arrival_time
        self.packet_class = packet_class
        self.priority = priority
        self.fields = EMPTY_FIELDS if fields is None else fields
        self.packet_id = next(_packet_ids) if packet_id is None else packet_id
        self.src = src
        self.dst = dst
        # Filled in by the switch / simulator as the packet moves through.
        self.enqueue_time: Optional[float] = None
        self.dequeue_time: Optional[float] = None
        self.departure_time: Optional[float] = None
        #: Time the packet was first injected into a network fabric (set once
        #: by :class:`repro.net.Fabric`; ``arrival_time`` is re-stamped at
        #: every hop).
        self.injection_time: Optional[float] = None
        self._hops: Optional[List[tuple]] = None

    # -- pooling -----------------------------------------------------------
    @classmethod
    def acquire(
        cls,
        flow: str,
        length: int,
        arrival_time: float = 0.0,
        packet_class: Optional[str] = None,
        priority: int = 0,
        fields: Optional[Dict[str, Any]] = None,
        src: Optional[str] = None,
        dst: Optional[str] = None,
    ) -> "Packet":
        """Return a packet from the free list, or a fresh one.

        Semantically identical to calling the constructor (a new
        ``packet_id`` is always assigned); only the allocation is saved.
        """
        if not _pool:
            return cls(flow, length, arrival_time, packet_class, priority,
                       fields, None, src, dst)
        if length <= 0:
            raise ValueError(f"packet length must be positive, got {length}")
        self = _pool.pop()
        self.flow = flow
        self.length = length
        self.arrival_time = arrival_time
        self.packet_class = packet_class
        self.priority = priority
        self.fields = EMPTY_FIELDS if fields is None else fields
        self.packet_id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.enqueue_time = None
        self.dequeue_time = None
        self.departure_time = None
        self.injection_time = None
        self._hops = None
        return self

    def recycle(self) -> None:
        """Return this packet to the free list.

        Only call when no other live reference to the packet remains (the
        streaming sinks at the edge of a fabric are the canonical owner).
        The packet's attributes stay readable until the next
        :meth:`acquire` reuses it, so same-event readers downstream of the
        recycling call (buffer release accounting) remain correct.
        """
        if len(_pool) < _POOL_LIMIT:
            self.fields = EMPTY_FIELDS
            self._hops = None
            _pool.append(self)

    # -- field helpers -----------------------------------------------------
    def get(self, name: str, default: Any = None) -> Any:
        """Return a metadata field, falling back to ``default``."""
        return self.fields.get(name, default)

    def set(self, name: str, value: Any) -> None:
        """Set a metadata field (allocates the dict on first write)."""
        fields = self.fields
        if fields is EMPTY_FIELDS:
            self.fields = fields = {}
        fields[name] = value

    @property
    def length_bits(self) -> int:
        """Packet length in bits."""
        return self.length * 8

    # -- timing helpers ----------------------------------------------------
    @property
    def queueing_delay(self) -> Optional[float]:
        """Time spent waiting in the scheduler, if both stamps are known."""
        if self.enqueue_time is None or self.dequeue_time is None:
            return None
        return self.dequeue_time - self.enqueue_time

    @property
    def total_delay(self) -> Optional[float]:
        """Arrival-to-departure delay, if the departure stamp is known."""
        if self.departure_time is None:
            return None
        return self.departure_time - self.arrival_time

    # -- fabric (multi-hop) helpers ----------------------------------------
    @property
    def hops(self) -> List[tuple]:
        """Per-hop trace across a fabric: ``(node, arrival, queueing,
        departure)`` tuples appended as the packet leaves each hop.

        Allocated lazily — packets that never traverse a fabric (or run
        with fabric telemetry disabled) share nothing and pay nothing.
        """
        hops = self._hops
        if hops is None:
            self._hops = hops = []
        return hops

    @hops.setter
    def hops(self, value: List[tuple]) -> None:
        self._hops = value

    def record_hop(self, node: str, arrival: float, queueing: float,
                   departure: float) -> None:
        """Append one hop's timestamps as the packet leaves ``node``."""
        hops = self._hops
        if hops is None:
            self._hops = hops = []
        hops.append((node, arrival, queueing, departure))

    def per_hop_delays(self) -> Dict[str, float]:
        """Arrival-to-departure delay at each traversed hop, by node name."""
        return {node: departure - arrival
                for node, arrival, _queueing, departure in (self._hops or ())}

    @property
    def end_to_end_delay(self) -> Optional[float]:
        """Injection-to-departure delay across a fabric.

        Falls back to :attr:`total_delay` when the packet never entered a
        fabric (``injection_time`` unset), so sinks can use it uniformly.
        """
        if self.departure_time is None:
            return None
        start = self.injection_time if self.injection_time is not None else self.arrival_time
        return self.departure_time - start

    def copy(self) -> "Packet":
        """Return a deep-enough copy (fields dict is copied, not shared)."""
        return Packet(
            flow=self.flow,
            length=self.length,
            arrival_time=self.arrival_time,
            packet_class=self.packet_class,
            priority=self.priority,
            fields=dict(self.fields) if self.fields else None,
            src=self.src,
            dst=self.dst,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = f" class={self.packet_class}" if self.packet_class else ""
        return (
            f"Packet(id={self.packet_id}, flow={self.flow!r}, "
            f"len={self.length}B{extra})"
        )


def pool_size() -> int:
    """Number of packets currently on the free list (introspection)."""
    return len(_pool)


def clear_pool() -> None:
    """Drop every pooled packet (tests that count allocations use this)."""
    _pool.clear()


def make_packets(
    flow: str,
    count: int,
    length: int = 1500,
    start_time: float = 0.0,
    spacing: float = 0.0,
    packet_class: Optional[str] = None,
    **fields: Any,
) -> list:
    """Convenience constructor for a burst of identical packets.

    Parameters
    ----------
    flow:
        Flow identifier shared by all packets.
    count:
        Number of packets to create.
    length:
        Length in bytes of each packet.
    start_time:
        Arrival time of the first packet.
    spacing:
        Inter-arrival gap in seconds between consecutive packets.
    packet_class:
        Optional class label for tree predicates.
    fields:
        Extra metadata copied into every packet's ``fields`` mapping.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    packets = []
    for i in range(count):
        packets.append(
            Packet(
                flow=flow,
                length=length,
                arrival_time=start_time + i * spacing,
                packet_class=packet_class,
                fields=dict(fields) if fields else None,
            )
        )
    return packets
