"""Write a scheduling algorithm as program text and run it (Section 4.1).

The paper's workflow is: write the scheduling/shaping transaction as a small
program (the figures' listings), compile it, check it fits the switch's atom
budget, and attach it to a PIFO.  This example does all four steps with the
transaction language in :mod:`repro.lang`:

1. compile Figure 1's STFQ listing and schedule a backlogged workload,
2. write a *custom* algorithm (deadline-aware weighted fairness) that exists
   in no textbook, to show the scheduler really is programmable,
3. print the Domino-style atom pipeline report for both,
4. show the native Python closure the program actually runs as — programs
   execute compiled by default (:mod:`repro.lang.compiler`), not by
   walking the AST per packet.

Run it with::

    python examples/transaction_language_tour.py
"""

from __future__ import annotations

from repro.core import Packet, ProgrammableScheduler, single_node_tree
from repro.lang import compile_scheduling_program
from repro.lang.programs import STFQ_SOURCE, stfq_program

#: A scheduling algorithm that is not in the paper: packets carry a deadline
#: and a weight class; urgent packets (deadline within `horizon`) are served
#: earliest-deadline-first, everything else falls back to weighted fairness
#: by accumulating per-flow virtual service.
CUSTOM_SOURCE = """
// Deadline-aware weighted fairness
f = flow(p)
if f in service
    service[f] = service[f] + p.length / f.weight
else
    service[f] = p.length / f.weight
if p.deadline <= now + horizon
    p.rank = p.deadline - boost     // urgent: schedule by deadline
else
    p.rank = service[f]             // relaxed: weighted fair queueing
"""


def run_stfq_from_source() -> None:
    print("=== 1. Figure 1's STFQ, straight from the listing ===")
    print(STFQ_SOURCE.strip())
    scheduler = ProgrammableScheduler(
        single_node_tree(stfq_program(weights={"video": 3.0, "bulk": 1.0}))
    )
    for _ in range(8):
        scheduler.enqueue(Packet(flow="video", length=1500))
        scheduler.enqueue(Packet(flow="bulk", length=1500))
    order = [packet.flow for packet in scheduler.drain()]
    print("\ndeparture order:", " ".join(order))
    print("video holds 3 of every 4 slots, exactly like the hand-written STFQ\n")


def run_custom_algorithm() -> None:
    print("=== 2. A custom algorithm the paper never mentions ===")
    print(CUSTOM_SOURCE.strip())
    weights = {"tenantA": 4.0, "tenantB": 1.0}
    transaction = compile_scheduling_program(
        CUSTOM_SOURCE,
        state={"service": {}},
        params={"horizon": 0.010, "boost": 1_000_000.0},
        flow_attrs={"weight": lambda flow: weights.get(flow, 1.0)},
        name="deadline-aware-wfq",
        require_line_rate=True,
    )
    scheduler = ProgrammableScheduler(single_node_tree(transaction))

    # tenantA and tenantB are both backlogged; one tenantB packet is urgent.
    for index in range(6):
        scheduler.enqueue(
            Packet(flow="tenantA", length=1500, fields={"deadline": 1.0 + index}),
            now=0.0,
        )
        scheduler.enqueue(
            Packet(flow="tenantB", length=1500, fields={"deadline": 1.0 + index}),
            now=0.0,
        )
    scheduler.enqueue(
        Packet(flow="tenantB", length=200, fields={"deadline": 0.004}), now=0.0
    )
    order = [(packet.flow, packet.length) for packet in scheduler.drain()]
    print("\ndeparture order:", order)
    print("the urgent 200-byte tenantB packet jumps the whole backlog;")
    print("the rest follows the 4:1 weighted fair split\n")


def show_atom_pipelines() -> None:
    print("=== 3. Does it fit at line rate? (Section 4.1) ===")
    for name, transaction in (
        ("stfq", stfq_program()),
        ("deadline-aware-wfq", compile_scheduling_program(
            CUSTOM_SOURCE,
            state={"service": {}},
            params={"horizon": 0.010, "boost": 1e6},
            flow_attrs={"weight": lambda flow: 1.0},
            name="deadline-aware-wfq",
        )),
    ):
        pipeline = transaction.pipeline_report()
        print(
            f"{name:20s} feasible={pipeline.feasible}  atoms={pipeline.total_atoms}  "
            f"depth={pipeline.pipeline_depth}  area={pipeline.area_mm2:.4f} mm^2"
        )


def show_generated_code() -> None:
    print("\n=== 4. What actually runs per packet ===")
    transaction = stfq_program(weights={"video": 3.0, "bulk": 1.0})
    print(f"execution backend: {transaction.backend}")
    generated = transaction.generated_source()
    if generated is None:
        print("(interpreter fallback active — no generated source to show)")
        return
    print(generated.rstrip())
    print("\nper-packet cost is one function call; the interpreter AST walk")
    print("is only a fallback (backend='interpreted' or REPRO_LANG_BACKEND)")


if __name__ == "__main__":
    run_stfq_from_source()
    run_custom_algorithm()
    show_atom_pipelines()
    show_generated_code()
