#!/usr/bin/env python
"""CI perf-regression gate: fresh benchmark numbers vs committed baselines.

Usage::

    python benchmarks/check_perf_regression.py \
        --baseline-dir baselines/ --current-dir . [--tolerance 0.20]

Compares every throughput metric in the committed ``BENCH_*.json``
artifacts (saved to ``--baseline-dir`` *before* the benchmarks overwrite
them) against the freshly measured files in ``--current-dir`` and exits
non-zero if any metric dropped more than ``--tolerance`` (default 20%)
below its baseline.  All gated metrics are *rates* (packets/second,
runs/second), which are workload-size independent, so the quick-mode CI
run is comparable against the committed full-size baselines.

Only throughput-like metrics gate the build (higher is better); wall-clock
style metrics are ignored.  Missing files or metrics fail loudly: a
benchmark silently not producing its artifact is itself a regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, Tuple

#: Benchmark artifacts gated by this script, with extractors yielding
#: ``(metric_name, packets_or_runs_per_second)`` pairs.
GATED_ARTIFACTS = ("BENCH_network_fabric.json", "BENCH_campaign.json",
                   "BENCH_obs_overhead.json", "BENCH_event_queue.json")

#: Metrics held to an absolute floor on the *current* value instead of a
#: baseline-relative tolerance.  The obs ratio pairs rates interleaved
#: round-robin within one benchmark, so drift cancels and the contract
#: bound (metrics off costs <= 2%) applies directly.  The fused-speedup
#: floors are ratchets on the same principle — a ratio of rates measured
#: in one session is hardware-independent, so the tree-kernel datapath
#: must always buy at least 2x over the interpreted reference.  The
#: chain3 absolute floor is the 100k pkt/s end-to-end target; unlike the
#: ratios it *does* depend on the runner, so it is only enforced on
#: full-size runs (quick-mode artifacts carry ``"packets" < 10000``).
ABSOLUTE_FLOORS = {
    "obs/metrics-off vs paired baseline": 0.98,
    "fabric/chain3 fused speedup": 2.0,
    "fabric/leaf_spine4x2 fused speedup": 2.0,
    "fabric/chain3 best pkt/s": 100_000.0,
}

#: Absolute floors skipped when the artifact was produced by a shrunken
#: (BENCH_QUICK) workload: raw-rate floors are only meaningful at the
#: committed workload size.
FULL_SIZE_ONLY_FLOORS = {"fabric/chain3 best pkt/s"}
FULL_SIZE_PACKETS = 10_000


def _fabric_metrics(payload: Dict) -> Iterator[Tuple[str, float]]:
    for topology, data in sorted(payload.get("topologies", {}).items()):
        # Fused-datapath rates (the default configuration).
        for backend, rate in sorted(data.get("backends", {}).items()):
            yield f"fabric/{topology}/{backend} pkt/s", float(rate)
        # Best-backend end-to-end rate: the absolute-throughput headline
        # (the 100k pkt/s floor gates chain3).  Only emitted for
        # full-size runs — quick-mode rates are not comparable.
        backends = data.get("backends", {})
        if backends and data.get("packets", 0) >= FULL_SIZE_PACKETS:
            yield (f"fabric/{topology} best pkt/s",
                   max(float(rate) for rate in backends.values()))
        # Interpreted reference rates: the fallback path is gated too, so
        # a scheduler that silently stops fusing (and rides the fallback)
        # cannot also let the fallback itself rot.
        for backend, rate in sorted(data.get("interpreted", {}).items()):
            yield (f"fabric/{topology}/{backend} interpreted pkt/s",
                   float(rate))
        # The fused-over-interpreted ratio is a rate-of-rates: gating it
        # catches the fused path regressing even if machine-wide noise
        # moves both absolute numbers together.
        speedup = data.get("speedup_fused_vs_interpreted")
        if speedup is not None:
            yield f"fabric/{topology} fused speedup", float(speedup)


def _campaign_metrics(payload: Dict) -> Iterator[Tuple[str, float]]:
    for workers, data in sorted(payload.get("workers", {}).items()):
        yield (f"campaign/workers={workers} runs/s",
               float(data["runs_per_second"]))
    # The engine's reason to exist: warm-phase parallel execution must
    # not fall back behind serial.  Gated like the fabric fused-speedup —
    # a ratio of rates, so machine-wide noise cancels.
    speedup = payload.get("speedup_max_workers_vs_serial")
    if speedup is not None:
        yield "campaign/speedup max-workers vs serial", float(speedup)
    for label, config in sorted(payload.get("configs", {}).items()):
        serial = config.get("serial", {}).get("runs_per_second")
        if serial is not None:
            yield f"campaign/{label} serial runs/s", float(serial)


def _obs_metrics(payload: Dict) -> Iterator[Tuple[str, float]]:
    # The metrics-off rate is the same configuration the fabric benchmark
    # gates; holding it here too means the obs artifact cannot silently
    # stop measuring the real hot path.
    yield "obs/metrics-off pkt/s", float(payload["metrics_off_pps"])
    # The acceptance gate: after a collection session, the disabled hot
    # path must run within 2% of the never-collected baseline measured
    # in the same interleaved round-robin.  Compared against
    # ABSOLUTE_FLOORS, not the committed baseline.
    ratio = payload.get("off_vs_baseline")
    if ratio is not None:
        yield "obs/metrics-off vs paired baseline", float(ratio)


def _event_queue_metrics(payload: Dict) -> Iterator[Tuple[str, float]]:
    # Both backends gate: the heap is the shipping default, the wheel the
    # scaling hedge — neither may silently rot.
    for pattern, data in sorted(payload.get("patterns", {}).items()):
        for backend in ("heap", "wheel"):
            rate = data.get(backend)
            if rate is not None:
                yield f"eventq/{pattern}/{backend} ops/s", float(rate)
    for topology, data in sorted(payload.get("end_to_end", {}).items()):
        for backend in ("heap", "wheel"):
            rate = data.get(backend)
            if rate is not None:
                yield f"eventq/{topology}/{backend} pkt/s", float(rate)


EXTRACTORS = {
    "BENCH_network_fabric.json": _fabric_metrics,
    "BENCH_campaign.json": _campaign_metrics,
    "BENCH_obs_overhead.json": _obs_metrics,
    "BENCH_event_queue.json": _event_queue_metrics,
}


def load_metrics(directory: Path, artifact: str) -> Dict[str, float]:
    path = directory / artifact
    if not path.is_file():
        raise FileNotFoundError(f"missing benchmark artifact {path}")
    payload = json.loads(path.read_text())
    metrics = dict(EXTRACTORS[artifact](payload))
    if not metrics:
        raise ValueError(f"artifact {path} contains no gated metrics")
    return metrics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", type=Path, required=True,
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("--current-dir", type=Path, default=Path("."),
                        help="directory holding the fresh BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="maximum allowed fractional drop (default 0.20)")
    args = parser.parse_args(argv)

    failures = []
    rows = []
    for artifact in GATED_ARTIFACTS:
        try:
            baseline = load_metrics(args.baseline_dir, artifact)
            current = load_metrics(args.current_dir, artifact)
        except (FileNotFoundError, ValueError, json.JSONDecodeError) as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        for metric in sorted(set(baseline) | set(ABSOLUTE_FLOORS)):
            base_value = baseline.get(metric)
            if metric not in current:
                if base_value is None:
                    continue  # floor metric absent on both sides
                if metric in FULL_SIZE_ONLY_FLOORS:
                    continue  # quick-mode run: raw-rate floor not comparable
                failures.append(f"{metric}: missing from current run")
                continue
            value = current[metric]
            floor = ABSOLUTE_FLOORS.get(metric)
            if floor is not None:
                # Absolute gate on the fresh value; the committed baseline
                # is informational (same-session ratios do not drift).
                status = "ok" if value >= floor else "REGRESSION"
                rows.append((metric, floor, value, value / floor, status))
                if status != "ok":
                    failures.append(
                        f"{metric}: {value:.3f} below absolute floor "
                        f"{floor:.2f}"
                    )
                continue
            if base_value is None:
                continue  # new metric with no committed baseline yet
            ratio = value / base_value if base_value > 0 else float("inf")
            status = "ok" if ratio >= 1.0 - args.tolerance else "REGRESSION"
            rows.append((metric, base_value, value, ratio, status))
            if status != "ok":
                failures.append(
                    f"{metric}: {value:,.0f} vs baseline {base_value:,.0f} "
                    f"({ratio:.2f}x, floor {1.0 - args.tolerance:.2f}x)"
                )

    width = max(len(metric) for metric, *_ in rows) if rows else 10
    print(f"{'metric':<{width}}  {'baseline':>12}  {'current':>12}  "
          f"{'ratio':>6}  status")
    for metric, base_value, value, ratio, status in rows:
        print(f"{metric:<{width}}  {base_value:>12,.1f}  {value:>12,.1f}  "
              f"{ratio:>5.2f}x  {status}")

    if failures:
        print(f"\n{len(failures)} perf regression(s) beyond "
              f"{args.tolerance:.0%} tolerance:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(rows)} metrics within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
