"""Compile transaction-language programs to native Python closures.

The interpreter in :mod:`repro.lang.interpreter` walks the AST once per
packet.  That is the dominant per-packet cost in the reproduction, while the
paper's whole point is that these transactions are small enough to run at
line rate.  This module removes the walk: a checked
:class:`~repro.lang.ast.Program` is lowered to Python source, ``compile()``d
once, and executed as an ordinary function call per packet.

The generated function has **the same signature and semantics as**
:meth:`Interpreter.execute`::

    fn(packet, ctx, env) -> ExecutionResult

Semantics preserved exactly:

* name resolution order (``now``/``p`` builtins, then locals, then state,
  then parameters) and the rule that assignments to state names mutate
  ``env.state`` in place while parameter assignment is an error;
* parameter constants are inlined as literals into the generated source
  (dynamic parameters — ``dequeued_rank`` on the dequeue path — stay
  late-bound through ``env.params``);
* ``flow_attrs`` / ``functions`` dispatch is late-bound through the
  environment, so one compiled function is shared by every transaction
  instance with the same program shape (see the cache below);
* packet-field reads observe earlier writes in the same execution, and the
  :class:`~repro.lang.interpreter.ExecutionResult` contract (``rank``,
  ``send_time``, ``packet_writes``, ``locals``) is identical;
* every :class:`~repro.lang.errors.RuntimeLangError` the interpreter raises
  is raised on the same inputs with the same message.

**Error fidelity without a slow path.**  The fast path contains no per-
operation error checks: generated code uses plain Python operators and lets
failures surface as raw exceptions (``ZeroDivisionError``, ``KeyError``,
``UnboundLocalError`` ...).  A single zero-cost ``try``/``except`` around
the body catches them, maps the failing generated line back to the source
statement, and **replays that one statement under the interpreter** with the
closure's live locals and packet writes — reproducing the interpreter's
exact :class:`RuntimeLangError` (message, line number and state effects;
statements before the failing one have already run, and the failing
statement raised before mutating program state, exactly as in the
interpreter).  One caveat: replay re-evaluates the failing *statement*, so
a registered user function with external side effects that ran before the
failure within that statement runs a second time — register pure functions
(as every bundled program does) if a program can raise at runtime.
Errors that are statically certain (assigning a parameter, subscripting an
undeclared state variable, calling an unknown function) are emitted as
direct ``raise`` sites with the interpreter's message, after evaluating
exactly the sub-expressions the interpreter would have evaluated first.

**The compile cache.**  ``compile_cached()`` memoises on the program AST
plus the *signature* of its environment: the state-variable names (and
whether each is statically known to stay a table), the inlined parameter
items and the dynamic parameter names.  Everything else — state values,
accessors, user functions — flows through ``env`` at call time, so two
transaction instances with the same program and configuration share one
code object while keeping fully independent state.
"""

from __future__ import annotations

import itertools
import linecache
import math
import weakref
from collections import OrderedDict
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .ast import (
    Assign,
    Attribute,
    BinOp,
    Boolean,
    BoolOp,
    Call,
    Compare,
    Expression,
    If,
    Membership,
    Name,
    Number,
    Program,
    Statement,
    Subscript,
    UnaryOp,
    format_node,
)
from .errors import LangError, RuntimeLangError
from .interpreter import (
    _BUILTIN_FUNCTIONS,
    _PACKET_BUILTIN_FIELDS,
    ExecutionResult,
    Interpreter,
    ProgramEnvironment,
    _Frame,
)


class CompileError(LangError):
    """Raised when a program uses a construct the compiler cannot lower.

    The bridge treats this as "fall back to the interpreter", so growing the
    language never breaks existing programs — they just run interpreted
    until the compiler catches up.
    """


#: Python source rendered for each packet builtin field (mirrors
#: ``_PACKET_BUILTIN_FIELDS`` in the interpreter).
_PACKET_FIELD_SOURCE = {
    "length": "(ctx.element_length or packet.length)",
    "size": "(ctx.element_length or packet.length)",
    "flow": "(ctx.element_flow or packet.flow)",
    "arrival_time": "packet.arrival_time",
    "class": "packet.packet_class",
    "priority": "packet.priority",
}

_LOCAL_PREFIX = "_l_"

_filename_counter = itertools.count()


def _checked_table(state: Mapping, name: str, line: int):
    """Runtime guard matching ``Interpreter._state_table``'s type check."""
    table = state[name]
    if not isinstance(table, MutableMapping) and not isinstance(table, dict):
        raise RuntimeLangError(
            f"state variable {name!r} is not a table and cannot be "
            "subscripted",
            line=line,
        )
    return table


def _contains(table, item) -> bool:
    """Membership with the interpreter's table-before-item evaluation order."""
    return item in table


def _raise_lang_error(message: str, line: int, *_evaluated: Any):
    """Raise a statically-known RuntimeLangError at runtime.

    ``*_evaluated`` exists so call sites can force evaluation of exactly the
    sub-expressions the interpreter would have evaluated before raising
    (for example the assigned value before a "cannot assign parameter"
    error).
    """
    raise RuntimeLangError(message, line=line)


def _flow_of(ctx, packet, *_args):
    """``flow(p)`` — args are evaluated (for side effects) then ignored,
    exactly as the interpreter does."""
    return ctx.element_flow or packet.flow


class _Codegen:
    """Lowers one ``Program`` to Python source plus a line→statement map."""

    def __init__(
        self,
        program: Program,
        state: Mapping[str, Any],
        params: Mapping[str, Any],
        dynamic_params: Sequence[str],
    ) -> None:
        self.program = program
        self.state_keys: Set[str] = set(state)
        self.dynamic_params: Set[str] = set(dynamic_params)
        self.inline_params: Dict[str, Any] = {}
        for key, value in params.items():
            if key in self.dynamic_params:
                continue
            if _inlinable(value):
                self.inline_params[key] = value
            else:
                self.dynamic_params.add(key)
        self.param_keys = set(self.inline_params) | self.dynamic_params

        # Names assigned as plain locals somewhere in the program (Python
        # function scoping then matches the interpreter's flat local frame).
        self.local_names: Set[str] = set()
        # Packet fields the program writes (reads must check _pw first).
        self.written_fields: Set[str] = set()
        # State names whose whole value is reassigned (their table-ness can
        # change at runtime, so subscripts/membership need the type guard).
        reassigned_state: Set[str] = set()
        for node in program.walk():
            if isinstance(node, Assign):
                target = node.target
                if isinstance(target, Name):
                    if target.identifier in self.state_keys:
                        reassigned_state.add(target.identifier)
                    elif target.identifier not in self.param_keys:
                        self.local_names.add(target.identifier)
                elif isinstance(target, Attribute) and target.obj == "p":
                    self.written_fields.add(target.attribute)
        # State names statically guaranteed to hold a mapping for the whole
        # execution: initialised as one and never whole-name reassigned.
        self.static_tables: Set[str] = {
            key
            for key, value in state.items()
            if isinstance(value, (dict, MutableMapping))
            and key not in reassigned_state
        }

        self.used_accessors: Set[str] = set()
        self.used_functions: Set[str] = set()
        self.uses_now = False
        self.uses_state = False
        self.uses_dynamic_params = False
        self.uses_packet_fields = False

        self.lines: List[str] = []
        self.line_map: Dict[int, Statement] = {}

    # -- emission ----------------------------------------------------------
    def _emit(self, indent: int, text: str, statement: Optional[Statement] = None) -> None:
        self.lines.append("    " * indent + text)
        if statement is not None:
            self.line_map[len(self.lines)] = statement

    def generate(self) -> str:
        body_lines: List[str] = []
        saved = self.lines
        self.lines = body_lines
        # Body first: emission discovers which prologue hoists are needed.
        for statement in self.program.statements:
            self._statement(statement, 2)
        if not body_lines:
            self._emit(2, "pass")
        self.lines = saved

        self._emit(0, "def _tx(packet, ctx, env):")
        if self.uses_state:
            self._emit(1, "_st = env.state")
        if self.uses_dynamic_params:
            self._emit(1, "_pr = env.params")
        if self.uses_packet_fields:
            self._emit(1, "_pf = packet.fields")
        if self.uses_now:
            self._emit(1, "_now = ctx.now")
        for attr in sorted(self.used_accessors):
            self._emit(1, f"_fa_{attr} = env.flow_attrs.get({attr!r})")
        for fn in sorted(self.used_functions):
            if fn in _BUILTIN_FUNCTIONS:
                self._emit(1, f"_f_{fn} = env.functions.get({fn!r}) or _b_{fn}")
            else:
                self._emit(1, f"_f_{fn} = env.functions.get({fn!r})")
        self._emit(1, "_pw = {}")
        self._emit(1, "try:")
        offset = len(self.lines)
        self.lines.extend(body_lines)
        self.line_map = {
            lineno + offset: stmt for lineno, stmt in self.line_map.items()
        }
        self._emit(1, "except _LangError:")
        self._emit(2, "raise")
        self._emit(1, "except Exception as _exc:")
        self._emit(2, "_replay(_exc, packet, ctx, env, locals())")
        self._emit(2, "raise")
        if self.local_names:
            locals_src = (
                "{_n[%d:]: _v for _n, _v in locals().items() "
                "if _n[:%d] == %r}"
                % (len(_LOCAL_PREFIX), len(_LOCAL_PREFIX), _LOCAL_PREFIX)
            )
        else:
            locals_src = "{}"
        self._emit(
            1,
            "return _Result(rank=_pw.get('rank'), send_time=_pw.get('send_time'), "
            f"packet_writes=dict(_pw), locals={locals_src})",
        )
        return "\n".join(self.lines) + "\n"

    # -- statements --------------------------------------------------------
    def _statement(self, statement: Statement, indent: int) -> None:
        if isinstance(statement, Assign):
            self._assign(statement, indent)
            return
        if isinstance(statement, If):
            self._emit(indent, f"if {self._expr(statement.condition)}:", statement)
            for inner in statement.body:
                self._statement(inner, indent + 1)
            if statement.orelse:
                self._emit(indent, "else:")
                for inner in statement.orelse:
                    self._statement(inner, indent + 1)
            return
        raise CompileError(
            f"unsupported statement {statement!r}", line=statement.line
        )

    def _assign(self, statement: Assign, indent: int) -> None:
        value = self._expr(statement.value)
        target = statement.target
        if isinstance(target, Attribute):
            if target.obj != "p":
                self._emit_static_error(
                    indent,
                    statement,
                    "can only assign to packet fields (p.*), not "
                    f"{format_node(target)!r}",
                    target.line,
                    value,
                )
                return
            self._emit(indent, f"_pw[{target.attribute!r}] = {value}", statement)
            return
        if isinstance(target, Subscript):
            if target.obj not in self.state_keys:
                self._emit_static_error(
                    indent,
                    statement,
                    f"{target.obj!r} is not a declared state variable "
                    "(per-flow tables must be declared in the program's "
                    "initial state)",
                    target.line,
                    value,
                )
                return
            table = self._table(target.obj, target.line)
            key = self._expr(target.index)
            self._emit(indent, f"{table}[{key}] = {value}", statement)
            return
        if isinstance(target, Name):
            name = target.identifier
            if name in self.state_keys:
                self.uses_state = True
                self._emit(indent, f"_st[{name!r}] = {value}", statement)
                return
            if name in self.param_keys:
                self._emit_static_error(
                    indent,
                    statement,
                    f"{name!r} is a parameter and cannot be assigned",
                    target.line,
                    value,
                )
                return
            self._emit(indent, f"{_LOCAL_PREFIX}{name} = {value}", statement)
            return
        raise CompileError(
            f"unsupported assignment target {target!r}", line=statement.line
        )

    def _emit_static_error(
        self,
        indent: int,
        statement: Statement,
        message: str,
        line: int,
        *evaluated: str,
    ) -> None:
        """A statement that always fails: evaluate what the interpreter
        would have evaluated, then raise its exact error."""
        args = "".join(f", {expr}" for expr in evaluated)
        self._emit(indent, f"_rte({message!r}, {line}{args})", statement)

    # -- expressions -------------------------------------------------------
    def _expr(self, expr: Expression) -> str:
        if isinstance(expr, Number):
            return repr(expr.value)
        if isinstance(expr, Boolean):
            return "True" if expr.value else "False"
        if isinstance(expr, Name):
            return self._name(expr.identifier, expr.line)
        if isinstance(expr, Attribute):
            return self._attribute(expr)
        if isinstance(expr, Subscript):
            if expr.obj not in self.state_keys:
                return self._static_error_expr(
                    f"{expr.obj!r} is not a declared state variable "
                    "(per-flow tables must be declared in the program's "
                    "initial state)",
                    expr.line,
                )
            return f"{self._table(expr.obj, expr.line)}[{self._expr(expr.index)}]"
        if isinstance(expr, Call):
            return self._call(expr)
        if isinstance(expr, UnaryOp):
            operand = self._expr(expr.operand)
            if expr.operator == "-":
                return f"(-{operand})"
            return f"(not {operand})"
        if isinstance(expr, BinOp):
            return f"({self._expr(expr.left)} {expr.operator} {self._expr(expr.right)})"
        if isinstance(expr, Compare):
            return f"({self._expr(expr.left)} {expr.operator} {self._expr(expr.right)})"
        if isinstance(expr, BoolOp):
            joiner = f" {expr.operator} "
            return "(" + joiner.join(self._expr(op) for op in expr.operands) + ")"
        if isinstance(expr, Membership):
            return self._membership(expr)
        raise CompileError(
            f"unsupported expression {expr!r}", line=getattr(expr, "line", 0)
        )

    def _name(self, name: str, line: int) -> str:
        # Resolution order matches Interpreter._read_name: now / p first,
        # then locals, then state, then parameters.
        if name == "now":
            self.uses_now = True
            return "_now"
        if name == "p":
            return "packet"
        if name in self.local_names:
            # Reading before any assignment ran raises UnboundLocalError,
            # which the replay turns into the interpreter's "undefined
            # name" error.
            return f"{_LOCAL_PREFIX}{name}"
        if name in self.state_keys:
            self.uses_state = True
            return f"_st[{name!r}]"
        if name in self.inline_params:
            return repr(self.inline_params[name])
        if name in self.dynamic_params:
            self.uses_dynamic_params = True
            return f"_pr[{name!r}]"
        return self._static_error_expr(
            f"undefined name {name!r} (not a local, state variable, "
            "parameter or builtin)",
            line,
        )

    def _attribute(self, expr: Attribute) -> str:
        if expr.obj == "p":
            return self._packet_field(expr)
        # ``f.weight``: late-bound accessor; a missing accessor surfaces as
        # "None is not callable" and replays to the interpreter's error,
        # which also matches the interpreter's accessor-before-owner order
        # because the owner is only evaluated at the call site.
        self.used_accessors.add(expr.attribute)
        owner = self._name(expr.obj, expr.line)
        return f"_fa_{expr.attribute}({owner})"

    def _packet_field(self, expr: Attribute) -> str:
        name = expr.attribute
        builtin = _PACKET_FIELD_SOURCE.get(name)
        if builtin is None:
            self.uses_packet_fields = True
            fallback = f"_pf[{name!r}]"
        else:
            fallback = builtin
        if name in self.written_fields:
            # Reads observe earlier writes in the same execution.
            return f"(_pw[{name!r}] if {name!r} in _pw else {fallback})"
        return fallback

    def _call(self, expr: Call) -> str:
        args = ", ".join(self._expr(arg) for arg in expr.args)
        if expr.function == "flow":
            # ``flow(p)`` always resolves to the element flow, shadowing any
            # registered function of the same name — as the interpreter does.
            # When every argument is side-effect free (cannot raise, calls
            # nothing) the call is inlined away entirely; otherwise the
            # arguments are still evaluated first, as the interpreter does.
            if all(self._effect_free(arg) for arg in expr.args):
                return "(ctx.element_flow or packet.flow)"
            return f"_flow(ctx, packet{', ' + args if args else ''})"
        name = expr.function
        if not name.isidentifier():  # pragma: no cover - lexer prevents this
            raise CompileError(f"invalid function name {name!r}", line=expr.line)
        self.used_functions.add(name)
        return f"_f_{name}({args})"

    def _effect_free(self, expr: Expression) -> bool:
        """True when evaluating ``expr`` can neither raise nor call code."""
        if isinstance(expr, (Number, Boolean)):
            return True
        if isinstance(expr, Name):
            name = expr.identifier
            if name in ("now", "p"):
                return True
            # Local reads can raise UnboundLocalError; state and inlined
            # parameter reads cannot fail.
            return name not in self.local_names and (
                name in self.state_keys or name in self.inline_params
            )
        return False

    def _table(self, name: str, line: int) -> str:
        self.uses_state = True
        if name in self.static_tables:
            return f"_st[{name!r}]"
        return f"_tbl(_st, {name!r}, {line})"

    def _membership(self, expr: Membership) -> str:
        if expr.table not in self.state_keys:
            return self._static_error_expr(
                f"{expr.table!r} is not a declared state variable "
                "(per-flow tables must be declared in the program's "
                "initial state)",
                expr.line,
            )
        item = self._expr(expr.item)
        if expr.table in self.static_tables:
            self.uses_state = True
            op = "not in" if expr.negated else "in"
            return f"({item} {op} _st[{expr.table!r}])"
        # Guarded path evaluates the table (and its type check) before the
        # item, matching Interpreter._eval's order for Membership.
        test = f"_in({self._table(expr.table, expr.line)}, {item})"
        return f"(not {test})" if expr.negated else test

    def _static_error_expr(self, message: str, line: int) -> str:
        return f"_rte({message!r}, {line})"


def _inlinable(value: Any) -> bool:
    """Can ``value`` be embedded as a literal in generated source?"""
    if value is None or isinstance(value, (bool, int, str)):
        return True
    if isinstance(value, float):
        return math.isfinite(value)
    return False


class CompiledProgram:
    """A program lowered to one native Python function.

    ``execute`` has exactly the signature and contract of
    :meth:`Interpreter.execute`; the bridge can swap one for the other.
    """

    def __init__(self, program: Program, name: str = "program",
                 state: Optional[Mapping[str, Any]] = None,
                 params: Optional[Mapping[str, Any]] = None,
                 dynamic_params: Sequence[str] = ()) -> None:
        self.program = program
        self.name = name
        codegen = _Codegen(
            program, state or {}, params or {}, dynamic_params
        )
        self.source_text = codegen.generate()
        self._line_map = codegen.line_map
        filename = f"<lang-compile:{name}#{next(_filename_counter)}>"
        self.filename = filename
        # Register with linecache so tracebacks through generated code show
        # real source lines; the entry lives exactly as long as this program
        # (sweeping many parameterizations must not grow memory unboundedly).
        linecache.cache[filename] = (
            len(self.source_text),
            None,
            self.source_text.splitlines(True),
            filename,
        )
        weakref.finalize(self, linecache.cache.pop, filename, None)
        namespace: Dict[str, Any] = {
            "_Result": ExecutionResult,
            "_LangError": LangError,
            "_replay": self._replay,
            "_rte": _raise_lang_error,
            "_tbl": _checked_table,
            "_in": _contains,
            "_flow": _flow_of,
        }
        for fn_name, fn in _BUILTIN_FUNCTIONS.items():
            namespace[f"_b_{fn_name}"] = fn
        try:
            code = compile(self.source_text, filename, "exec")
        except SyntaxError as exc:  # pragma: no cover - codegen bug guard
            raise CompileError(
                f"generated code for {name!r} failed to compile: {exc}"
            ) from exc
        exec(code, namespace)
        self.execute = namespace["_tx"]

    # -- error replay ------------------------------------------------------
    def _replay(self, exc, packet, ctx, env, frame_locals) -> None:
        """Re-run the failing statement under the interpreter.

        The fast path mutated state exactly as the interpreter would have up
        to (but not including) the failing statement, so replaying just that
        statement with the closure's live locals and packet writes raises
        the interpreter's exact :class:`RuntimeLangError`.
        """
        tb = exc.__traceback__
        statement = self._line_map.get(tb.tb_lineno) if tb is not None else None
        if statement is None:
            raise RuntimeLangError(
                f"compiled program {self.name!r} failed: {exc}"
            ) from exc
        prefix = len(_LOCAL_PREFIX)
        frame = _Frame(
            packet=packet,
            ctx=ctx,
            env=env,
            locals={
                key[prefix:]: value
                for key, value in frame_locals.items()
                if key[:prefix] == _LOCAL_PREFIX
            },
            packet_writes=frame_locals.get("_pw", {}),
        )
        Interpreter(self.program)._exec_statement(statement, frame)
        # The replay did not fail — the raw error came from somewhere the
        # interpreter guards differently; wrap it rather than lose it.
        raise RuntimeLangError(
            f"compiled program {self.name!r} failed: {exc}"
        ) from exc

    def describe(self) -> str:
        return f"CompiledProgram({self.name!r}, {len(self._line_map)} statements)"


def compile_program(
    program: Program,
    *,
    state: Optional[Mapping[str, Any]] = None,
    params: Optional[Mapping[str, Any]] = None,
    dynamic_params: Sequence[str] = (),
    name: str = "program",
) -> CompiledProgram:
    """Lower ``program`` to a native closure (no caching)."""
    return CompiledProgram(
        program, name=name, state=state, params=params,
        dynamic_params=dynamic_params,
    )


# --------------------------------------------------------------------------- #
# Compile cache                                                               #
# --------------------------------------------------------------------------- #
#: LRU capacity: far above any bundled workload (a tree reuses a handful of
#: programs) while bounding memory when a sweep compiles many distinct
#: parameterizations.  Evicted programs stay alive — and keep their linecache
#: entries — only as long as a transaction still references them.
_CACHE_CAPACITY = 256

_cache: "OrderedDict[Tuple, CompiledProgram]" = OrderedDict()
_cache_hits = 0
_cache_misses = 0


def _signature(
    program: Program,
    state: Mapping[str, Any],
    params: Mapping[str, Any],
    dynamic_params: Sequence[str],
) -> Tuple:
    """Cache key: the AST plus everything codegen specialises on."""
    reassigned = {
        node.target.identifier
        for node in program.walk()
        if isinstance(node, Assign) and isinstance(node.target, Name)
    }
    state_sig = tuple(
        sorted(
            (key, isinstance(value, (dict, MutableMapping)) and key not in reassigned)
            for key, value in state.items()
        )
    )
    dynamic = set(dynamic_params)
    inline_items = []
    for key, value in params.items():
        if key in dynamic:
            continue
        if _inlinable(value):
            inline_items.append((key, type(value).__name__, value))
        else:
            dynamic.add(key)
    return (
        program,
        state_sig,
        tuple(sorted(inline_items)),
        tuple(sorted(dynamic)),
    )


def compile_cached(
    program: Program,
    *,
    state: Optional[Mapping[str, Any]] = None,
    params: Optional[Mapping[str, Any]] = None,
    dynamic_params: Sequence[str] = (),
    name: str = "program",
) -> CompiledProgram:
    """Compile with memoisation on (AST, state signature, param signature).

    Transaction instances sharing a program and configuration reuse one
    generated function; per-instance state stays isolated because all
    mutable data flows through ``env`` at call time.
    """
    global _cache_hits, _cache_misses
    state = state or {}
    params = params or {}
    try:
        key = _signature(program, state, params, dynamic_params)
        cached = _cache.get(key)
    except TypeError:
        # Unhashable parameter value — compile without caching.
        return compile_program(
            program, state=state, params=params,
            dynamic_params=dynamic_params, name=name,
        )
    if cached is not None:
        _cache_hits += 1
        _cache.move_to_end(key)
        return cached
    _cache_misses += 1
    compiled = compile_program(
        program, state=state, params=params,
        dynamic_params=dynamic_params, name=name,
    )
    _cache[key] = compiled
    while len(_cache) > _CACHE_CAPACITY:
        _cache.popitem(last=False)
    return compiled


def compile_cache_info() -> Dict[str, int]:
    """Cache statistics (for tests and diagnostics)."""
    return {"size": len(_cache), "hits": _cache_hits, "misses": _cache_misses}


def clear_compile_cache() -> None:
    """Drop every cached compiled program (tests use this for isolation)."""
    global _cache_hits, _cache_misses
    _cache.clear()
    _cache_hits = 0
    _cache_misses = 0
