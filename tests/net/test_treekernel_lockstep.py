"""Lockstep equivalence: the fused datapath is pure specialisation.

The fused whole-tree kernels (:mod:`repro.lang.treekernel`) and the fused
fabric delivery closures (:meth:`repro.net.Fabric._fuse_hot_path`) replace
the interpreted per-packet machinery with generated straight-line code.
These tests pin the contract that makes that safe — and that the ISSUE's
acceptance criterion demands: a fused run produces the *identical* packet
departure order, departure times, per-flow aggregates and conservation
counters as the interpreted reference, across random tree shapes, PIFO
backends and telemetry modes.

The hypothesis suite drives a 3-switch chain fabric with randomised
arrival processes over a catalog of scheduler trees (FIFO, arrival
sequence, STFQ, two-level WFQ, HPFQ); the scenario tests pin the built-in
fig6/leaf-spine experiments.  The interpreted reference is obtained by
pinning ``tree_kernel=False`` (scheduler kernels off) together with
``fused_delivery=False`` (fabric fusion off) — the exact PR 5 datapath.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    ArrivalSequenceTransaction,
    FIFOTransaction,
    STFQTransaction,
    build_fig3_tree,
    build_wfq_tree,
)
from repro.core import ProgrammableScheduler, single_node_tree
from repro.core.packet import Packet
from repro.net import Fabric, get_scenario, linear_chain
from repro.sim import Simulator

#: Tree catalog: label -> (tree builder, flow universe the tree routes).
TREES = {
    "fifo": (lambda: single_node_tree(FIFOTransaction()),
             ["x", "y", "z"]),
    "arrival_seq": (lambda: single_node_tree(ArrivalSequenceTransaction()),
                    ["x", "y", "z"]),
    "stfq": (lambda: single_node_tree(
        STFQTransaction(weights={"x": 2.0, "y": 1.0})),
        ["x", "y", "z"]),
    "wfq2": (lambda: build_wfq_tree({"x": 3.0, "y": 1.0}),
             ["x", "y"]),
    "hpfq_fig3": (build_fig3_tree, ["A", "B", "C", "D"]),
}

BACKENDS = ["sorted", "calendar", "bucketed"]


def _factory(tree_builder, tree_kernel):
    def factory(switch, port):
        return ProgrammableScheduler(tree_builder(),
                                     tree_kernel=tree_kernel)
    return factory


def _run_chain(tree_builder, arrivals, backend, telemetry, fused):
    sim = Simulator()
    fabric = Fabric(
        sim,
        linear_chain(3, link_rate_bps=1e8),
        _factory(tree_builder, tree_kernel=fused),
        pifo_backend=backend,
        telemetry=telemetry,
        keep_packets=True,
        fused_delivery=None if fused else False,
    )
    if fused:
        assert fabric.fused_ports > 0 or telemetry
    else:
        assert fabric.fused_ports == 0
    fabric.attach_source("h_src", arrivals)
    fabric.run(drain=True)
    return fabric


def _observables(fabric):
    sink = fabric.sink("h_dst")
    return {
        "order": sink.departure_order(),
        "departures": [p.departure_time for p in sink.packets],
        "conservation": fabric.conservation_check(),
        "aggregates": {
            flow: (agg.packets, agg.bytes, agg.mean_delay, agg.delay_max)
            for flow, agg in sink.aggregates.items()
        },
        "node_counters": {
            node: (switch.stats.received, switch.stats.transmitted,
                   switch.stats.dropped_admission,
                   switch.stats.dropped_scheduler)
            for node, switch in fabric.node_switches.items()
        },
    }


#: One random arrival stream: (gap_us, flow index, length) per packet.
#: Gaps land on a coarse grid (multiples of 10 us, often zero) so
#: same-timestamp events and idle/busy port transitions both occur —
#: the regimes where the batch drain and the cut-through transfer kernel
#: take different code paths from the interpreted engine.
arrival_steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=64, max_value=1500),
    ),
    min_size=1,
    max_size=60,
)


def _build_arrivals(steps, flows):
    # Fractions keep arrival timestamps exact so both runs see identical
    # floats after conversion.
    out, time = [], Fraction(0)
    for gap, flow_index, length in steps:
        time += Fraction(gap, 100_000)
        out.append((float(time),
                    Packet(flow=flows[flow_index % len(flows)],
                           length=length, dst="h_dst")))
    return out


class TestHypothesisLockstep:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        steps=arrival_steps,
        tree_label=st.sampled_from(sorted(TREES)),
        backend=st.sampled_from(BACKENDS),
        telemetry=st.booleans(),
    )
    def test_fused_identical_to_interpreted(self, steps, tree_label,
                                            backend, telemetry):
        tree_builder, flows = TREES[tree_label]
        if backend == "bucketed" and tree_label != "arrival_seq":
            # Only arrival-sequence ranks are integers; bucketed rejects
            # the float timestamps / virtual times of the other programs
            # (identically on both paths — pinned in test_treekernel.py).
            backend = "sorted"
        fused = _run_chain(tree_builder, _build_arrivals(steps, flows),
                           backend, telemetry, fused=True)
        plain = _run_chain(tree_builder, _build_arrivals(steps, flows),
                           backend, telemetry, fused=False)
        assert _observables(fused) == _observables(plain)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(steps=arrival_steps)
    def test_telemetry_hops_identical_when_fused(self, steps):
        tree_builder, flows = TREES["fifo"]
        fused = _run_chain(tree_builder, _build_arrivals(steps, flows),
                           "sorted", True, fused=True)
        plain = _run_chain(tree_builder, _build_arrivals(steps, flows),
                           "sorted", True, fused=False)
        hops_fused = [[h[0] for h in p.hops] for p in fused.sink("h_dst").packets]
        hops_plain = [[h[0] for h in p.hops] for p in plain.sink("h_dst").packets]
        assert hops_fused == hops_plain


class TestScenarioLockstep:
    @pytest.mark.parametrize("scenario_name", ["fig6_chain", "leaf_spine_fct"])
    def test_builtin_scenarios_identical_interpreted(self, scenario_name):
        scenario = get_scenario(scenario_name)
        fused = scenario.run(quick=True)
        plain = scenario.run(quick=True, tree_kernel=False)
        assert set(fused) == set(plain)
        for variant in fused:
            a, b = fused[variant], plain[variant]
            assert a.conservation == b.conservation
            assert a.flow_stats == b.flow_stats
            assert a.fct == b.fct
            assert a.fct_short == b.fct_short

    def test_tree_kernel_true_pins_kernels_on(self):
        scenario = get_scenario("fig6_chain")
        forced = scenario.run(quick=True, tree_kernel=True)
        default = scenario.run(quick=True)
        for variant in default:
            assert (forced[variant].conservation
                    == default[variant].conservation)
