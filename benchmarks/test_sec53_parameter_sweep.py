"""Section 5.3 — flow-scheduler parameter variations.

Regenerates the parameter sweep around the baseline design point: widening
the rank to 32 bits or the metadata to 64 bits raises the area to
0.317 mm^2, growing the number of logical PIFOs to 1024 raises it to
0.233 mm^2, and timing still closes in every case.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.hardware import (
    FlowSchedulerDesign,
    PAPER_PARAMETER_VARIATIONS,
    parameter_variation_rows,
)


def test_sec53_parameter_variations_match_paper(benchmark):
    rows = benchmark(parameter_variation_rows)
    report(
        "Section 5.3: flow-scheduler area under parameter variations",
        [
            {
                "variation": row["variation"],
                "paper_mm2": row["paper_area_mm2"],
                "model_mm2": row["model_area_mm2"],
                "meets_1GHz": row["meets_timing"],
            }
            for row in rows
        ],
    )
    for row in rows:
        assert row["model_area_mm2"] == pytest.approx(
            PAPER_PARAMETER_VARIATIONS[row["variation"]], rel=0.03
        )
        assert row["meets_timing"]


def test_sec53_combined_worst_case_still_feasible(benchmark):
    """A combined configuration (32-bit rank, 64-bit metadata, 1024 logical
    PIFOs, 2048 flows) stays under 1 mm^2 and meets timing — headroom for
    richer schedulers than the baseline."""
    def build():
        return FlowSchedulerDesign(
            rank_bits=32, metadata_bits=64, num_logical_pifos=1024, num_flows=2048
        )

    design = benchmark(build)
    report(
        "Section 5.3: combined configuration",
        [{"area_mm2": design.area_mm2(), "meets_1GHz": design.meets_timing_at_1ghz()}],
    )
    assert design.area_mm2() < 1.0
    assert design.meets_timing_at_1ghz()
