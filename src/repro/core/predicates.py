"""Packet predicates for scheduling-tree nodes.

Each node in a tree of scheduling transactions carries a *packet predicate*
that selects which packets execute that node's transactions (Figure 3b shows
``p.class == Left`` and ``p.class == Right``).  A predicate is simply a
callable ``Packet -> bool``; this module provides named, composable
implementations so trees are self-describing and trees built from
configuration are easy to audit.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from .packet import Packet

Predicate = Callable[[Packet], bool]


class MatchAll:
    """Matches every packet.  Used at the root of most trees (``True`` in
    Figure 3b)."""

    def __call__(self, packet: Packet) -> bool:
        return True

    def __repr__(self) -> str:
        return "MatchAll()"


class MatchNone:
    """Matches no packet.  Useful for temporarily disabling a subtree."""

    def __call__(self, packet: Packet) -> bool:
        return False

    def __repr__(self) -> str:
        return "MatchNone()"


class ClassEquals:
    """Matches packets whose ``packet_class`` equals the given label."""

    def __init__(self, label: str) -> None:
        self.label = label

    def __call__(self, packet: Packet) -> bool:
        return packet.packet_class == self.label

    def __repr__(self) -> str:
        return f"ClassEquals({self.label!r})"


class ClassIn:
    """Matches packets whose ``packet_class`` is one of the given labels."""

    def __init__(self, labels: Iterable[str]) -> None:
        self.labels = frozenset(labels)

    def __call__(self, packet: Packet) -> bool:
        return packet.packet_class in self.labels

    def __repr__(self) -> str:
        return f"ClassIn({sorted(self.labels)!r})"


class FlowEquals:
    """Matches packets belonging to a specific flow."""

    def __init__(self, flow: str) -> None:
        self.flow = flow

    def __call__(self, packet: Packet) -> bool:
        return packet.flow == self.flow

    def __repr__(self) -> str:
        return f"FlowEquals({self.flow!r})"


class FlowIn:
    """Matches packets whose flow is in the given set."""

    def __init__(self, flows: Iterable[str]) -> None:
        self.flows = frozenset(flows)

    def __call__(self, packet: Packet) -> bool:
        return packet.flow in self.flows

    def __repr__(self) -> str:
        return f"FlowIn({sorted(self.flows)!r})"


class PriorityEquals:
    """Matches packets with a specific strict-priority level."""

    def __init__(self, priority: int) -> None:
        self.priority = priority

    def __call__(self, packet: Packet) -> bool:
        return packet.priority == self.priority

    def __repr__(self) -> str:
        return f"PriorityEquals({self.priority})"


class FieldEquals:
    """Matches packets whose metadata field ``name`` equals ``value``."""

    def __init__(self, name: str, value) -> None:
        self.name = name
        self.value = value

    def __call__(self, packet: Packet) -> bool:
        return packet.get(self.name) == self.value

    def __repr__(self) -> str:
        return f"FieldEquals({self.name!r}, {self.value!r})"


class And:
    """Logical conjunction of predicates."""

    def __init__(self, *predicates: Predicate) -> None:
        self.predicates: Sequence[Predicate] = predicates

    def __call__(self, packet: Packet) -> bool:
        return all(predicate(packet) for predicate in self.predicates)

    def __repr__(self) -> str:
        return f"And({', '.join(repr(p) for p in self.predicates)})"


class Or:
    """Logical disjunction of predicates."""

    def __init__(self, *predicates: Predicate) -> None:
        self.predicates: Sequence[Predicate] = predicates

    def __call__(self, packet: Packet) -> bool:
        return any(predicate(packet) for predicate in self.predicates)

    def __repr__(self) -> str:
        return f"Or({', '.join(repr(p) for p in self.predicates)})"


class Not:
    """Logical negation of a predicate."""

    def __init__(self, predicate: Predicate) -> None:
        self.predicate = predicate

    def __call__(self, packet: Packet) -> bool:
        return not self.predicate(packet)

    def __repr__(self) -> str:
        return f"Not({self.predicate!r})"
