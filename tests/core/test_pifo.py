"""Unit and property-based tests for the PIFO data structure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PIFO, CalendarPIFO
from repro.exceptions import PIFOEmptyError, PIFOFullError


class TestPIFOBasics:
    def test_push_pop_single(self):
        pifo = PIFO()
        pifo.push("a", 5)
        assert pifo.pop() == "a"
        assert pifo.is_empty

    def test_lower_rank_dequeues_first(self):
        pifo = PIFO()
        pifo.push("low", 1)
        pifo.push("high", 10)
        pifo.push("mid", 5)
        assert [pifo.pop() for _ in range(3)] == ["low", "mid", "high"]

    def test_push_into_arbitrary_position(self):
        pifo = PIFO()
        pifo.push("b", 2)
        pifo.push("d", 4)
        pifo.push("c", 3)  # lands between b and d
        pifo.push("a", 1)  # lands at the head
        assert list(pifo) == ["a", "b", "c", "d"]

    def test_fifo_tie_break(self):
        pifo = PIFO()
        for label in ["first", "second", "third"]:
            pifo.push(label, 7)
        assert [pifo.pop() for _ in range(3)] == ["first", "second", "third"]

    def test_tie_break_interleaved_with_other_ranks(self):
        pifo = PIFO()
        pifo.push("x1", 2)
        pifo.push("a", 1)
        pifo.push("x2", 2)
        assert [pifo.pop() for _ in range(3)] == ["a", "x1", "x2"]

    def test_peek_does_not_remove(self):
        pifo = PIFO()
        pifo.push("a", 1)
        assert pifo.peek() == "a"
        assert pifo.peek_rank() == 1
        assert len(pifo) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(PIFOEmptyError):
            PIFO().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(PIFOEmptyError):
            PIFO().peek()

    def test_capacity_enforced(self):
        pifo = PIFO(capacity=2)
        pifo.push("a", 1)
        pifo.push("b", 2)
        with pytest.raises(PIFOFullError):
            pifo.push("c", 3)
        assert pifo.drops == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PIFO(capacity=0)

    def test_len_and_bool(self):
        pifo = PIFO()
        assert not pifo
        pifo.push("a", 1)
        assert pifo
        assert len(pifo) == 1

    def test_clear(self):
        pifo = PIFO()
        pifo.push("a", 1)
        pifo.clear()
        assert pifo.is_empty

    def test_ranks_snapshot(self):
        pifo = PIFO()
        pifo.push("a", 3)
        pifo.push("b", 1)
        assert pifo.ranks() == [1, 3]

    def test_remove_predicate(self):
        pifo = PIFO()
        for i in range(6):
            pifo.push(i, i)
        removed = pifo.remove(lambda x: x % 2 == 0)
        assert removed == [0, 2, 4]
        assert list(pifo) == [1, 3, 5]

    def test_pop_entry_returns_rank(self):
        pifo = PIFO()
        pifo.push("a", 42)
        entry = pifo.pop_entry()
        assert entry.element == "a"
        assert entry.rank == 42

    def test_counters(self):
        pifo = PIFO()
        pifo.push("a", 1)
        pifo.push("b", 2)
        pifo.pop()
        assert pifo.pushes == 2
        assert pifo.pops == 1


class TestCalendarPIFO:
    def test_same_interface(self):
        pifo = CalendarPIFO()
        pifo.push("a", 2)
        pifo.push("b", 1)
        assert pifo.peek() == "b"
        assert pifo.pop() == "b"
        assert pifo.pop() == "a"

    def test_capacity(self):
        pifo = CalendarPIFO(capacity=1)
        pifo.push("a", 1)
        with pytest.raises(PIFOFullError):
            pifo.push("b", 1)

    def test_empty_raises(self):
        with pytest.raises(PIFOEmptyError):
            CalendarPIFO().pop()


# --------------------------------------------------------------------------- #
# Property-based tests                                                         #
# --------------------------------------------------------------------------- #

ranks_lists = st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=200)


@given(ranks_lists)
@settings(max_examples=200)
def test_property_dequeue_order_is_sorted_by_rank(ranks):
    """Dequeue order is non-decreasing in rank, whatever the push order."""
    pifo = PIFO()
    for index, rank in enumerate(ranks):
        pifo.push(index, rank)
    out_ranks = []
    while pifo:
        entry = pifo.pop_entry()
        out_ranks.append(entry.rank)
    assert out_ranks == sorted(out_ranks)


@given(ranks_lists)
@settings(max_examples=200)
def test_property_equal_ranks_preserve_push_order(ranks):
    """Among equal ranks, elements dequeue in push order (stability)."""
    pifo = PIFO()
    for index, rank in enumerate(ranks):
        pifo.push(index, rank)
    popped = []
    while pifo:
        popped.append(pifo.pop_entry())
    by_rank = {}
    for entry in popped:
        by_rank.setdefault(entry.rank, []).append(entry.element)
    for rank, elements in by_rank.items():
        assert elements == sorted(elements)


@given(ranks_lists)
@settings(max_examples=200)
def test_property_calendar_pifo_equivalent_to_reference(ranks):
    """The heap-backed PIFO dequeues in exactly the same order."""
    reference = PIFO()
    calendar = CalendarPIFO()
    for index, rank in enumerate(ranks):
        reference.push(index, rank)
        calendar.push(index, rank)
    ref_order = [reference.pop() for _ in range(len(ranks))]
    cal_order = [calendar.pop() for _ in range(len(ranks))]
    assert ref_order == cal_order


@given(
    st.lists(
        st.tuples(st.sampled_from(["push", "pop"]), st.integers(0, 100)),
        max_size=300,
    )
)
@settings(max_examples=100)
def test_property_mixed_push_pop_never_violates_order(operations):
    """Interleaved pushes and pops: every pop returns the current minimum."""
    pifo = PIFO()
    contents = []
    counter = 0
    for op, rank in operations:
        if op == "push":
            pifo.push(counter, rank)
            contents.append((rank, counter))
            counter += 1
        elif contents:
            entry = pifo.pop_entry()
            expected_rank = min(r for r, _ in contents)
            assert entry.rank == expected_rank
            contents.remove((entry.rank, entry.element))
    assert len(pifo) == len(contents)
