"""Tests for the reference programmable-scheduler engine."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    ArrivalSequenceTransaction,
    FIFOTransaction,
    STFQTransaction,
    TokenBucketShapingTransaction,
    build_fig3_tree,
)
from repro.core import (
    FlowIn,
    Packet,
    ProgrammableScheduler,
    ScheduleTree,
    TreeNode,
    single_node_tree,
)


def shaped_two_class_tree(rate_bps=8e6, burst_bytes=1000):
    """Root FIFO over two classes, the 'slow' class token-bucket shaped."""
    root = TreeNode(name="Root", scheduling=FIFOTransaction())
    fast = TreeNode(
        name="fast", predicate=FlowIn(["fast"]), scheduling=FIFOTransaction()
    )
    slow = TreeNode(
        name="slow",
        predicate=FlowIn(["slow"]),
        scheduling=FIFOTransaction(),
        shaping=TokenBucketShapingTransaction(rate_bps=rate_bps, burst_bytes=burst_bytes),
    )
    root.add_child(fast)
    root.add_child(slow)
    return ScheduleTree(root)


class TestWorkConservingEngine:
    def test_enqueue_dequeue_single_packet(self):
        scheduler = ProgrammableScheduler(single_node_tree(FIFOTransaction()))
        packet = Packet(flow="A", length=100)
        assert scheduler.enqueue(packet, now=1.0)
        assert len(scheduler) == 1
        out = scheduler.dequeue(now=2.0)
        assert out is packet
        assert out.enqueue_time == 1.0
        assert out.dequeue_time == 2.0
        assert scheduler.is_empty

    def test_dequeue_empty_returns_none(self):
        scheduler = ProgrammableScheduler(single_node_tree(FIFOTransaction()))
        assert scheduler.dequeue() is None

    def test_fifo_order_preserved(self):
        scheduler = ProgrammableScheduler(single_node_tree(ArrivalSequenceTransaction()))
        packets = [Packet(flow=f, length=100) for f in "ABCAB"]
        for packet in packets:
            scheduler.enqueue(packet)
        assert scheduler.drain() == packets

    def test_peek_matches_next_dequeue(self):
        scheduler = ProgrammableScheduler(single_node_tree(ArrivalSequenceTransaction()))
        first = Packet(flow="A", length=10)
        scheduler.enqueue(first)
        scheduler.enqueue(Packet(flow="B", length=10))
        assert scheduler.peek() is first
        assert scheduler.dequeue() is first

    def test_stats_counters(self):
        scheduler = ProgrammableScheduler(single_node_tree(FIFOTransaction()))
        for _ in range(3):
            scheduler.enqueue(Packet(flow="A", length=10))
        scheduler.dequeue()
        assert scheduler.stats.enqueued == 3
        assert scheduler.stats.dequeued == 1
        assert scheduler.stats.per_flow_enqueued["A"] == 3

    def test_drop_on_full_leaf_pifo(self):
        tree = single_node_tree(FIFOTransaction(), pifo_capacity=2)
        scheduler = ProgrammableScheduler(tree, drop_on_full=True)
        assert scheduler.enqueue(Packet(flow="A", length=10))
        assert scheduler.enqueue(Packet(flow="A", length=10))
        assert not scheduler.enqueue(Packet(flow="A", length=10))
        assert scheduler.stats.dropped == 1
        assert len(scheduler) == 2

    def test_hierarchy_one_element_per_level(self):
        scheduler = ProgrammableScheduler(build_fig3_tree())
        scheduler.enqueue(Packet(flow="A", length=100))
        # One element at the leaf (packet) and one reference at the root.
        assert scheduler.buffered_elements() == 2
        assert len(scheduler) == 1
        packet = scheduler.dequeue()
        assert packet.flow == "A"
        assert scheduler.buffered_elements() == 0

    def test_reset_restores_fresh_state(self):
        scheduler = ProgrammableScheduler(build_fig3_tree())
        scheduler.enqueue(Packet(flow="A", length=100))
        scheduler.reset()
        assert scheduler.is_empty
        assert scheduler.buffered_elements() == 0
        assert scheduler.stats.enqueued == 0

    def test_stfq_virtual_time_advances_on_dequeue(self):
        txn = STFQTransaction()
        scheduler = ProgrammableScheduler(single_node_tree(txn))
        for _ in range(3):
            scheduler.enqueue(Packet(flow="A", length=1000))
        scheduler.dequeue()
        scheduler.dequeue()
        assert txn.state["virtual_time"] > 0.0


class TestShapingEngine:
    def test_shaped_packets_not_eligible_before_release(self):
        scheduler = ProgrammableScheduler(shaped_two_class_tree(rate_bps=8e6,
                                                                burst_bytes=1000))
        # Burst of 1000 bytes is allowed; the second 1000-byte packet must
        # wait 1 ms at 8 Mbit/s.
        scheduler.enqueue(Packet(flow="slow", length=1000), now=0.0)
        scheduler.enqueue(Packet(flow="slow", length=1000), now=0.0)
        first = scheduler.dequeue(now=0.0)
        assert first is not None and first.flow == "slow"
        assert scheduler.dequeue(now=0.0) is None
        assert len(scheduler) == 1
        release = scheduler.next_shaping_release()
        assert release == pytest.approx(0.001, rel=1e-6)
        second = scheduler.dequeue(now=release)
        assert second is not None and second.flow == "slow"

    def test_unshaped_class_unaffected(self):
        scheduler = ProgrammableScheduler(shaped_two_class_tree())
        scheduler.enqueue(Packet(flow="fast", length=1500), now=0.0)
        assert scheduler.dequeue(now=0.0).flow == "fast"

    def test_next_shaping_release_none_when_unshaped(self):
        scheduler = ProgrammableScheduler(single_node_tree(FIFOTransaction()))
        scheduler.enqueue(Packet(flow="A", length=10))
        assert scheduler.next_shaping_release() is None

    def test_shaping_releases_processed_in_time_order(self):
        scheduler = ProgrammableScheduler(shaped_two_class_tree(rate_bps=8e6,
                                                                burst_bytes=1000))
        for _ in range(4):
            scheduler.enqueue(Packet(flow="slow", length=1000), now=0.0)
        # Release times are ~0, 1ms, 2ms, 3ms.  Processing far in the future
        # must release all four tokens, in time order.
        released = scheduler.process_shaping_releases(now=1.0)
        assert released == 4
        drained = scheduler.drain(now=1.0)
        assert [p.flow for p in drained] == ["slow"] * 4

    def test_drain_timed_advances_clock_to_releases(self):
        scheduler = ProgrammableScheduler(shaped_two_class_tree(rate_bps=8e6,
                                                                burst_bytes=1000))
        for _ in range(3):
            scheduler.enqueue(Packet(flow="slow", length=1000), now=0.0)
        packets = scheduler.drain_timed(until=0.01)
        assert len(packets) == 3
        assert packets[-1].dequeue_time == pytest.approx(0.002, rel=1e-6)

    def test_suspended_elements_counted_in_buffered_elements(self):
        scheduler = ProgrammableScheduler(shaped_two_class_tree(rate_bps=8e6,
                                                                burst_bytes=1000))
        scheduler.enqueue(Packet(flow="slow", length=1000), now=0.0)
        scheduler.enqueue(Packet(flow="slow", length=1000), now=0.0)
        # Leaf scheduling PIFO holds both packets; the shaping PIFO holds
        # both release tokens (no release has been processed yet).
        assert scheduler.buffered_elements() == 4
