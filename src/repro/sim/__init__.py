"""Discrete-event simulation substrate.

Provides the :class:`~repro.sim.simulator.Simulator` kernel, output ports
that drain any scheduler into a fixed-rate link, packet sources and sinks.
The behavioural experiments (HPFQ shares, shaping rate limits, Stop-and-Go
delay bounds, minimum-rate guarantees) are all built from these pieces.
"""

from .events import Event, EventQueue
from .link import OutputPort
from .simulator import Simulator
from .sink import FlowAggregate, PacketSink
from .source import PacketSource, chain_hops

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "OutputPort",
    "FlowAggregate",
    "PacketSink",
    "PacketSource",
    "chain_hops",
]
