"""Random Early Detection (RED) active queue management.

Section 6.1 cites RED as the representative dynamic buffer-management
scheme.  The implementation follows Floyd & Jacobson: an exponentially
weighted moving average of the queue occupancy, a linear drop-probability
ramp between a minimum and maximum threshold, and forced drops above the
maximum threshold.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.packet import Packet
from .buffer import SharedBuffer
from .thresholds import AdmissionPolicy


class REDPolicy(AdmissionPolicy):
    """RED admission policy over shared-buffer occupancy (in cells).

    Parameters
    ----------
    min_threshold_cells / max_threshold_cells:
        The averaged occupancy below which no packet is dropped and above
        which every packet is dropped.
    max_drop_probability:
        Drop probability as the average reaches ``max_threshold_cells``.
    weight:
        EWMA weight for the average queue size (Floyd & Jacobson suggest
        0.002 for per-packet updates).
    seed:
        Seed for the random drop decisions (deterministic experiments).
    """

    def __init__(
        self,
        min_threshold_cells: int,
        max_threshold_cells: int,
        max_drop_probability: float = 0.1,
        weight: float = 0.002,
        seed: int = 0,
    ) -> None:
        if not 0 < min_threshold_cells < max_threshold_cells:
            raise ValueError("need 0 < min_threshold < max_threshold")
        if not 0 < max_drop_probability <= 1:
            raise ValueError("max_drop_probability must be in (0, 1]")
        if not 0 < weight <= 1:
            raise ValueError("weight must be in (0, 1]")
        self.min_threshold_cells = min_threshold_cells
        self.max_threshold_cells = max_threshold_cells
        self.max_drop_probability = max_drop_probability
        self.weight = weight
        self.average_cells = 0.0
        self.random_drops = 0
        self.forced_drops = 0
        self._rng = random.Random(seed)

    def _update_average(self, occupancy_cells: int) -> None:
        self.average_cells = (
            (1 - self.weight) * self.average_cells + self.weight * occupancy_cells
        )

    def drop_probability(self) -> float:
        """Current drop probability given the averaged occupancy."""
        if self.average_cells < self.min_threshold_cells:
            return 0.0
        if self.average_cells >= self.max_threshold_cells:
            return 1.0
        span = self.max_threshold_cells - self.min_threshold_cells
        return (
            (self.average_cells - self.min_threshold_cells) / span
        ) * self.max_drop_probability

    def admit(self, buffer: SharedBuffer, packet: Packet, port: str = "") -> bool:
        if not buffer.can_admit(packet):
            return False
        self._update_average(buffer.used_cells)
        probability = self.drop_probability()
        if probability >= 1.0:
            self.forced_drops += 1
            return False
        if probability > 0.0 and self._rng.random() < probability:
            self.random_drops += 1
            return False
        return True
