"""Durable JSONL result store for campaign runs.

One line per completed run, appended as soon as the run's record is
available and flushed to disk immediately — an interrupted campaign loses
at most the line being written.  Records are plain JSON objects carrying
the run's full configuration (including its :meth:`RunSpec.fingerprint`)
next to its measured results, so the store is self-describing: resuming
needs no side state beyond the file, and reports can group by any factor
column straight off the records.

A torn trailing line (the classic crash artefact) is tolerated on load and
simply re-run on resume; corruption anywhere else raises, because silently
dropping completed results would make reports lie.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..exceptions import ReproError

#: Record fields that legitimately differ between two executions of the
#: same RunSpec (wall-clock and resource measurements, worker identity
#: and — under injected faults — how many attempts a run took).
#: Everything else must be bit-identical regardless of worker count —
#: the determinism tests strip exactly these keys before comparing.
#: ``events`` is deliberately *not* here: the simulator event count is a
#: pure function of the spec, so determinism checks cover it.
TIMING_FIELDS = ("wall_clock_s", "worker_pid", "attempts",
                 "rss_peak_bytes", "cpu_user_s", "cpu_sys_s", "events_per_s")

#: Run completed and produced a full result record.
STATUS_OK = "ok"
#: Run raised an exception on every attempt; record carries the error.
STATUS_FAILED = "failed"
#: Run exceeded its per-run timeout.
STATUS_TIMEOUT = "timeout"
#: The worker process executing the run died (crash / kill -9 / OOM).
STATUS_WORKER_LOST = "worker_lost"
#: The run repeatedly killed its executor (lease-queue poison pill) and
#: was taken out of circulation after ``max_attempts`` lease generations.
STATUS_QUARANTINED = "quarantined"

#: Statuses that count as "needs re-running" on resume.
FAILURE_STATUSES = frozenset({STATUS_FAILED, STATUS_TIMEOUT,
                              STATUS_WORKER_LOST, STATUS_QUARANTINED})

#: Fields every well-formed record must carry (results or failure alike).
REQUIRED_RECORD_FIELDS = ("run_id", "fingerprint", "campaign", "scenario",
                          "variant")


class StoreError(ReproError):
    """A result store file is unreadable or corrupt."""


def record_is_ok(record: Dict) -> bool:
    """Whether a record represents a completed (non-failed) run.

    Records written before failure tracking carry no ``status`` field and
    are all completed runs, so a missing status counts as ok.
    """
    return record.get("status", STATUS_OK) == STATUS_OK


def strip_timing(record: Dict) -> Dict:
    """A copy of ``record`` without the execution-timing fields."""
    return {key: value for key, value in record.items()
            if key not in TIMING_FIELDS}


def encode_record(record: Dict) -> str:
    """The record's canonical store line (without the trailing newline).

    This is the *single* encoding used everywhere a record meets disk —
    :meth:`ResultStore.append` delegates here, and warm-engine workers
    pre-encode their rows with it so the parent can append the bytes
    verbatim and a parallel store stays byte-identical to a serial one.
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """Append-only JSONL store of one record per completed run."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, record: Dict) -> None:
        """Append one record and flush it to disk.

        If the file ends in a torn line (interrupted previous append), the
        torn bytes are truncated first — appending after them would merge
        two records into one unparseable interior line.
        """
        self.append_line(encode_record(record))

    def append_line(self, line: str) -> None:
        """Append one pre-encoded canonical record line (and flush).

        The warm-engine fast path: workers encode records with
        :func:`encode_record` once, and the parent appends the line
        without re-serialising.  The caller is responsible for the line
        being one complete canonical JSON record without a newline.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._truncate_torn_tail()
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    def _truncate_torn_tail(self) -> None:
        """Drop trailing bytes after the last newline (a torn append).

        One exception: a trailing line that is complete JSON and only
        lost its newline (the truncation landed exactly on the closing
        brace) is a record ``load`` already counts — resume skips its
        spec — so it is finished with a newline, not thrown away.
        """
        if not self.path.exists():
            return
        with self.path.open("rb+") as handle:
            handle.seek(0, 2)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            # Scan backwards in chunks for the last newline.
            keep = 0
            position = size
            while position > 0:
                chunk_size = min(4096, position)
                position -= chunk_size
                handle.seek(position)
                chunk = handle.read(chunk_size)
                newline = chunk.rfind(b"\n")
                if newline != -1:
                    keep = position + newline + 1
                    break
            handle.seek(keep)
            tail = handle.read(size - keep)
            try:
                json.loads(tail.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                handle.truncate(keep)
            else:
                handle.seek(0, 2)
                handle.write(b"\n")

    def _lines(self) -> Iterator[str]:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            yield from handle

    def _iter_positioned_lines(self) -> Iterator[Tuple[Tuple[int, int, bytes], bool]]:
        """Stream ``((line_no, offset, raw), is_last)`` without buffering.

        Mirrors :meth:`_scan`'s coordinates and trailing-blank handling —
        trailing blank lines are dropped, interior ones are surfaced — but
        holds at most one record line in memory, so multi-gigabyte stores
        stream.  ``is_last`` marks the final surfaced line (the only
        position where a torn record is tolerated).
        """
        if not self.path.exists():
            return
        hold: Optional[Tuple[int, int, bytes]] = None
        blanks: List[Tuple[int, int, bytes]] = []
        offset = 0
        with self.path.open("rb") as handle:
            for index, raw in enumerate(handle):
                item = (index + 1, offset, raw.rstrip(b"\r\n"))
                offset += len(raw)
                if not item[2].strip():
                    blanks.append(item)
                    continue
                if hold is not None:
                    yield hold, False
                for blank in blanks:
                    yield blank, False
                blanks = []
                hold = item
        if hold is not None:
            yield hold, True

    def iter_records(self) -> Iterator[Dict]:
        """Stream records in append order, holding one line at a time.

        Same tolerance contract as :meth:`load`: an unparseable *final*
        line is dropped (interrupted append), an unparseable line anywhere
        else raises :class:`StoreError` with its 1-based line number and
        byte offset.  This is what report streaming consumes — a store of
        millions of records never materialises as a list.
        """
        for (line_no, byte_offset, raw), is_last in self._iter_positioned_lines():
            try:
                yield json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                if is_last:
                    return  # torn tail from an interrupt; resume re-runs it
                raise StoreError(
                    f"{self.path}: corrupt record on line {line_no} "
                    f"(byte offset {byte_offset}): {exc}"
                ) from exc

    def iter_effective_records(self) -> Iterator[Dict]:
        """Stream records with re-runs deduplicated (last record wins).

        Two passes over the file: the first builds a fingerprint ->
        last-position index (ints only — memory is O(distinct runs), not
        O(file)), the second yields exactly the surviving records in
        append order.  The streamed sequence equals
        :meth:`effective_records`.
        """
        last_index: Dict[str, int] = {}
        for index, record in enumerate(self.iter_records()):
            fingerprint = record.get("fingerprint")
            if fingerprint is not None:
                last_index[fingerprint] = index
        for index, record in enumerate(self.iter_records()):
            fingerprint = record.get("fingerprint")
            if fingerprint is None or last_index[fingerprint] == index:
                yield record

    def _scan(self) -> List[Tuple[int, int, bytes]]:
        """Raw lines with their positions: ``(line_no, byte_offset, bytes)``.

        ``line_no`` is 1-based, ``byte_offset`` is where the line starts in
        the file — the coordinates corruption diagnostics report so a bad
        record can be located with ``dd``/``sed`` directly.  Trailing blank
        lines are dropped.
        """
        if not self.path.exists():
            return []
        out: List[Tuple[int, int, bytes]] = []
        offset = 0
        with self.path.open("rb") as handle:
            for index, raw in enumerate(handle):
                out.append((index + 1, offset, raw.rstrip(b"\r\n")))
                offset += len(raw)
        while out and not out[-1][2].strip():
            out.pop()
        return out

    def load(self) -> List[Dict]:
        """All records in append order.

        An unparseable *final* line is dropped (interrupted append); an
        unparseable line anywhere else raises :class:`StoreError` naming
        the 1-based line number and the byte offset of the bad record.
        """
        return list(self.iter_records())

    def fingerprints(self) -> Set[str]:
        """Fingerprints of every run recorded in the store (any status)."""
        return {record["fingerprint"] for record in self.load()
                if "fingerprint" in record}

    def completed_fingerprints(self) -> Set[str]:
        """Fingerprints whose *latest* record completed successfully.

        This is what resume skips: a spec whose last attempt failed, timed
        out or lost its worker is re-run, while a failure superseded by a
        later successful record stays skipped.
        """
        return {fingerprint
                for fingerprint, record in self.latest_by_fingerprint().items()
                if record_is_ok(record)}

    def verify_records(self, expected_fingerprints:
                       Optional[Set[str]] = None) -> Dict:
        """Check every record's schema and fingerprint without running.

        Returns a summary dict: record/ok/failed counts and a list of
        human-readable issue strings (missing required fields, fingerprint
        mismatches against the record's own embedded config, corrupt
        lines).  ``expected_fingerprints`` (when given — e.g. a campaign's
        expanded run table) additionally reports coverage: how many
        expected runs the store is missing.
        """
        from .spec import RunSpec

        issues: List[str] = []
        records: List[Dict] = []
        lines = self._scan()
        for position, (line_no, offset, raw) in enumerate(lines):
            try:
                records.append(json.loads(raw.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                label = ("torn trailing line"
                         if position == len(lines) - 1 else "corrupt record")
                issues.append(f"line {line_no} (byte offset {offset}): "
                              f"{label}: {exc}")
        ok = failed = 0
        for index, record in enumerate(records):
            where = f"record {index + 1}"
            missing = [key for key in REQUIRED_RECORD_FIELDS
                       if key not in record]
            if missing:
                issues.append(f"{where}: missing fields {missing}")
                continue
            if record_is_ok(record):
                ok += 1
            else:
                failed += 1
            try:
                spec = RunSpec.from_dict(record)
            except Exception as exc:  # malformed config columns
                issues.append(f"{where} ({record['run_id']}): "
                              f"unreadable config: {exc}")
                continue
            if spec.fingerprint() != record["fingerprint"]:
                issues.append(
                    f"{where} ({record['run_id']}): fingerprint mismatch: "
                    f"stored {record['fingerprint']} != computed "
                    f"{spec.fingerprint()}"
                )
        summary = {
            "path": str(self.path),
            "records": len(records),
            "ok": ok,
            "failed": failed,
            "issues": issues,
        }
        if expected_fingerprints is not None:
            present = {r.get("fingerprint") for r in records}
            missing_runs = expected_fingerprints - present
            summary["expected"] = len(expected_fingerprints)
            summary["missing"] = len(missing_runs)
        return summary

    def latest_by_fingerprint(self) -> Dict[str, Dict]:
        """Last record per fingerprint (re-runs overwrite logically)."""
        latest: Dict[str, Dict] = {}
        for record in self.load():
            fingerprint = record.get("fingerprint")
            if fingerprint is not None:
                latest[fingerprint] = record
        return latest

    def effective_records(self) -> List[Dict]:
        """Records with re-runs deduplicated: the last record wins per
        fingerprint.  This is what reports should aggregate — running a
        campaign twice into the same store must not double its counts."""
        records = self.load()
        last_index: Dict[str, int] = {}
        for index, record in enumerate(records):
            fingerprint = record.get("fingerprint")
            if fingerprint is not None:
                last_index[fingerprint] = index
        return [
            record for index, record in enumerate(records)
            if (record.get("fingerprint") is None
                or last_index[record["fingerprint"]] == index)
        ]

    def clear(self) -> None:
        if self.path.exists():
            self.path.unlink()

    def __len__(self) -> int:
        return len(self.load())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.path)!r})"
