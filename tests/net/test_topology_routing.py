"""Tests for the network topology graph and the static routing pass."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.net import (
    Network,
    build_forwarding_tables,
    dumbbell,
    hop_distances,
    leaf_spine,
    linear_chain,
    next_hops,
    path,
)


class TestNetwork:
    def test_nodes_and_links(self):
        net = Network()
        net.add_host("h0")
        net.add_switch("s0")
        link = net.add_link("h0", "s0", rate_bps=1e9, propagation_delay=1e-6)
        assert link.rate_bps == 1e9
        assert net.hosts() == ["h0"]
        assert net.switches() == ["s0"]
        assert net.neighbors("h0") == ["s0"]
        # Bidirectional by default: the reverse direction exists too.
        assert net.link("s0", "h0").rate_bps == 1e9

    def test_unidirectional_link(self):
        net = Network()
        net.add_switch("a")
        net.add_switch("b")
        net.add_link("a", "b", bidirectional=False)
        assert net.neighbors("a") == ["b"]
        assert net.neighbors("b") == []

    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_host("x")
        with pytest.raises(TopologyError):
            net.add_switch("x")

    def test_link_validation(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        with pytest.raises(TopologyError):
            net.add_link("a", "missing")
        with pytest.raises(TopologyError):
            net.add_link("a", "a")
        net.add_link("a", "b")
        with pytest.raises(TopologyError):
            net.add_link("a", "b")
        with pytest.raises(TopologyError):
            net.add_link("a", "b", rate_bps=0)

    def test_validate_rejects_disconnected(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_switch("s")
        net.add_link("a", "s")
        with pytest.raises(TopologyError, match="no links"):
            net.validate()
        net.add_link("b", "s")
        net.validate()
        net.add_host("lonely")
        with pytest.raises(TopologyError):
            net.validate()


class TestBuilders:
    def test_linear_chain_shape(self):
        net = linear_chain(3, cross_hosts=True)
        assert net.switches() == ["s1", "s2", "s3"]
        assert sorted(net.hosts()) == ["c1", "c2", "c3", "h_dst", "h_src"]
        net.validate()
        assert path(net, "h_src", "h_dst") == ["h_src", "s1", "s2", "s3", "h_dst"]

    def test_dumbbell_shape(self):
        net = dumbbell(hosts_per_side=2, bottleneck_rate_bps=1e6)
        net.validate()
        assert net.link("s_left", "s_right").rate_bps == 1e6
        assert path(net, "l0", "r1") == ["l0", "s_left", "s_right", "r1"]

    def test_leaf_spine_shape(self):
        net = leaf_spine(leaves=4, spines=2, hosts_per_leaf=2)
        net.validate()
        assert len(net.switches()) == 6
        assert len(net.hosts()) == 8
        # Cross-leaf traffic goes leaf -> spine -> leaf: 4 node hops.
        assert len(path(net, "h0_0", "h2_0")) == 5

    def test_builder_validation(self):
        with pytest.raises(TopologyError):
            linear_chain(0)
        with pytest.raises(TopologyError):
            leaf_spine(leaves=1)


class TestRouting:
    def test_hop_distances(self):
        net = linear_chain(3)
        distances = hop_distances(net, "h_dst")
        assert distances["h_dst"] == 0
        assert distances["s3"] == 1
        assert distances["s1"] == 3
        assert distances["h_src"] == 4

    def test_next_hops_single_path(self):
        net = linear_chain(2)
        assert next_hops(net, "s1", "h_dst") == ["s2"]
        assert next_hops(net, "h_dst", "h_dst") == []

    def test_ecmp_next_hops_in_leaf_spine(self):
        net = leaf_spine(leaves=2, spines=3, hosts_per_leaf=1)
        hops = next_hops(net, "leaf0", "h1_0")
        assert hops == ["spine0", "spine1", "spine2"]

    def test_forwarding_tables_non_ecmp_pick_one(self):
        net = leaf_spine(leaves=2, spines=3, hosts_per_leaf=1)
        tables = build_forwarding_tables(net, ecmp=False)
        assert tables["leaf0"]["h1_0"] == ["spine0"]
        ecmp_tables = build_forwarding_tables(net, ecmp=True)
        assert ecmp_tables["leaf0"]["h1_0"] == ["spine0", "spine1", "spine2"]

    def test_tables_are_deterministic(self):
        net = leaf_spine(leaves=3, spines=2, hosts_per_leaf=2)
        assert build_forwarding_tables(net, ecmp=True) == build_forwarding_tables(
            net, ecmp=True
        )

    def test_hosts_are_never_transit_nodes(self):
        # A multi-homed host m sits on the 2-hop "shortcut" between s1 and
        # s2; the switch path runs through s3.  Routing must take the
        # all-switch detour: end hosts do not forward transit traffic.
        net = Network()
        for switch in ("s1", "s2", "s3"):
            net.add_switch(switch)
        for host in ("a", "b", "m"):
            net.add_host(host)
        net.add_link("a", "s1")
        net.add_link("b", "s2")
        net.add_link("m", "s1")
        net.add_link("m", "s2")
        net.add_link("s1", "s3")
        net.add_link("s3", "s2")
        assert path(net, "a", "b") == ["a", "s1", "s3", "s2", "b"]
        tables = build_forwarding_tables(net, ecmp=True)
        assert tables["s1"]["b"] == ["s3"]
        # ... while m itself remains reachable as a destination.
        assert path(net, "a", "m") == ["a", "s1", "m"]

    def test_destination_reachable_only_through_a_host_raises(self):
        net = Network()
        net.add_switch("s")
        net.add_host("a")
        net.add_host("middle")
        net.add_host("far")
        net.add_link("a", "s")
        net.add_link("middle", "s")
        net.add_link("far", "middle")  # only path to "far" transits a host
        with pytest.raises(TopologyError):
            build_forwarding_tables(net, destinations=["far"])

    def test_unreachable_destination_raises(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_switch("s")
        net.add_link("a", "s")
        net.add_link("s", "b", bidirectional=False)
        # b cannot reach anything upstream; routing toward "a" fails from b.
        with pytest.raises(TopologyError):
            build_forwarding_tables(net, destinations=["a"])
