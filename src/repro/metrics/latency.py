"""Delay statistics: means, percentiles, and tail summaries."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.packet import Packet


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile (``fraction`` in [0, 1])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must lie in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


@dataclass
class DelaySummary:
    """Summary statistics of a delay sample."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "DelaySummary":
        if not values:
            raise ValueError("cannot summarise an empty delay sample")
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            minimum=min(values),
            maximum=max(values),
            p50=percentile(values, 0.50),
            p95=percentile(values, 0.95),
            p99=percentile(values, 0.99),
        )


def queueing_delays(packets: Iterable[Packet]) -> List[float]:
    """Scheduler queueing delays (enqueue to dequeue) of the given packets."""
    return [p.queueing_delay for p in packets if p.queueing_delay is not None]


def total_delays(packets: Iterable[Packet]) -> List[float]:
    """Arrival-to-departure delays of the given packets."""
    return [p.total_delay for p in packets if p.total_delay is not None]


def delay_summary(packets: Iterable[Packet], flow: Optional[str] = None) -> DelaySummary:
    """Summarise total delays, optionally restricted to one flow."""
    selected = [p for p in packets if flow is None or p.flow == flow]
    return DelaySummary.from_values(total_delays(selected))


def delays_by_flow(packets: Iterable[Packet]) -> Dict[str, DelaySummary]:
    """Per-flow delay summaries."""
    grouped: Dict[str, List[Packet]] = {}
    for packet in packets:
        grouped.setdefault(packet.flow, []).append(packet)
    return {
        flow: DelaySummary.from_values(total_delays(flow_packets))
        for flow, flow_packets in grouped.items()
        if total_delays(flow_packets)
    }
