"""Ablation (lineage) — exact PIFO vs the SP-PIFO approximation.

The paper builds an *exact* PIFO in hardware; the best-known follow-on,
SP-PIFO, approximates it with a handful of strict-priority FIFO queues and
adaptive queue bounds.  This ablation quantifies what the exactness buys on
two workloads:

* a **stationary** rank distribution (uniform ranks), the regime SP-PIFO
  targets: its inversions shrink steadily as queues are added but stay above
  the exact PIFO's;
* a **drifting** rank distribution (STFQ virtual times, which grow without
  bound): the bound adaptation chases the drift and whole-queue draining
  reorders old against new ranks, so extra queues stop helping — the exact
  PIFO is unaffected because it sorts true ranks, not bounds.
"""

from __future__ import annotations

import random

from conftest import report

from repro.extensions import compare_with_exact_pifo

ELEMENTS = 4_000
QUEUE_COUNTS = [1, 2, 4, 8, 16, 32]
DRAIN_EVERY = 2


def stationary_workload(seed: int = 7):
    """Ranks drawn i.i.d. uniform — SP-PIFO's intended operating regime."""
    rng = random.Random(seed)
    return [(i, rng.uniform(0.0, 100.0)) for i in range(ELEMENTS)]


def drifting_workload(seed: int = 42):
    """STFQ-like per-flow virtual finish times, which drift upward forever."""
    rng = random.Random(seed)
    finish = {f"f{i}": 0.0 for i in range(16)}
    arrivals = []
    for index in range(ELEMENTS):
        flow = rng.choice(list(finish))
        finish[flow] += rng.uniform(0.5, 1.5)
        arrivals.append((index, finish[flow]))
    return arrivals


def _sweep(arrivals):
    return [
        compare_with_exact_pifo(arrivals, num_queues=queues, drain_every=DRAIN_EVERY)
        for queues in QUEUE_COUNTS
    ]


def _rows(reports, label):
    rows = [
        {
            "workload": label,
            "design": f"SP-PIFO ({r.num_queues} queues)",
            "inversions": r.inversions,
            "unpifoness": r.unpifoness,
            "mean_rank_error": r.mean_rank_error,
        }
        for r in reports
    ]
    rows.append({
        "workload": label,
        "design": "exact PIFO (this paper)",
        "inversions": reports[0].exact_inversions,
        "unpifoness": 0.0,
        "mean_rank_error": 0.0,
    })
    return rows


def test_ablation_sp_pifo_stationary_ranks(benchmark):
    arrivals = stationary_workload()
    reports = benchmark(_sweep, arrivals)
    report("Ablation: exact PIFO vs SP-PIFO (stationary uniform ranks)",
           _rows(reports, "uniform"))

    by_queues = {r.num_queues: r.inversions for r in reports}
    exact = reports[0].exact_inversions
    # More queues approximate the PIFO monotonically better ...
    assert by_queues[32] <= by_queues[8] <= by_queues[2] <= by_queues[1]
    # ... but even 32 queues remain above the exact PIFO, which only suffers
    # the inversions forced by interleaved dequeues.
    assert exact <= by_queues[32]


def test_ablation_sp_pifo_drifting_ranks(benchmark):
    arrivals = drifting_workload()
    reports = benchmark(_sweep, arrivals)
    report("Ablation: exact PIFO vs SP-PIFO (drifting STFQ virtual times)",
           _rows(reports, "drifting"))

    unpifoness = [r.unpifoness for r in reports]
    exact = reports[0].exact_inversions
    # The adjacent-inversion metric still improves with queue count ...
    assert all(a >= b - 1e-12 for a, b in zip(unpifoness, unpifoness[1:]))
    # ... yet every configuration is orders of magnitude above the exact
    # PIFO: bound adaptation cannot follow the unbounded rank drift.
    assert all(exact < r.inversions for r in reports)
    assert min(r.inversions for r in reports) > 100 * max(exact, 1)
