"""Whole-tree kernel compilation: fuse a scheduling hierarchy into one
generated per-shape kernel.

:mod:`repro.lang.compiler` removes the per-packet AST walk from individual
transaction programs, but the end-to-end datapath still pays interpreted
glue *between* the compiled fragments: the tree walk, predicate matching,
context bookkeeping, ``on_dequeue`` dispatch and the PIFO backend's virtual
calls.  This module removes that glue the same way the paper's compiler
specialises a whole scheduling tree into hardware: given a
:class:`~repro.core.scheduler.ProgrammableScheduler`, it emits a single
generated-Python **kernel** — one ``enqueue`` and one ``dequeue`` closure —
with the full per-packet path inlined into straight-line code:

* the leaf-to-root transaction walk is unrolled per matching leaf (the
  predicate descent becomes an ``if``/``elif`` chain over the static tree
  shape, including the paper's disjointness check);
* rank computation is specialised per transaction class — FIFO, arrival
  sequence, LSTF and lang-backed programs are inlined; anything else falls
  back to a plain call, still inside the fused walk;
* PIFO pushes and the head pop are inlined per backend (sorted list,
  calendar heap, bucket queue, quantised bucket queue);
* the reused :class:`~repro.core.transaction.TransactionContext` is only
  populated on paths whose transactions can observe it, and the
  ``on_dequeue`` hook dispatch disappears entirely for hook-less trees.

**Caching.**  Kernels are compiled once per *shape signature* — the tree
structure plus, per node, the transaction class (and, for lang-backed
transactions, the program-AST signature reused from
:func:`repro.lang.compiler.compile_cached`), the PIFO backend class, the
predicate class and the hook/flow-fn flags.  Two schedulers with the same
shape share one code object; each instantiates its own closures over its
own node state, so state stays fully independent.

**Staleness guards.**  The closures hoist node PIFOs, transaction state and
the stats object into cells.  Sanctioned mutation points
(``scheduler.reset()`` / ``use_backend()``) rebuild the kernel explicitly;
everything else — ``tree.use_backend()`` behind the scheduler's back, a
direct ``transaction.reset()``, ``add_child`` after construction — is caught
by a per-call identity guard that re-specialises on the next packet, so a
stale kernel can never produce wrong results.

**Fallback.**  Trees carrying shaping transactions (the suspend/resume walk
with the global shaping calendar) stay on the interpreted hot path:
:func:`compile_tree_kernel` raises :class:`TreeKernelError` and the
scheduler records the reason in ``kernel_fallback_reason``.
"""

from __future__ import annotations

import itertools
import linecache
from bisect import bisect_right
from collections import deque
from heapq import heappop, heappush
from math import floor
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.packet import EMPTY_FIELDS, Packet
from ..obs import metrics as obs_metrics
from ..core.pifo import (
    BucketedPIFO,
    CalendarPIFO,
    PIFOEntry,
    QuantizedBucketedPIFO,
    SortedListPIFO,
)
from ..core.predicates import ClassEquals, FlowEquals, MatchAll, MatchNone
from ..core.tree import TreeNode, _packet_flow
from ..exceptions import PIFOFullError, TreeConfigurationError
from .compiler import CompileError, _signature as _program_signature
from .errors import RuntimeLangError


class TreeKernelError(CompileError):
    """The scheduler's tree cannot be fused into a generated kernel."""


class TreeKernel:
    """A compiled whole-tree kernel: fused enqueue/dequeue closures.

    ``transfer(packet, now)`` is the third entry point: enqueue followed by
    an immediate dequeue, for callers (an idle output port) that transmit
    the packet in the same instant.  On a single-node tree that is known to
    be empty it runs *cut-through*: every counter, stamp and hook fires
    exactly as the enqueue/dequeue pair would, but the PIFO's backing data
    structure is never touched — the packet goes straight from rank
    computation to the transmitter.  Returns the head packet, or ``None``
    when the enqueue was rejected.
    """

    __slots__ = ("enqueue", "dequeue", "transfer", "signature", "source",
                 "filename")

    def __init__(self, enqueue, dequeue, transfer, signature, source,
                 filename) -> None:
        self.enqueue = enqueue
        self.dequeue = dequeue
        self.transfer = transfer
        self.signature = signature
        self.source = source
        self.filename = filename


#: signature -> (factory, source, filename).  Bounded like the program cache.
_CACHE: Dict[Tuple, Tuple[Callable, str, str]] = {}
_CACHE_CAPACITY = 256
_stats = {"hits": 0, "misses": 0, "installs": 0, "fallbacks": 0}
_filename_counter = itertools.count()


def kernel_cache_info() -> Dict[str, int]:
    """Cache and install counters (reported by ``repro perf``)."""
    return dict(_stats, size=len(_CACHE))


def clear_kernel_cache() -> None:
    """Drop every cached kernel factory and reset the counters."""
    _CACHE.clear()
    for key in _stats:
        _stats[key] = 0


# The cache counters predate the metrics registry and accumulate whether
# or not one is enabled; publishing them as a global source makes every
# registry snapshot (and ``repro perf``) read the same numbers.
obs_metrics.register_global_source("lang.kernel_cache", kernel_cache_info)


# --------------------------------------------------------------------------- #
# Shape signature                                                             #
# --------------------------------------------------------------------------- #

_PIFO_TAGS = {
    SortedListPIFO: "sorted",
    CalendarPIFO: "calendar",
    BucketedPIFO: "bucketed",
    QuantizedBucketedPIFO: "quantized",
}

# Imported lazily: the bridge pulls in the hardware analyser, which this
# module must not require just to fuse hand-written transaction trees.
_lang_tx_types: Optional[tuple] = None


def _lang_types() -> tuple:
    global _lang_tx_types
    if _lang_tx_types is None:
        from .bridge import CompiledSchedulingTransaction

        _lang_tx_types = (CompiledSchedulingTransaction,)
    return _lang_tx_types


def _tx_tag(tx) -> Tuple:
    """Specialisation tag for a scheduling transaction (part of the key)."""
    from ..algorithms.fifo import ArrivalSequenceTransaction, FIFOTransaction
    from ..algorithms.lstf import LSTFTransaction

    cls = type(tx)
    if cls is FIFOTransaction:
        return ("fifo",)
    if cls is ArrivalSequenceTransaction:
        return ("arrival_seq",)
    if cls is LSTFTransaction:
        return ("lstf", tx.slack_field, tx.prev_wait_field)
    if cls in _lang_types():
        # Reuse the program-compiler's cache keying: same program AST and
        # environment signature -> same generated rank code.
        try:
            program_key = _program_signature(
                tx.program, tx._initial_state, tx.params, ()
            )
        except TypeError:
            # Unhashable parameter value: key on the instance instead (the
            # kernel is still correct, just not shared across schedulers).
            program_key = id(tx)
        return ("lang", tx.program_name, program_key)
    return ("generic", cls.__qualname__)


def _pred_tag(pred) -> Tuple:
    cls = type(pred)
    if cls is MatchAll:
        return ("all",)
    if cls is MatchNone:
        return ("none",)
    if cls is ClassEquals:
        return ("class_eq", pred.label)
    if cls is FlowEquals:
        return ("flow_eq", pred.flow)
    return ("generic", cls.__qualname__)


def _node_signature(node: TreeNode) -> Tuple:
    pifo = node.scheduling_pifo
    return (
        _tx_tag(node.scheduling),
        _PIFO_TAGS.get(type(pifo), "generic"),
        pifo.capacity is not None,
        node.needs_dequeue_hook,
        node.flow_fn is _packet_flow,
        _pred_tag(node.predicate),
        len(node.children),
    )


def tree_signature(scheduler) -> Tuple:
    """Shape signature of a scheduler's tree; raises on unsupported trees."""
    nodes = scheduler.tree.nodes()
    for node in nodes:
        if node.shaping is not None:
            raise TreeKernelError(
                f"node {node.name!r} carries a shaping transaction; the "
                "suspend/resume walk stays on the interpreted path"
            )
    return tuple(_node_signature(node) for node in nodes)


# --------------------------------------------------------------------------- #
# Code generation                                                             #
# --------------------------------------------------------------------------- #


class _Emitter:
    """Indentation-tracked line sink for the generated factory source."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def w(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _ctx_needed(tag: Tuple) -> bool:
    """Whether the node's rank code reads the shared enqueue context."""
    return tag[0] in ("lang", "generic")


def _emit_rank(em: _Emitter, ind: int, i: int, tag: Tuple) -> None:
    """Emit statements computing ``rank`` for node ``i`` (element = packet)."""
    kind = tag[0]
    if kind == "fifo":
        em.w(ind, f"tx{i}.executions += 1")
        em.w(ind, "rank = time_now")
    elif kind == "arrival_seq":
        em.w(ind, f"tx{i}.executions += 1")
        em.w(ind, f"rank = st{i}['counter']")
        em.w(ind, f"st{i}['counter'] = rank + 1")
    elif kind == "lstf":
        slack, prev = tag[1], tag[2]
        em.w(ind, f"tx{i}.executions += 1")
        em.w(ind, "fields = packet.fields")
        em.w(ind, f"slack = fields.get({slack!r})")
        em.w(ind, "if slack is None:")
        em.w(ind + 1, f"tx{i}.compute_rank(packet, None)")
        em.w(ind, f"rank = slack - fields.get({prev!r}, 0.0)")
        em.w(ind, "if fields is _EMPTY_FIELDS:")
        em.w(ind + 1, f"packet.fields = {{{slack!r}: rank, {prev!r}: 0.0}}")
        em.w(ind, "else:")
        em.w(ind + 1, f"fields[{slack!r}] = rank")
        em.w(ind + 1, f"fields[{prev!r}] = 0.0")
    elif kind == "lang":
        name = tag[1]
        msg = (
            f"scheduling program {name!r} finished without assigning p.rank"
        )
        em.w(ind, f"tx{i}.executions += 1")
        em.w(ind, f"env = tx{i}._env")
        em.w(ind, f"if env is None or env.state is not tx{i}.state:")
        em.w(ind + 1, f"env = tx{i}._environment()")
        em.w(ind, f"res = x{i}(packet, ectx, env)")
        em.w(ind, "for fname, value in res.packet_writes.items():")
        em.w(ind + 1, "if fname != 'rank' and fname != 'send_time':")
        em.w(ind + 2, "packet.set(fname, value)")
        em.w(ind, f"tx{i}.last_result = res")
        em.w(ind, "rank = res.rank")
        em.w(ind, "if rank is None:")
        em.w(ind + 1, f"raise _RuntimeLangError({msg!r})")
    else:
        em.w(ind, f"rank = tx{i}(packet, ectx)")


def _emit_push(em: _Emitter, ind: int, i: int, sig: Tuple, element: str) -> None:
    """Emit a fused ``p{i}.push(element, rank)`` for the node's backend."""
    backend, has_cap = sig[1], sig[2]
    full = (
        f"PIFO %r is full (capacity=%s)' % (p{i}.name, p{i}.capacity)"
    )
    if backend == "sorted":
        em.w(ind, f"entries = p{i}._entries")
        if has_cap:
            em.w(ind, f"if len(entries) - p{i}._front >= c{i}:")
            em.w(ind + 1, f"p{i}.drops += 1")
            em.w(ind + 1, f"raise _PIFOFullError('{full})")
        em.w(ind, f"seq = p{i}._seq")
        em.w(ind, f"p{i}._seq = seq + 1")
        em.w(ind, "key = (rank, seq)")
        em.w(ind, f"keys = p{i}._keys")
        em.w(ind, "if not keys or key >= keys[-1]:")
        em.w(ind + 1, "keys.append(key)")
        em.w(ind + 1, f"entries.append(_PIFOEntry(rank, seq, {element}))")
        em.w(ind, "else:")
        em.w(ind + 1, f"idx = _bisect_right(keys, key, lo=p{i}._front)")
        em.w(ind + 1, "keys.insert(idx, key)")
        em.w(ind + 1, f"entries.insert(idx, _PIFOEntry(rank, seq, {element}))")
        em.w(ind, f"p{i}.pushes += 1")
    elif backend in ("bucketed", "quantized"):
        if has_cap:
            em.w(ind, f"if p{i}._size >= c{i}:")
            em.w(ind + 1, f"p{i}.drops += 1")
            em.w(ind + 1, f"raise _PIFOFullError('{full})")
        if backend == "bucketed":
            em.w(ind, "key = int(rank)")
            em.w(ind, "if key != rank:")
            em.w(
                ind + 1,
                f"raise ValueError('BucketedPIFO %r requires integer ranks, "
                f"got %r' % (p{i}.name, rank))",
            )
        else:
            em.w(ind, f"key = _floor(rank / qm{i})")
        em.w(ind, f"bks = p{i}._buckets")
        em.w(ind, "bucket = bks.get(key)")
        em.w(ind, "if bucket is None:")
        em.w(ind + 1, "bucket = bks[key] = _deque()")
        em.w(ind + 1, f"_heappush(p{i}._rank_heap, key)")
        em.w(ind, f"seq = p{i}._seq")
        em.w(ind, f"p{i}._seq = seq + 1")
        em.w(ind, f"bucket.append(_PIFOEntry(rank, seq, {element}))")
        em.w(ind, f"p{i}._size += 1")
        em.w(ind, f"p{i}.pushes += 1")
    elif backend == "calendar":
        if has_cap:
            em.w(ind, f"if len(p{i}._heap) >= c{i}:")
            em.w(ind + 1, f"p{i}.drops += 1")
            em.w(ind + 1, f"raise _PIFOFullError('{full})")
        em.w(ind, f"seq = p{i}._seq")
        em.w(ind, f"p{i}._seq = seq + 1")
        em.w(ind, f"_heappush(p{i}._heap, (rank, seq, _PIFOEntry(rank, seq, {element})))")
        em.w(ind, f"p{i}.pushes += 1")
    else:
        em.w(ind, f"p{i}.push({element}, rank)")


def _emit_root_pop(em: _Emitter, ind: int, sig: Tuple) -> None:
    """Emit the root head pop into ``entry`` (or ``return None`` if empty)."""
    backend = sig[1]
    if backend == "sorted":
        em.w(ind, "entries = p0._entries")
        em.w(ind, "front = p0._front")
        em.w(ind, "if front >= len(entries):")
        em.w(ind + 1, "return None")
        em.w(ind, "entry = entries[front]")
        em.w(ind, "entries[front] = None")
        em.w(ind, "front += 1")
        em.w(ind, "if front == len(entries):")
        em.w(ind + 1, "entries.clear()")
        em.w(ind + 1, "p0._keys.clear()")
        em.w(ind + 1, "p0._front = 0")
        em.w(ind, f"elif front >= {SortedListPIFO._COMPACT_MIN} and front * 2 >= len(entries):")
        em.w(ind + 1, "del entries[:front]")
        em.w(ind + 1, "del p0._keys[:front]")
        em.w(ind + 1, "p0._front = 0")
        em.w(ind, "else:")
        em.w(ind + 1, "p0._front = front")
        em.w(ind, "p0.pops += 1")
    elif backend in ("bucketed", "quantized"):
        em.w(ind, "if not p0._size:")
        em.w(ind + 1, "return None")
        em.w(ind, "rh = p0._rank_heap")
        em.w(ind, "bks = p0._buckets")
        em.w(ind, "while True:")
        em.w(ind + 1, "key = rh[0]")
        em.w(ind + 1, "bucket = bks.get(key)")
        em.w(ind + 1, "if bucket:")
        em.w(ind + 2, "break")
        em.w(ind + 1, "_heappop(rh)")
        em.w(ind + 1, "bks.pop(key, None)")
        em.w(ind, "entry = bucket.popleft()")
        em.w(ind, "p0._size -= 1")
        em.w(ind, "if not bucket:")
        em.w(ind + 1, "del bks[key]")
        em.w(ind, "p0.pops += 1")
    elif backend == "calendar":
        em.w(ind, "heap = p0._heap")
        em.w(ind, "if not heap:")
        em.w(ind + 1, "return None")
        em.w(ind, "entry = _heappop(heap)[2]")
        em.w(ind, "p0.pops += 1")
    else:
        em.w(ind, "if p0.is_empty:")
        em.w(ind + 1, "return None")
        em.w(ind, "entry = p0.pop_entry()")


def _pred_expr(i: int, tag: Tuple) -> str:
    kind = tag[0]
    if kind == "all":
        return "True"
    if kind == "none":
        return "False"
    if kind == "class_eq":
        return f"packet.packet_class == {tag[1]!r}"
    if kind == "flow_eq":
        return f"packet.flow == {tag[1]!r}"
    return f"q{i}(packet)"


def _generate(signature: Tuple, nodes: List[TreeNode]) -> str:
    """Emit the factory source for a tree shape.

    The factory — ``_factory(S, nodes)`` — hoists every node's PIFO,
    transaction and state into locals (closure cells of the returned
    ``enqueue``/``dequeue``) and is shared by every scheduler with the same
    signature.
    """
    sigs = list(signature)
    names = [node.name for node in nodes]
    children_of: List[List[int]] = []
    index_of = {id(node): i for i, node in enumerate(nodes)}
    for node in nodes:
        children_of.append([index_of[id(child)] for child in node.children])

    em = _Emitter()
    w = em.w
    w(0, "def _factory(S, nodes):")
    w(1, "stats = S.stats")
    w(1, "pfe = stats.per_flow_enqueued")
    w(1, "pfd = stats.per_flow_dequeued")
    w(1, "ectx = S._enq_ctx")
    w(1, "dctx = S._deq_ctx")
    w(1, "extras = dctx.extras")
    w(1, "root = nodes[0]")
    w(1, "version = root._subtree_version")
    for i, sig in enumerate(sigs):
        w(1, f"n{i} = nodes[{i}]")
        w(1, f"p{i} = n{i}.scheduling_pifo")
        w(1, f"tx{i} = n{i}.scheduling")
        if sig[0][0] == "arrival_seq":
            w(1, f"st{i} = tx{i}.state")
        if sig[0][0] == "lang":
            w(1, f"x{i} = tx{i}._execute")
        if not sig[4]:  # custom flow_fn
            w(1, f"f{i} = n{i}.flow_fn")
        if sig[5][0] == "generic":
            w(1, f"q{i} = n{i}.predicate")
        if sig[2]:  # capacity bound
            w(1, f"c{i} = p{i}.capacity")
        if sig[1] == "quantized":
            w(1, f"qm{i} = p{i}.quantum")

    guard_terms = ["stats is not S.stats", "root._subtree_version != version"]
    for i, sig in enumerate(sigs):
        guard_terms.append(f"p{i} is not n{i}.scheduling_pifo")
        if sig[0][0] == "arrival_seq":
            guard_terms.append(f"st{i} is not tx{i}.state")
    guard = " or ".join(guard_terms)

    # ---- enqueue ----------------------------------------------------------
    w(1, "def enqueue(packet, now=None):")
    w(2, f"if {guard}:")
    w(3, "return S._kernel_stale_enqueue(packet, now)")
    w(2, "time_now = packet.arrival_time if now is None else now")
    w(2, "try:")

    def emit_walk(ind: int, path: List[int]) -> None:
        """Inline the leaf-to-root transaction walk for a static path."""
        needs_ctx = any(_ctx_needed(sigs[i][0]) for i in path)
        if needs_ctx:
            w(ind, "ectx.now = time_now")
            w(ind, "ectx.element_length = packet.length")
        for pos, i in enumerate(path):
            sig = sigs[i]
            if _ctx_needed(sig[0]):
                w(ind, f"ectx.node = {names[i]!r}")
                if pos == 0:
                    flow = "packet.flow" if sig[4] else f"f{i}(packet)"
                else:
                    flow = repr(names[path[pos - 1]])
                w(ind, f"ectx.element_flow = {flow}")
            _emit_rank(em, ind, i, sig[0])
            element = "packet" if pos == 0 else f"n{path[pos - 1]}"
            _emit_push(em, ind, i, sig, element)
            w(ind, "stats.transactions_executed += 1")

    def emit_descent(ind: int, i: int, down_path: List[int]) -> None:
        """Unroll the predicate descent; each outcome gets an inline walk."""
        kids = children_of[i]
        if not kids:
            emit_walk(ind, list(reversed(down_path)))
            return
        live = []
        for ci in kids:
            tag = sigs[ci][5]
            if tag[0] == "none":
                continue  # statically never matches
            w(ind, f"m{ci} = {_pred_expr(ci, tag)}")
            live.append(ci)
        if len(live) > 1:
            total = " + ".join(f"m{ci}" for ci in live)
            pairs = ", ".join(f"(n{ci}, m{ci})" for ci in live)
            msg = (
                "'packet %r matches multiple children %s of node %r; "
                f"predicates must be disjoint' % (packet, names, {names[i]!r})"
            )
            w(ind, f"if {total} > 1:")
            w(ind + 1, f"names = [n.name for n, m in ({pairs},) if m]")
            w(ind + 1, f"raise _TreeConfigurationError({msg})")
        first = True
        for ci in live:
            w(ind, f"{'if' if first else 'elif'} m{ci}:")
            emit_descent(ind + 1, ci, down_path + [ci])
            first = False
        if first:
            emit_walk(ind, list(reversed(down_path)))
        else:
            w(ind, "else:")
            emit_walk(ind + 1, list(reversed(down_path)))

    if sigs[0][5][0] != "all":
        w(3, f"if not ({_pred_expr(0, sigs[0][5])}):")
        w(
            4,
            "raise _TreeConfigurationError("
            "'packet %r does not match the root predicate' % (packet,))",
        )
    emit_descent(3, 0, [0])
    w(2, "except _PIFOFullError:")
    w(3, "if not S.drop_on_full:")
    w(4, "raise")
    w(3, "stats.dropped += 1")
    w(3, "return False")
    w(2, "packet.enqueue_time = time_now")
    w(2, "S._buffered_packets += 1")
    w(2, "stats.enqueued += 1")
    w(2, "flow = packet.flow")
    w(2, "try:")
    w(3, "pfe[flow] += 1")
    w(2, "except KeyError:")
    w(3, "pfe[flow] = 1")
    w(2, "return True")

    # ---- dequeue ----------------------------------------------------------
    root_sig = sigs[0]
    w(1, "def dequeue(now=0.0):")
    w(2, f"if {guard}:")
    w(3, "return S._kernel_stale_dequeue(now)")
    w(2, "if not S._buffered_packets:")
    w(3, "return None")
    _emit_root_pop(em, 2, root_sig)
    w(2, "element = entry.element")
    if root_sig[3]:  # root carries an on_dequeue hook
        w(2, "is_ref = isinstance(element, _TreeNode)")
        w(2, "dctx.now = now")
        w(2, f"dctx.node = {names[0]!r}")
        w(2, "dctx.element_flow = element.name if is_ref else element.flow")
        w(2, "dctx.element_length = 0 if is_ref else element.length")
        w(2, "extras['rank'] = entry.rank")
        w(2, "tx0.on_dequeue(element, dctx)")
        w(2, "if is_ref:")
        w(3, "return S._dequeue_descend(element, now)")
    else:
        w(2, "if isinstance(element, _TreeNode):")
        w(3, "return S._dequeue_descend(element, now)")
    w(2, "element.dequeue_time = now")
    w(2, "S._buffered_packets -= 1")
    w(2, "stats.dequeued += 1")
    w(2, "flow = element.flow")
    w(2, "try:")
    w(3, "pfd[flow] += 1")
    w(2, "except KeyError:")
    w(3, "pfd[flow] = 1")
    w(2, "return element")

    # ---- transfer ---------------------------------------------------------
    # Enqueue + immediate dequeue for an idle transmitter.  The cut-through
    # body below only exists for single-node trees on a fused backend; it
    # performs every observable effect of the enqueue/dequeue pair — rank
    # computation, capacity/drop accounting, seq/push/pop counters, stamps,
    # per-flow tallies, the on_dequeue hook — but skips the push/pop round
    # trip through the PIFO's backing store, which is a no-op on an empty
    # queue.  (``_buffered_packets`` net-zeroes across the pair, so the
    # counter is untouched.)
    w(1, "def transfer(packet, now):")
    w(2, f"if {guard}:")
    w(3, "return S._kernel_stale_transfer(packet, now)")
    cut_through = len(sigs) == 1 and root_sig[1] in (
        "sorted", "calendar", "bucketed", "quantized"
    )
    if not cut_through:
        w(2, "if not enqueue(packet, now):")
        w(3, "return None")
        w(2, "return dequeue(now)")
    else:
        w(2, "if S._buffered_packets:")
        w(3, "if not enqueue(packet, now):")
        w(4, "return None")
        w(3, "return dequeue(now)")
        w(2, "time_now = now")
        backend, has_cap = root_sig[1], root_sig[2]
        ind = 2
        if has_cap:
            w(2, "try:")
            ind = 3
        if _ctx_needed(root_sig[0]):
            w(ind, "ectx.now = time_now")
            w(ind, "ectx.element_length = packet.length")
            w(ind, f"ectx.node = {names[0]!r}")
            flow0 = "packet.flow" if root_sig[4] else "f0(packet)"
            w(ind, f"ectx.element_flow = {flow0}")
        _emit_rank(em, ind, 0, root_sig[0])
        full = "PIFO %r is full (capacity=%s)' % (p0.name, p0.capacity)"
        if has_cap:
            if backend == "sorted":
                w(ind, "if len(p0._entries) - p0._front >= c0:")
            elif backend == "calendar":
                w(ind, "if len(p0._heap) >= c0:")
            else:
                w(ind, "if p0._size >= c0:")
            w(ind + 1, "p0.drops += 1")
            w(ind + 1, f"raise _PIFOFullError('{full})")
        if backend == "bucketed":
            w(ind, "if int(rank) != rank:")
            w(
                ind + 1,
                "raise ValueError('BucketedPIFO %r requires integer ranks, "
                "got %r' % (p0.name, rank))",
            )
        w(ind, "p0._seq += 1")
        w(ind, "p0.pushes += 1")
        w(ind, "stats.transactions_executed += 1")
        if has_cap:
            w(2, "except _PIFOFullError:")
            w(3, "if not S.drop_on_full:")
            w(4, "raise")
            w(3, "stats.dropped += 1")
            w(3, "return None")
        w(2, "packet.enqueue_time = time_now")
        w(2, "stats.enqueued += 1")
        w(2, "flow = packet.flow")
        w(2, "try:")
        w(3, "pfe[flow] += 1")
        w(2, "except KeyError:")
        w(3, "pfe[flow] = 1")
        w(2, "p0.pops += 1")
        if root_sig[3]:  # on_dequeue hook
            w(2, "dctx.now = now")
            w(2, f"dctx.node = {names[0]!r}")
            w(2, "dctx.element_flow = flow")
            w(2, "dctx.element_length = packet.length")
            w(2, "extras['rank'] = rank")
            w(2, "tx0.on_dequeue(packet, dctx)")
        w(2, "packet.dequeue_time = now")
        w(2, "stats.dequeued += 1")
        w(2, "try:")
        w(3, "pfd[flow] += 1")
        w(2, "except KeyError:")
        w(3, "pfd[flow] = 1")
        w(2, "return packet")

    w(1, "return enqueue, dequeue, transfer")
    return em.text()


_GLOBALS = {
    "_PIFOEntry": PIFOEntry,
    "_PIFOFullError": PIFOFullError,
    "_TreeConfigurationError": TreeConfigurationError,
    "_RuntimeLangError": RuntimeLangError,
    "_TreeNode": TreeNode,
    "_EMPTY_FIELDS": EMPTY_FIELDS,
    "_bisect_right": bisect_right,
    "_heappush": heappush,
    "_heappop": heappop,
    "_deque": deque,
    "_floor": floor,
}


def _factory_for(signature: Tuple, nodes: List[TreeNode]) -> Tuple[Callable, str, str]:
    cached = _CACHE.get(signature)
    if cached is not None:
        _stats["hits"] += 1
        return cached
    _stats["misses"] += 1
    source = _generate(signature, nodes)
    filename = f"<treekernel:{nodes[0].name}-{next(_filename_counter)}>"
    # Register with linecache so tracebacks through the kernel show the
    # generated source (same trick as repro.lang.compiler).
    linecache.cache[filename] = (
        len(source),
        None,
        source.splitlines(keepends=True),
        filename,
    )
    namespace: Dict[str, Any] = dict(_GLOBALS)
    try:
        exec(compile(source, filename, "exec"), namespace)
    except SyntaxError as exc:  # pragma: no cover - codegen bug guard
        raise TreeKernelError(f"generated kernel failed to compile: {exc}") from exc
    factory = namespace["_factory"]
    entry = (factory, source, filename)
    _CACHE[signature] = entry
    while len(_CACHE) > _CACHE_CAPACITY:
        _CACHE.pop(next(iter(_CACHE)))
    return entry


def compile_tree_kernel(scheduler) -> TreeKernel:
    """Compile (or fetch from cache) the fused kernel for ``scheduler``.

    Raises :class:`TreeKernelError` when the tree has features the kernel
    does not fuse (shaping transactions); the scheduler then stays on the
    interpreted hot path.
    """
    try:
        signature = tree_signature(scheduler)
    except TreeKernelError:
        _stats["fallbacks"] += 1
        raise
    nodes = scheduler.tree.nodes()
    factory, source, filename = _factory_for(signature, nodes)
    enqueue, dequeue, transfer = factory(scheduler, nodes)
    _stats["installs"] += 1
    return TreeKernel(enqueue, dequeue, transfer, signature, source, filename)
