"""Least Slack-Time First (Figure 6, Section 3.1).

LSTF schedules packets in increasing order of *slack* — the time remaining
until the packet's deadline.  The slack is initialised at the end host and
decremented by the wait time experienced at each switch queue.  Figure 6::

    p.slack = p.slack - p.prev_wait_time
    p.rank  = p.slack

``prev_wait_time`` is the queueing delay at the previous switch, which the
paper suggests carrying in the packet via in-band telemetry; the simulator
stamps it automatically when a packet traverses multiple hops
(:mod:`repro.sim.link` records enqueue and dequeue timestamps).
"""

from __future__ import annotations

from ..core.packet import EMPTY_FIELDS, Packet
from ..core.pifo import Rank
from ..core.transaction import SchedulingTransaction, TransactionContext
from ..exceptions import TransactionError

#: Packet field carrying the remaining slack (seconds).
SLACK_FIELD = "slack"
#: Packet field carrying the wait time at the previous hop (seconds).
PREV_WAIT_FIELD = "prev_wait_time"


class LSTFTransaction(SchedulingTransaction):
    """rank = slack remaining after subtracting the previous hop's wait."""

    state_variables = ()

    def __init__(
        self,
        slack_field: str = SLACK_FIELD,
        prev_wait_field: str = PREV_WAIT_FIELD,
    ) -> None:
        self.slack_field = slack_field
        self.prev_wait_field = prev_wait_field
        super().__init__()

    def compute_rank(self, packet: Packet, ctx: TransactionContext) -> Rank:
        slack = packet.get(self.slack_field)
        if slack is None:
            raise TransactionError(
                f"packet {packet!r} carries no {self.slack_field!r} field; "
                "LSTF requires end hosts to initialise slack"
            )
        prev_wait = packet.get(self.prev_wait_field, 0.0)
        new_slack = slack - prev_wait
        # The transaction updates the packet's slack in place, exactly as the
        # paper's pseudo-code writes back to p.slack, so downstream switches
        # see the decremented value.
        packet.set(self.slack_field, new_slack)
        packet.set(self.prev_wait_field, 0.0)
        return new_slack

    def describe(self) -> str:
        return "LSTF(rank = remaining slack)"


def stamp_wait_time(packet: Packet, wait_time: float) -> None:
    """Record the queueing delay of the hop a packet just left.

    The simulator calls this when a packet departs a switch so the next hop's
    LSTF transaction can decrement the slack, emulating the timestamp
    tagging described in Section 3.1.  Runs once per packet per hop, so the
    lazy ``fields`` allocation is inlined rather than going through
    :meth:`Packet.set`.
    """
    fields = packet.fields
    if fields is EMPTY_FIELDS:
        packet.fields = {PREV_WAIT_FIELD: wait_time}
        return
    fields[PREV_WAIT_FIELD] = fields.get(PREV_WAIT_FIELD, 0.0) + wait_time
