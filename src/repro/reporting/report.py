"""Full paper-vs-measured report generation.

:func:`generate_report` runs a set of experiments (all of them by default)
and renders one text document: a header, then for each experiment its title,
paper reference, result table and notes.  The CLI's ``report`` command and
the integration test that regenerates EXPERIMENTS.md's measured columns both
call this function.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .. import __version__
from .experiments import ExperimentResult, list_experiments, run_experiment
from .tables import render_table

_HEADER = """\
Reproduction report — "Programmable Packet Scheduling at Line Rate" (SIGCOMM 2016)
Library version: {version}
Experiments: {count}
"""


def generate_report(
    experiment_ids: Optional[Iterable[str]] = None,
    quick: bool = False,
) -> str:
    """Run experiments and return the combined text report.

    Parameters
    ----------
    experiment_ids:
        Identifiers to run (default: every registered experiment, in
        registry order).
    quick:
        Use shorter simulation durations; the tables keep their shape but
        individual numbers are noisier.
    """
    if experiment_ids is None:
        experiment_ids = [spec.experiment_id for spec in list_experiments()]
    experiment_ids = list(experiment_ids)

    results: List[ExperimentResult] = [
        run_experiment(experiment_id, quick=quick) for experiment_id in experiment_ids
    ]

    sections = [_HEADER.format(version=__version__, count=len(results))]
    for result in results:
        sections.append(_render_section(result))
    return "\n".join(sections)


def _render_section(result: ExperimentResult) -> str:
    lines = [
        "-" * 78,
        f"[{result.experiment_id}] {result.title}",
        f"Paper reference: {result.paper_reference}",
        "",
        render_table(result.rows),
    ]
    if result.notes:
        lines.append("")
        lines.append(f"Notes: {result.notes}")
    lines.append("")
    return "\n".join(lines)
