"""Tests for campaign declarations and run-table expansion."""

from __future__ import annotations

import pytest

from repro.campaign import (
    Campaign,
    RunSpec,
    get_campaign,
    list_campaigns,
    register_campaign,
)
from repro.core import derive_seed


def tiny_campaign(**overrides) -> Campaign:
    params = dict(
        name="tiny",
        title="tiny",
        scenarios=["fig6_chain"],
        pifo_backends=["sorted", "calendar"],
        lang_backends=[None],
        load_scales=[1.0],
        replicates=2,
    )
    params.update(overrides)
    return Campaign(**params)


class TestExpansion:
    def test_deterministic_order_and_size(self):
        campaign = tiny_campaign()
        first = campaign.expand(quick=True)
        second = campaign.expand(quick=True)
        assert first == second
        assert len(first) == campaign.size() == 2 * 2 * 2  # variants x pifo x reps

    def test_variants_default_to_scenario_registry(self):
        labels = {spec.variant for spec in tiny_campaign().expand()}
        assert labels == {"LSTF", "FIFO"}

    def test_explicit_variants_respected(self):
        specs = tiny_campaign(variants=["FIFO"]).expand()
        assert {spec.variant for spec in specs} == {"FIFO"}

    def test_seed_derived_from_base_seed_and_workload_id(self):
        campaign = tiny_campaign()
        for spec in campaign.expand():
            assert spec.seed == derive_seed(campaign.base_seed,
                                            spec.workload_id)

    def test_substrate_factors_share_the_workload_seed(self):
        # Runs differing only in variant/pifo_backend/lang_backend must
        # replay the identical workload: paired comparisons.
        specs = tiny_campaign().expand()
        by_workload = {}
        for spec in specs:
            by_workload.setdefault(spec.workload_id, set()).add(spec.seed)
        assert all(len(seeds) == 1 for seeds in by_workload.values())

    def test_replicates_get_independent_seeds(self):
        specs = tiny_campaign().expand()
        replicate_seeds = {spec.replicate: spec.seed for spec in specs}
        assert replicate_seeds[0] != replicate_seeds[1]

    def test_base_seed_changes_every_seed(self):
        seeds_a = [s.seed for s in tiny_campaign().expand()]
        seeds_b = [s.seed for s in tiny_campaign(base_seed=1).expand()]
        assert all(a != b for a, b in zip(seeds_a, seeds_b))

    def test_quick_flag_recorded_and_fingerprinted(self):
        quick = tiny_campaign().expand(quick=True)
        full = tiny_campaign().expand(quick=False)
        assert all(spec.quick for spec in quick)
        assert {s.fingerprint() for s in quick}.isdisjoint(
            {s.fingerprint() for s in full})

    def test_validation(self):
        with pytest.raises(ValueError):
            tiny_campaign(scenarios=[])
        with pytest.raises(ValueError):
            tiny_campaign(replicates=0)
        with pytest.raises(ValueError):
            tiny_campaign(pifo_backends=[])
        with pytest.raises(ValueError, match="variants"):
            tiny_campaign(variants=[])


class TestRunSpec:
    def spec(self) -> RunSpec:
        return RunSpec(campaign="c", scenario="fig6_chain", variant="LSTF",
                       pifo_backend=None, lang_backend="compiled",
                       load_scale=1.5, replicate=3, quick=True, seed=42)

    def test_run_id_encodes_factors(self):
        assert self.spec().run_id == "fig6_chain/LSTF/default/compiled/x1.5/r3"

    def test_dict_round_trip(self):
        spec = self.spec()
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_fingerprint_stable_and_sensitive(self):
        spec = self.spec()
        assert spec.fingerprint() == RunSpec.from_dict(spec.to_dict()).fingerprint()
        changed = RunSpec.from_dict({**spec.to_dict(), "seed": 43})
        assert changed.fingerprint() != spec.fingerprint()

    def test_pickles(self):
        import pickle

        spec = self.spec()
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestRegistry:
    def test_paper_sweep_registered(self):
        campaign = get_campaign("paper_sweep")
        assert campaign.size() == 24
        assert campaign.name in [c.name for c in list_campaigns()]

    def test_unknown_campaign(self):
        with pytest.raises(KeyError, match="unknown campaign"):
            get_campaign("nope")

    def test_register_is_idempotent_by_name(self):
        campaign = tiny_campaign(name="tiny_registry_test")
        register_campaign(campaign)
        register_campaign(campaign)
        assert get_campaign("tiny_registry_test") is campaign

    def test_paper_sweep_quick_expansion_is_stable(self):
        sweep = get_campaign("paper_sweep")
        table = sweep.expand(quick=True)
        assert len(table) == 24
        assert table == sweep.expand(quick=True)
        # Every factor level appears.
        assert {s.pifo_backend for s in table} == {"sorted", "calendar",
                                                   "quantized"}
        assert {s.lang_backend for s in table} == {"compiled", "interpreted"}
        assert {s.scenario for s in table} == {"fig6_chain", "leaf_spine_fct"}
