"""First-In First-Out scheduling (Section 3.4, item 3).

FIFO is programmed by a scheduling transaction that sets the packet's rank
to the wall-clock time on arrival.  Ties (packets arriving in the same clock
tick) retain arrival order thanks to the PIFO's FIFO tie-break.
"""

from __future__ import annotations

from ..core.packet import Packet
from ..core.pifo import Rank
from ..core.transaction import SchedulingTransaction, TransactionContext


class FIFOTransaction(SchedulingTransaction):
    """rank = wall-clock arrival time."""

    state_variables = ()

    def compute_rank(self, packet: Packet, ctx: TransactionContext) -> Rank:
        return ctx.now

    def describe(self) -> str:
        return "FIFO(rank = arrival time)"


class ArrivalSequenceTransaction(SchedulingTransaction):
    """rank = a per-scheduler arrival counter.

    Equivalent to FIFO but independent of the wall clock, which makes unit
    tests that enqueue many packets "at the same instant" unambiguous.
    """

    state_variables = ("counter",)

    def initial_state(self):
        return {"counter": 0}

    def compute_rank(self, packet: Packet, ctx: TransactionContext) -> Rank:
        rank = self.state["counter"]
        self.state["counter"] += 1
        return rank

    def describe(self) -> str:
        return "FIFO(rank = arrival sequence number)"
