"""Tests for the experiment runners and registry."""

from __future__ import annotations

import pytest

from repro.reporting import (
    EXPERIMENTS,
    ExperimentResult,
    generate_report,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.reporting.experiments import (
    PAPER_TABLE1_MM2,
    run_fig1_wfq,
    run_fig3_hpfq,
    run_fig4_shaping,
    run_fig6_lstf,
    run_fig7_stop_and_go,
    run_fig8_min_rate,
    run_sec41_atoms,
    run_sec53_variations,
    run_sec54_wiring,
    run_table1,
    run_table2,
)


class TestRegistry:
    def test_every_expected_experiment_is_registered(self):
        expected = {"table1", "table2", "sec5.3", "sec5.4", "sec4.1",
                    "fig1", "fig3", "fig4", "fig6", "fig7", "fig8"}
        assert expected <= set(EXPERIMENTS)

    def test_list_experiments_matches_registry(self):
        assert {spec.experiment_id for spec in list_experiments()} == set(EXPERIMENTS)

    def test_get_experiment_unknown_id_raises_with_known_ids(self):
        with pytest.raises(KeyError) as excinfo:
            get_experiment("not-an-experiment")
        assert "table1" in str(excinfo.value)

    def test_run_experiment_dispatches(self):
        result = run_experiment("sec5.4")
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "sec5.4"

    def test_result_to_dict_roundtrip(self):
        result = run_experiment("table2")
        payload = result.to_dict()
        assert payload["experiment_id"] == "table2"
        assert isinstance(payload["rows"], list)
        assert payload["rows"]


class TestHardwareExperiments:
    def test_table1_matches_paper_within_tolerance(self):
        result = run_table1()
        by_component = {row["component"]: row for row in result.rows}
        assert set(PAPER_TABLE1_MM2) <= set(by_component)
        for component, row in by_component.items():
            assert row["model"] is not None, component
            assert row["model"] == pytest.approx(row["paper"], rel=0.05), component

    def test_table1_headline_overhead_below_four_percent(self):
        result = run_table1()
        overhead = next(
            row for row in result.rows if row["component"] == "overhead_percent"
        )
        assert overhead["model"] < 4.0

    def test_table2_timing_cutoff_at_2048_flows(self):
        result = run_table2()
        by_flows = {row["flows"]: row for row in result.rows}
        assert by_flows[2048]["model_meets_1GHz"] is True
        assert by_flows[4096]["model_meets_1GHz"] is False

    def test_table2_area_grows_with_flows(self):
        rows = run_table2().rows
        areas = [row["model_area_mm2"] for row in rows]
        assert areas == sorted(areas)

    def test_sec53_variations_cover_paper_design_points(self):
        result = run_sec53_variations()
        variations = {row["variation"] for row in result.rows}
        assert {"baseline", "rank_32_bits", "logical_pifos_1024",
                "metadata_64_bits"} <= variations
        for row in result.rows:
            assert row["model_area_mm2"] == pytest.approx(
                row["paper_area_mm2"], rel=0.08
            ), row["variation"]
            assert row["meets_1GHz"] is True

    def test_sec54_wiring_counts(self):
        result = run_sec54_wiring()
        by_quantity = {row["quantity"]: row for row in result.rows}
        for row in by_quantity.values():
            assert row["model"] == row["paper"]

    def test_sec41_every_transaction_feasible(self):
        result = run_sec41_atoms()
        assert len(result.rows) >= 10
        assert all(row["feasible"] for row in result.rows)
        assert sum(row["atoms"] for row in result.rows) <= 300


class TestBehaviouralExperiments:
    def test_fig1_weighted_shares(self):
        result = run_fig1_wfq(quick=True)
        for row in result.rows:
            assert row["measured_share"] == pytest.approx(
                row["expected_share"], abs=0.05
            ), row["flow"]

    def test_fig3_hierarchy_shares(self):
        result = run_fig3_hpfq(quick=True)
        by_flow = {row["flow"]: row for row in result.rows}
        assert by_flow["Left (A+B)"]["measured_share"] == pytest.approx(0.10, abs=0.04)
        assert by_flow["Right (C+D)"]["measured_share"] == pytest.approx(0.90, abs=0.04)

    def test_fig4_right_class_capped(self):
        result = run_fig4_shaping(quick=True)
        overloaded = [
            row for row in result.rows
            if row["offered_right_Mbps"] > row["cap_Mbps"]
        ]
        assert overloaded, "the sweep must include an overloaded point"
        for row in overloaded:
            assert row["measured_right_Mbps"] <= row["cap_Mbps"] * 1.3
            assert row["measured_left_Mbps"] > 40.0

    def test_fig6_lstf_beats_fifo_on_urgent_delay(self):
        result = run_fig6_lstf(quick=True)
        by_scheduler = {row["scheduler"]: row for row in result.rows}
        lstf = by_scheduler["LSTF"]
        fifo = by_scheduler["FIFO"]
        assert lstf["max_urgent_delay_ms"] <= lstf["urgent_slack_budget_ms"]
        assert fifo["max_urgent_delay_ms"] > lstf["max_urgent_delay_ms"]
        assert lstf["urgent_packets"] == fifo["urgent_packets"]

    def test_fig7_delay_bounded_by_two_frames(self):
        result = run_fig7_stop_and_go(quick=True)
        row = result.rows[0]
        assert row["packets"] > 0
        assert row["max_delay_ms"] <= row["bound_2T_ms"] + 1.0
        assert row["min_delay_ms"] > 0.0

    def test_fig8_guarantee_held_under_overload(self):
        result = run_fig8_min_rate(quick=True)
        by_flow = {row["flow"]: row for row in result.rows}
        guaranteed = by_flow["guaranteed"]
        assert guaranteed["measured_Mbps"] >= guaranteed["guarantee_Mbps"] * 0.85
        total = sum(row["measured_Mbps"] for row in result.rows)
        assert total >= 45.0


class TestReportGeneration:
    def test_report_for_selected_experiments(self):
        text = generate_report(["table2", "sec5.4"], quick=True)
        assert "[table2]" in text
        assert "[sec5.4]" in text
        assert "[fig4]" not in text

    def test_report_contains_notes_and_tables(self):
        text = generate_report(["table1"], quick=True)
        assert "overhead_percent" in text
        assert "Notes:" in text

    def test_report_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            generate_report(["nope"], quick=True)
