"""Aggregate campaign result stores into grouped summary tables.

Takes the flat JSONL records a
:class:`~repro.campaign.store.ResultStore` holds and folds them into rows
grouped by any subset of the campaign factors (scenario, variant,
pifo_backend, lang_backend, load_scale, replicate): run counts, delivery
and drop totals, packet-delay means and flow-completion-time statistics.
The rows render with :func:`~repro.reporting.tables.render_table`, so the
CLI's ``repro campaign report`` output matches the rest of the report
suite.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

GROUPABLE_KEYS = (
    "campaign",
    "scenario",
    "variant",
    "pifo_backend",
    "lang_backend",
    "load_scale",
    "replicate",
    "quick",
)

DEFAULT_GROUP_BY = ("scenario", "variant")


def _mean(values: List[float]) -> float | None:
    return sum(values) / len(values) if values else None


def summarize_records(
    records: Sequence[Mapping],
    group_by: Sequence[str] = DEFAULT_GROUP_BY,
) -> List[Dict]:
    """Fold run records into one summary row per factor-level combination.

    Metric columns are averaged *across runs* in the group (each run
    already aggregates its own packets/flows); counts are summed.  Rows
    come back sorted by the group key, so output order is stable no matter
    the store's append order.

    Failure records (status failed / timeout / worker_lost) count into the
    ``failed`` column but are excluded from every metric — a crashed run
    has no delivery totals, and letting its zeros into the means would
    skew the healthy runs' statistics.
    """
    from ..campaign.store import record_is_ok
    group_by = tuple(group_by)
    for key in group_by:
        if key not in GROUPABLE_KEYS:
            known = ", ".join(GROUPABLE_KEYS)
            raise ValueError(
                f"cannot group by {key!r}; groupable factors: {known}"
            )
    groups: Dict[Tuple, List[Mapping]] = {}
    for record in records:
        group_key = tuple(record.get(key) for key in group_by)
        groups.setdefault(group_key, []).append(record)

    def sort_key(item):
        # Type-aware per-component ordering: numerics in numeric order,
        # then strings, with None last — so load_scale 2.0 sorts before
        # 10.0 and a None factor level (substrate default) trails the
        # named levels.
        return tuple(
            (part is None, isinstance(part, str), part if part is not None else 0)
            for part in item[0]
        )

    rows: List[Dict] = []
    for group_key, members in sorted(groups.items(), key=sort_key):
        row: Dict = {
            key: ("-" if value is None else value)
            for key, value in zip(group_by, group_key)
        }
        healthy = [record for record in members if record_is_ok(record)]

        def metric(name: str) -> List[float]:
            return [record[name] for record in healthy
                    if record.get(name) is not None]

        row.update({
            "runs": len(members),
            "failed": len(members) - len(healthy),
            "delivered": sum(record.get("delivered", 0) for record in healthy),
            "dropped": sum(record.get("dropped", 0) for record in healthy),
            "lost_to_faults": sum(record.get("lost_to_faults", 0)
                                  for record in healthy),
            "mean_delay_ms": _scale(_mean(metric("mean_delay")), 1e3),
            "max_delay_ms": _scale(_max(metric("max_delay")), 1e3),
            "fct_mean_ms": _scale(_mean(metric("fct_mean")), 1e3),
            "fct_p99_ms": _scale(_mean(metric("fct_p99")), 1e3),
            "wall_clock_s": _mean(metric("wall_clock_s")),
        })
        rows.append(row)
    return rows


def _max(values: List[float]) -> float | None:
    return max(values) if values else None


def _scale(value: float | None, factor: float) -> float | None:
    return None if value is None else value * factor


def campaign_report_text(
    records: Sequence[Mapping],
    group_by: Sequence[str] = DEFAULT_GROUP_BY,
    title: str = "Campaign summary",
) -> str:
    """Render grouped summary rows as an aligned text table."""
    from .tables import render_table

    rows = summarize_records(records, group_by=group_by)
    return render_table(rows, title=title)
